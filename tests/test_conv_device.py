"""Integration tests for the conventional SSD device model."""

import pytest

from repro.flash import KIB, MIB, FlashGeometry
from repro.hostif import Command, Opcode, Status
from repro.sim import Simulator, ms, sec, us
from repro.conv import ConvDevice

from .util import quiet_profile, read, run_cmd, write


def conv_profile(**overrides):
    """A small conventional-device profile (≈128 MiB raw flash)."""
    geometry = FlashGeometry(
        channels=4,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=64,
        pages_per_block=16,
        page_size=16 * KIB,
    )
    base = dict(geometry=geometry, write_buffer_bytes=4 * MIB)
    base.update(overrides)
    return quiet_profile(**base)


def make_conv(**overrides):
    sim = Simulator()
    device = ConvDevice(sim, conv_profile(**overrides))
    return sim, device


class TestBasicIo:
    def test_write_then_read(self):
        sim, dev = make_conv()
        assert run_cmd(sim, dev, write(0, 4)).ok
        assert run_cmd(sim, dev, read(0, 4)).ok
        assert dev.counters.completed[Opcode.WRITE] == 1
        assert dev.counters.completed[Opcode.READ] == 1

    def test_random_writes_accepted_anywhere(self):
        """Unlike ZNS, a conventional SSD takes writes at any LBA."""
        sim, dev = make_conv()
        capacity = dev.namespace.capacity_lbas
        for slba in (0, capacity // 2, capacity - 4, 17):
            assert run_cmd(sim, dev, write(slba, 4)).ok

    def test_out_of_range_rejected(self):
        sim, dev = make_conv()
        cpl = run_cmd(sim, dev, write(dev.namespace.capacity_lbas, 1))
        assert cpl.status is Status.LBA_OUT_OF_RANGE

    def test_append_not_supported(self):
        sim, dev = make_conv()
        with pytest.raises(ValueError):
            dev.submit(Command(Opcode.APPEND, slba=0, nlb=1))

    def test_write_qd1_latency_matches_zns_write_path(self):
        """Same hardware, same write-cache path: latency parity with ZNS."""
        sim, dev = make_conv()
        run_cmd(sim, dev, write(0, 1))
        cpl = run_cmd(sim, dev, write(4, 1))
        assert cpl.latency_ns == 5_380 + 610 + 4_800

    def test_unwritten_read_needs_no_nand(self):
        sim, dev = make_conv()
        cpl = run_cmd(sim, dev, read(0, 1))
        assert cpl.ok
        assert dev.backend.counters.pages_read == 0


class TestPrecondition:
    def test_precondition_maps_logical_space(self):
        sim, dev = make_conv()
        dev.precondition(1.0)
        assert dev.ftl.mapped_pages() == dev.ftl.logical_pages
        assert dev.ftl.write_amplification() == 1.0  # fill isn't counted

    def test_precondition_fraction(self):
        sim, dev = make_conv()
        dev.precondition(0.5)
        assert dev.ftl.mapped_pages() == pytest.approx(
            dev.ftl.logical_pages / 2, abs=1
        )

    def test_invalid_fraction_rejected(self):
        sim, dev = make_conv()
        with pytest.raises(ValueError):
            dev.precondition(1.5)


class TestGarbageCollectionBehaviour:
    def _flood(self, sim, dev, duration_ns, rng_seed=1):
        """Random full-page overwrites as fast as QD4 allows."""
        import numpy as np

        rng = np.random.default_rng(rng_seed)
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        pages = dev.namespace.capacity_lbas // page_lbas
        stop_at = sim.now + duration_ns

        def writer():
            while sim.now < stop_at:
                slba = int(rng.integers(0, pages)) * page_lbas
                yield dev.submit(write(slba, page_lbas))

        workers = [sim.process(writer()) for _ in range(4)]
        sim.run(until=sim.all_of(workers))

    def test_sustained_overwrites_trigger_gc(self):
        sim, dev = make_conv()
        dev.precondition(1.0)
        self._flood(sim, dev, sec(0.4))
        assert dev.gc_stats.activations >= 1
        assert dev.gc_stats.victims_erased > 0
        assert dev.gc_stats.pages_copied > 0
        assert dev.ftl.write_amplification() > 1.2

    def test_gc_keeps_free_blocks_above_exhaustion(self):
        sim, dev = make_conv()
        dev.precondition(1.0)
        self._flood(sim, dev, sec(0.5))
        assert dev.ftl.free_block_count > 0

    def test_gc_inflates_read_latency(self):
        """The §III-F mechanism: GC + writes inflate read tails."""
        import numpy as np

        sim, dev = make_conv()
        dev.precondition(1.0)
        # Idle read latency.
        idle = run_cmd(sim, dev, read(0, 1)).latency_ns

        rng = np.random.default_rng(7)
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        pages = dev.namespace.capacity_lbas // page_lbas
        stop = []

        def writer():
            while not stop:
                slba = int(rng.integers(0, pages)) * page_lbas
                yield dev.submit(write(slba, page_lbas))

        for _ in range(4):
            sim.process(writer())
        sim.run(until=sim.now + sec(0.2))  # build up GC + flush backlog
        latencies = []
        for _ in range(20):
            slba = int(rng.integers(0, pages)) * page_lbas
            latencies.append(run_cmd(sim, dev, read(slba, 1)).latency_ns)
        stop.append(True)
        assert max(latencies) > 5 * idle

    def test_no_gc_without_overwrites(self):
        sim, dev = make_conv()
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        for i in range(32):
            run_cmd(sim, dev, write(i * page_lbas, page_lbas))
        sim.run()
        assert dev.gc_stats.activations == 0
