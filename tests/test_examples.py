"""Smoke tests: the quick examples must run end-to-end.

(The heavier examples — gc_comparison, zone_parallelism, trace_replay,
characterize_device — exercise code paths the benchmark harness already
covers; running them here would double CI time for no extra coverage.)
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "zone_invalid_write (as expected)" in out
    assert "zone report:" in out


def test_zns_log_store_runs():
    out = run_example("zns_log_store.py")
    assert "zone GC runs" in out
    assert "no errors" in out


def test_examples_directory_complete():
    expected = {
        "quickstart.py",
        "zns_log_store.py",
        "characterize_device.py",
        "gc_comparison.py",
        "emulator_fidelity.py",
        "zone_parallelism.py",
        "trace_replay.py",
    }
    assert {p.name for p in EXAMPLES.glob("*.py")} == expected
