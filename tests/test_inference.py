"""Tests for zone striping widths and the parallelism-inference tool."""

import pytest

from repro.flash import FlashGeometry
from repro.sim import Simulator, ms
from repro.zns import ZnsDevice, ZoneStriping
from repro.zns.inference import infer_zone_groups

from .util import quiet_profile


class TestStripeWidth:
    def geometry(self):
        return FlashGeometry()  # 8 channels x 4 dies = 32 dies

    def test_default_stripes_all_dies(self):
        striping = ZoneStriping(self.geometry(), 2048 * 2**20)
        assert striping.stripe_width == 32
        assert striping.die_groups == 1
        dies = {striping.die_for_page(0, p) for p in range(32)}
        assert dies == set(range(32))

    def test_narrow_stripe_confines_zone_to_group(self):
        striping = ZoneStriping(self.geometry(), 2048 * 2**20, stripe_width=8)
        assert striping.die_groups == 4
        for zone in range(8):
            group = striping.group_of_zone(zone)
            dies = {striping.die_for_page(zone, p) for p in range(64)}
            assert dies == set(range(group * 8, group * 8 + 8))

    def test_zones_round_robin_over_groups(self):
        striping = ZoneStriping(self.geometry(), 2048 * 2**20, stripe_width=16)
        assert [striping.group_of_zone(z) for z in range(4)] == [0, 1, 0, 1]

    def test_width_must_divide_die_count(self):
        with pytest.raises(ValueError):
            ZoneStriping(self.geometry(), 2048 * 2**20, stripe_width=5)
        with pytest.raises(ValueError):
            ZoneStriping(self.geometry(), 2048 * 2**20, stripe_width=0)

    def test_narrow_stripe_halves_zone_bandwidth(self):
        """A zone confined to half the dies gets half the program rate."""
        from repro.zns.inference import _measure_bandwidth

        results = {}
        for width in (None, 16):
            profile = quiet_profile(
                num_zones=8,
                zone_size_bytes=512 * 2**20,
                zone_cap_bytes=384 * 2**20,
                stripe_width=width,
            )
            sim = Simulator()
            device = ZnsDevice(sim, profile)
            results[width] = _measure_bandwidth(
                device, [0], runtime_ns=ms(70), block_size=32 * 1024,
                qd=8, seed=1)
        assert results[16] == pytest.approx(results[None] / 2, rel=0.1)


class TestInference:
    def build(self, stripe_width):
        profile = quiet_profile(
            num_zones=8,
            zone_size_bytes=512 * 2**20,
            zone_cap_bytes=384 * 2**20,
            stripe_width=stripe_width,
        )
        sim = Simulator()
        return ZnsDevice(sim, profile)

    def test_full_width_striping_yields_one_group(self):
        device = self.build(stripe_width=None)
        report = infer_zone_groups(device, zones=[0, 1, 2, 3])
        assert report.group_count == 1

    def test_narrow_striping_groups_recovered(self):
        device = self.build(stripe_width=16)  # two die groups
        report = infer_zone_groups(device, zones=[0, 1, 2, 3])
        # Zones alternate between the 2 groups: {0, 2} and {1, 3}.
        assert report.group_count == 2
        assert report.groups[0] == report.groups[2]
        assert report.groups[1] == report.groups[3]
        assert report.groups[0] != report.groups[1]

    def test_quarter_striping_four_groups(self):
        device = self.build(stripe_width=8)
        report = infer_zone_groups(device, zones=[0, 1, 2, 3])
        assert report.group_count == 4

    def test_solo_bandwidth_reflects_group_share(self):
        narrow = self.build(stripe_width=16)
        report = infer_zone_groups(narrow, zones=[0, 1])
        full_bw = 1_128  # MiB/s, the whole-device limit
        for z in (0, 1):
            assert report.solo_mibs[z] == pytest.approx(full_bw / 2, rel=0.15)

    def test_table_rendering(self):
        device = self.build(stripe_width=None)
        report = infer_zone_groups(device, zones=[0, 1])
        assert "zone" in report.table() and "group" in report.table()

    def test_validation(self):
        device = self.build(stripe_width=None)
        with pytest.raises(ValueError):
            infer_zone_groups(device, zones=[0])
        with pytest.raises(ValueError):
            infer_zone_groups(device, zones=[0, 0])
