"""Unit + property tests for the page-mapped FTL and GC policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conv import FtlFullError, GcPolicy, GcStats, PageMappedFtl
from repro.flash import KIB, FlashGeometry


def tiny_geometry(**overrides) -> FlashGeometry:
    base = dict(
        channels=2,
        dies_per_channel=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=4,
        page_size=4 * KIB,
    )
    base.update(overrides)
    return FlashGeometry(**base)


def run_gc_until(ftl: PageMappedFtl, target_free: float) -> None:
    """Synchronously drain GC bookkeeping until a free fraction is reached."""
    while ftl.free_fraction < target_free:
        victim = ftl.pick_victim()
        assert victim is not None, "no victim available"
        for slot in range(ftl.pages_per_block):
            ftl.relocate(victim, slot)
        assert victim.valid_count == 0
        ftl.erase(victim)


class TestMapping:
    def test_initial_state_all_free_unmapped(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        assert ftl.free_fraction == 1.0
        assert ftl.mapped_pages() == 0
        assert ftl.logical_pages == int(16 * 4 * 0.75)

    def test_write_then_lookup(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        physical = ftl.commit_write(7)
        assert ftl.lookup(7) == physical
        assert ftl.lookup(8) is None

    def test_overwrite_invalidates_old_location(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        first = ftl.commit_write(3)
        second = ftl.commit_write(3)
        assert first != second
        assert ftl.lookup(3) == second
        old_block = ftl.blocks[first // ftl.pages_per_block]
        assert old_block.slot_to_logical[first % ftl.pages_per_block] == -1

    def test_trim_unmaps(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        ftl.commit_write(3)
        assert ftl.trim(3) is True
        assert ftl.lookup(3) is None
        assert ftl.trim(3) is False

    def test_out_of_range_logical_rejected(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        with pytest.raises(ValueError):
            ftl.lookup(ftl.logical_pages)
        with pytest.raises(ValueError):
            ftl.commit_write(-1)

    def test_writes_spread_across_dies(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        dies = {ftl.die_of_physical(ftl.commit_write(i)) for i in range(4)}
        assert dies == {0, 1}

    def test_overprovision_validation(self):
        with pytest.raises(ValueError):
            PageMappedFtl(tiny_geometry(), overprovision=1.0)
        with pytest.raises(ValueError):
            PageMappedFtl(tiny_geometry(), overprovision=-0.1)


class TestGarbageCollection:
    def test_victim_is_block_with_fewest_valid_pages(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        # Fill enough pages to close several blocks, then overwrite the
        # first few logical pages to create garbage in the oldest blocks.
        for logical in range(ftl.logical_pages):
            ftl.commit_write(logical)
        for logical in range(4):
            ftl.commit_write(logical)
        victim = ftl.pick_victim()
        assert victim is not None
        assert victim.garbage_pages() > 0

    def test_relocate_preserves_all_mappings(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.5)
        for logical in range(ftl.logical_pages):
            ftl.commit_write(logical)
        for logical in range(0, ftl.logical_pages, 2):
            ftl.commit_write(logical)  # create garbage
        before = {l: ftl.lookup(l) for l in range(ftl.logical_pages)}
        assert all(p is not None for p in before.values())
        run_gc_until(ftl, 0.4)
        after = {l: ftl.lookup(l) for l in range(ftl.logical_pages)}
        assert all(p is not None for p in after.values())

    def test_erase_requires_no_valid_pages(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        # Two dies round-robin, so filling 2 blocks' worth of pages closes
        # one block on each die.
        for logical in range(2 * ftl.pages_per_block):
            ftl.commit_write(logical)
        full_block = next(b for b in ftl.blocks if b.is_full)
        with pytest.raises(ValueError):
            ftl.erase(full_block)

    def test_write_amplification_accounting(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.5)
        for logical in range(ftl.logical_pages):
            ftl.commit_write(logical)
        assert ftl.write_amplification() == 1.0
        # Stride 3 so garbage lands *partially* in each block (stride 2
        # would align with the two-die round-robin and leave fully
        # invalid victims that GC reclaims copy-free).
        for logical in range(0, ftl.logical_pages, 3):
            ftl.commit_write(logical)
        run_gc_until(ftl, 0.35)
        assert ftl.write_amplification() > 1.0

    def test_ftl_full_raises_when_gc_absent(self):
        ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
        with pytest.raises(FtlFullError):
            # Overwrite endlessly without ever erasing.
            for round_ in range(100):
                for logical in range(ftl.logical_pages):
                    ftl.commit_write(logical)


class TestGcPolicy:
    def test_hysteresis(self):
        policy = GcPolicy(low_watermark=0.05, high_watermark=0.10)
        assert policy.should_start(0.04)
        assert not policy.should_start(0.06)
        assert policy.should_stop(0.10)
        assert not policy.should_stop(0.09)

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError):
            GcPolicy(low_watermark=0.2, high_watermark=0.1)
        with pytest.raises(ValueError):
            GcPolicy(low_watermark=0.0, high_watermark=0.1)

    def test_stats_accumulate_busy_time(self):
        stats = GcStats()
        stats.start_run(100)
        stats.end_run(500)
        stats.start_run(900)
        stats.end_run(1000)
        assert stats.busy_ns == 500
        assert stats.activations == 2


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(st.integers(0, 23), min_size=1, max_size=300),
)
def test_mapping_integrity_under_random_overwrites_and_gc(writes):
    """No logical page is ever lost, and validity accounting stays exact."""
    ftl = PageMappedFtl(tiny_geometry(), overprovision=0.25)
    written: set[int] = set()
    for logical in writes:
        if ftl.free_fraction < 0.2:
            run_gc_until(ftl, 0.3)
        ftl.commit_write(logical)
        written.add(logical)
        total_valid = sum(b.valid_count for b in ftl.blocks)
        assert total_valid == ftl.mapped_pages() == len(written)
    for logical in written:
        physical = ftl.lookup(logical)
        block = ftl.blocks[physical // ftl.pages_per_block]
        assert block.slot_to_logical[physical % ftl.pages_per_block] == logical
