"""Unit tests for simulation resources (Resource, Container, Store)."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store, us


class TestResource:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        granted = []

        def worker(tag):
            req = res.request()
            yield req
            granted.append((sim.now, tag))
            yield sim.timeout(us(10))
            res.release(req)

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        assert granted == [(0, "a"), (0, "b"), (us(10), "c")]

    def test_fifo_ordering_within_priority(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            req = res.request()
            yield req
            order.append(tag)
            yield sim.timeout(us(1))
            res.release(req)

        for tag in range(6):
            sim.process(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_lower_priority_number_served_first(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def hog():
            req = res.request()
            yield req
            yield sim.timeout(us(10))
            res.release(req)

        def worker(tag, prio):
            yield sim.timeout(us(1))  # arrive while hog holds the slot
            req = res.request(priority=prio)
            yield req
            order.append(tag)
            res.release(req)

        sim.process(hog())
        sim.process(worker("background", 10))
        sim.process(worker("io", 0))
        sim.run()
        assert order == ["io", "background"]

    def test_in_use_and_queue_length_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert res.in_use == 1
        assert res.queue_length == 1
        res.release(r1)
        assert res.in_use == 1
        assert res.queue_length == 0
        res.release(r2)
        assert res.in_use == 0

    def test_release_of_queued_request_cancels_it(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while still queued
        assert res.queue_length == 0
        res.release(r1)
        assert res.in_use == 0

    def test_release_of_unknown_request_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        granted = res.request()
        res.release(granted)
        with pytest.raises(SimulationError):
            res.release(granted)


class TestContainer:
    def test_init_level_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Container(sim, capacity=10, init=11)
        with pytest.raises(SimulationError):
            Container(sim, capacity=0)

    def test_put_then_get_levels(self):
        sim = Simulator()
        tank = Container(sim, capacity=100)
        tank.put(30)
        sim.run()
        assert tank.level == 30
        tank.get(10)
        sim.run()
        assert tank.level == 20

    def test_get_blocks_until_available(self):
        sim = Simulator()
        tank = Container(sim, capacity=100)
        got_at = []

        def consumer():
            yield tank.get(50)
            got_at.append(sim.now)

        def producer():
            yield sim.timeout(us(5))
            yield tank.put(30)
            yield sim.timeout(us(5))
            yield tank.put(30)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got_at == [us(10)]
        assert tank.level == 10

    def test_put_blocks_when_full(self):
        sim = Simulator()
        tank = Container(sim, capacity=10, init=8)
        put_at = []

        def producer():
            yield tank.put(5)
            put_at.append(sim.now)

        def consumer():
            yield sim.timeout(us(3))
            yield tank.get(4)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert put_at == [us(3)]
        assert tank.level == 9

    def test_oversized_put_rejected(self):
        sim = Simulator()
        tank = Container(sim, capacity=10)
        with pytest.raises(SimulationError):
            tank.put(11)

    def test_negative_amounts_rejected(self):
        sim = Simulator()
        tank = Container(sim, capacity=10)
        with pytest.raises(SimulationError):
            tank.put(-1)
        with pytest.raises(SimulationError):
            tank.get(-1)


class TestStore:
    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for item in [1, 2, 3]:
            store.put(item)
        popped = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                popped.append(item)

        sim.process(consumer())
        sim.run()
        assert popped == [1, 2, 3]

    def test_get_blocks_on_empty(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(us(4))
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(us(4), "x")]

    def test_bounded_store_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(("a", sim.now))
            yield store.put("b")
            times.append(("b", sim.now))

        def consumer():
            yield sim.timeout(us(7))
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [("a", 0), ("b", us(7))]

    def test_len_reports_queued_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        sim.run()
        assert len(store) == 2


class TestStreamFactory:
    def test_same_name_same_stream(self):
        from repro.sim import StreamFactory

        fac = StreamFactory(seed=7)
        a = fac.stream("alpha").random(5)
        b = fac.stream("alpha").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        from repro.sim import StreamFactory

        fac = StreamFactory(seed=7)
        a = fac.stream("alpha").random(5)
        b = fac.stream("beta").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        from repro.sim import StreamFactory

        a = StreamFactory(seed=1).stream("x").random(5)
        b = StreamFactory(seed=2).stream("x").random(5)
        assert not (a == b).all()

    def test_salt_namespaces_streams(self):
        from repro.sim import StreamFactory

        plain = StreamFactory(seed=7).stream("x").random(5)
        salted = StreamFactory(seed=7, salt="point-a").stream("x").random(5)
        other = StreamFactory(seed=7, salt="point-b").stream("x").random(5)
        assert not (plain == salted).all()
        assert not (salted == other).all()

    def test_empty_salt_matches_unsalted(self):
        """The default empty salt must not change stream derivation —
        pre-salt results stay byte-identical."""
        from repro.sim import StreamFactory

        plain = StreamFactory(seed=7).stream("x").random(5)
        empty = StreamFactory(seed=7, salt="").stream("x").random(5)
        assert (plain == empty).all()

    def test_salted_stream_equals_prefixed_name(self):
        from repro.sim import StreamFactory

        salted = StreamFactory(seed=7, salt="s").stream("x").random(5)
        prefixed = StreamFactory(seed=7).stream("s/x").random(5)
        assert (salted == prefixed).all()


class TestLatencySampler:
    def test_zero_sigma_is_identity(self):
        from repro.sim import LatencySampler, StreamFactory

        sampler = LatencySampler(StreamFactory().stream("lat"), sigma=0.0)
        assert sampler.jitter(12345) == 12345

    def test_jitter_stays_near_nominal(self):
        from repro.sim import LatencySampler, StreamFactory

        sampler = LatencySampler(StreamFactory().stream("lat"), sigma=0.03)
        nominal = us(10)
        draws = [sampler.jitter(nominal) for _ in range(500)]
        mean = sum(draws) / len(draws)
        assert abs(mean - nominal) / nominal < 0.02
        assert all(0.8 * nominal < d < 1.25 * nominal for d in draws)

    def test_negative_nominal_rejected(self):
        from repro.sim import LatencySampler, StreamFactory

        sampler = LatencySampler(StreamFactory().stream("lat"))
        with pytest.raises(ValueError):
            sampler.jitter(-1)

    def test_negative_sigma_rejected(self):
        from repro.sim import LatencySampler, StreamFactory

        with pytest.raises(ValueError):
            LatencySampler(StreamFactory().stream("lat"), sigma=-0.1)
