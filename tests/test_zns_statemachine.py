"""Unit + property tests for the ZNS zone state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hostif import Status
from repro.zns import ZoneManager, ZoneState


def manager(num_zones=8, size=100, cap=80, max_open=3, max_active=5) -> ZoneManager:
    return ZoneManager(num_zones, size, cap, max_open, max_active)


class TestConstruction:
    def test_zone_layout(self):
        mgr = manager(num_zones=4, size=100, cap=80)
        assert len(mgr.zones) == 4
        assert [z.zslba for z in mgr.zones] == [0, 100, 200, 300]
        assert all(z.state is ZoneState.EMPTY for z in mgr.zones)
        assert all(z.wp == z.zslba for z in mgr.zones)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            manager(max_open=0)
        with pytest.raises(ValueError):
            manager(max_open=6, max_active=5)
        with pytest.raises(ValueError):
            ZoneManager(0, 100, 80, 1, 1)

    def test_zone_lookup(self):
        mgr = manager()
        assert mgr.zone_containing(0).index == 0
        assert mgr.zone_containing(99).index == 0
        assert mgr.zone_containing(100).index == 1
        assert mgr.zone_containing(100 * 8) is None
        assert mgr.zone_at_start(200).index == 2
        assert mgr.zone_at_start(201) is None


class TestWrites:
    def test_write_implicitly_opens_and_advances_wp(self):
        mgr = manager()
        zone = mgr.zones[0]
        status, opened = mgr.admit_write(zone, 0, 10)
        assert status is Status.SUCCESS and opened
        assert zone.state is ZoneState.IMPLICIT_OPEN
        assert zone.wp == 10
        assert mgr.open_count == 1 and mgr.active_count == 1

    def test_second_write_does_not_reopen(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 10)
        status, opened = mgr.admit_write(zone, 10, 10)
        assert status is Status.SUCCESS and not opened

    def test_nonsequential_write_rejected_without_side_effects(self):
        mgr = manager()
        zone = mgr.zones[0]
        status, opened = mgr.admit_write(zone, 5, 10)
        assert status is Status.ZONE_INVALID_WRITE and not opened
        assert zone.state is ZoneState.EMPTY
        assert mgr.open_count == 0 and mgr.active_count == 0
        mgr.check_invariants()

    def test_rejected_write_to_closed_zone_stays_closed(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 10)
        mgr.close(zone)
        status, _ = mgr.admit_write(zone, 99, 1)  # wrong wp
        assert status is Status.ZONE_INVALID_WRITE
        assert zone.state is ZoneState.CLOSED
        mgr.check_invariants()

    def test_write_filling_capacity_goes_full(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        status, _ = mgr.admit_write(zone, 0, 80)
        assert status is Status.SUCCESS
        assert zone.state is ZoneState.FULL
        assert mgr.open_count == 0 and mgr.active_count == 0

    def test_write_beyond_capacity_is_boundary_error(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        status, _ = mgr.admit_write(zone, 0, 81)
        assert status is Status.ZONE_BOUNDARY_ERROR
        assert zone.state is ZoneState.EMPTY

    def test_write_to_full_zone_rejected(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 80)
        status, _ = mgr.admit_write(zone, 80, 1)
        assert status is Status.ZONE_IS_FULL

    def test_max_active_blocks_opening_new_zone(self):
        mgr = manager(max_open=2, max_active=2)
        for i in (0, 1):
            mgr.admit_write(mgr.zones[i], mgr.zones[i].zslba, 1)
            mgr.close(mgr.zones[i])
        # Both open slots are free, but the active budget is exhausted by
        # the two closed zones.
        status, _ = mgr.admit_write(mgr.zones[2], mgr.zones[2].zslba, 1)
        assert status is Status.TOO_MANY_ACTIVE_ZONES

    def test_write_at_max_open_implicitly_closes_victim(self):
        # Regression: this write used to fail with TOO_MANY_OPEN_ZONES;
        # the spec's resource management lets the controller close an
        # implicitly-opened zone to free the slot (null_blk behavior).
        mgr = manager(max_open=1, max_active=3)
        mgr.admit_write(mgr.zones[0], mgr.zones[0].zslba, 1)
        mgr.close(mgr.zones[0])
        mgr.admit_write(mgr.zones[1], mgr.zones[1].zslba, 1)
        # zone 0 is CLOSED (active), zone 1 holds the single open slot.
        status, opened = mgr.admit_write(mgr.zones[0], mgr.zones[0].wp, 1)
        assert status is Status.SUCCESS and opened
        assert mgr.zones[1].state is ZoneState.CLOSED  # evicted victim
        assert mgr.zones[0].state is ZoneState.IMPLICIT_OPEN
        assert mgr.open_count == 1
        mgr.check_invariants()

    def test_implicit_close_picks_lowest_indexed_victim(self):
        mgr = manager(max_open=2, max_active=5)
        for i in (2, 4):
            mgr.admit_write(mgr.zones[i], mgr.zones[i].zslba, 1)
        status, _ = mgr.admit_write(mgr.zones[0], mgr.zones[0].zslba, 1)
        assert status is Status.SUCCESS
        assert mgr.zones[2].state is ZoneState.CLOSED
        assert mgr.zones[4].state is ZoneState.IMPLICIT_OPEN
        mgr.check_invariants()

    def test_misplaced_write_at_max_open_evicts_nothing(self):
        mgr = manager(max_open=1, max_active=3)
        mgr.admit_write(mgr.zones[0], mgr.zones[0].zslba, 1)
        status, _ = mgr.admit_write(mgr.zones[1], mgr.zones[1].zslba + 5, 1)
        assert status is Status.ZONE_INVALID_WRITE
        # The rejected write neither opened zone 1 nor closed zone 0.
        assert mgr.zones[0].state is ZoneState.IMPLICIT_OPEN
        assert mgr.zones[1].state is ZoneState.EMPTY
        mgr.check_invariants()


class TestAppends:
    def test_append_assigns_write_pointer(self):
        mgr = manager()
        zone = mgr.zones[1]
        status, opened, lba = mgr.admit_append(zone, zone.zslba, 4)
        assert status is Status.SUCCESS and opened
        assert lba == zone.zslba
        status, opened, lba = mgr.admit_append(zone, zone.zslba, 4)
        assert status is Status.SUCCESS and not opened
        assert lba == zone.zslba + 4

    def test_append_requires_zone_start_lba(self):
        mgr = manager()
        zone = mgr.zones[1]
        status, _, lba = mgr.admit_append(zone, zone.zslba + 1, 4)
        assert status is Status.INVALID_FIELD and lba == -1

    def test_append_fills_zone(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        status, _, _ = mgr.admit_append(zone, zone.zslba, 80)
        assert status is Status.SUCCESS
        assert zone.state is ZoneState.FULL

    def test_append_to_full_zone_rejected(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_append(zone, zone.zslba, 80)
        status, _, _ = mgr.admit_append(zone, zone.zslba, 1)
        assert status is Status.ZONE_IS_FULL


class TestExplicitTransitions:
    def test_explicit_open_and_close(self):
        mgr = manager()
        zone = mgr.zones[0]
        assert mgr.open(zone) is Status.SUCCESS
        assert zone.state is ZoneState.EXPLICIT_OPEN
        assert mgr.open(zone) is Status.SUCCESS  # idempotent
        mgr.admit_write(zone, 0, 5)
        assert zone.state is ZoneState.EXPLICIT_OPEN  # write keeps explicit
        assert mgr.close(zone) is Status.SUCCESS
        assert zone.state is ZoneState.CLOSED
        assert mgr.close(zone) is Status.SUCCESS  # idempotent

    def test_open_promotes_implicit_to_explicit(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 5)
        assert zone.state is ZoneState.IMPLICIT_OPEN
        assert mgr.open(zone) is Status.SUCCESS
        assert zone.state is ZoneState.EXPLICIT_OPEN
        assert mgr.open_count == 1

    def test_close_of_untouched_open_zone_returns_empty(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.open(zone)
        assert mgr.close(zone) is Status.SUCCESS
        assert zone.state is ZoneState.EMPTY
        assert mgr.active_count == 0

    def test_open_respects_max_open(self):
        # Every slot is *explicitly* held, so there is no implicit-open
        # victim for the controller to evict: the open must fail.
        mgr = manager(max_open=2, max_active=5)
        assert mgr.open(mgr.zones[0]) is Status.SUCCESS
        assert mgr.open(mgr.zones[1]) is Status.SUCCESS
        assert mgr.open(mgr.zones[2]) is Status.TOO_MANY_OPEN_ZONES

    def test_explicit_open_at_limit_evicts_implicit_victim(self):
        # Regression: an explicit open at the max-open limit used to
        # fail even with an implicitly-opened zone available to close.
        mgr = manager(max_open=2, max_active=5)
        mgr.admit_write(mgr.zones[0], mgr.zones[0].zslba, 1)
        assert mgr.open(mgr.zones[1]) is Status.SUCCESS
        assert mgr.open(mgr.zones[2]) is Status.SUCCESS
        assert mgr.zones[0].state is ZoneState.CLOSED
        assert mgr.zones[2].state is ZoneState.EXPLICIT_OPEN
        assert mgr.open_count == 2 and mgr.active_count == 3
        mgr.check_invariants()

    def test_untouched_implicit_victim_returns_to_empty(self):
        # An implicitly-opened zone whose write pointer is still at the
        # start holds no data: evicting it is a close-to-EMPTY, so the
        # active count must drop too. (Reachable via restore_state —
        # admission itself always advances the pointer.)
        mgr = manager(max_open=1, max_active=2)
        snapshot = mgr.state_snapshot()
        snapshot[0] = (ZoneState.IMPLICIT_OPEN.value, 0, 0)
        mgr.restore_state(snapshot)
        assert mgr.open(mgr.zones[1]) is Status.SUCCESS
        assert mgr.zones[0].state is ZoneState.EMPTY
        assert mgr.open_count == 1 and mgr.active_count == 1
        mgr.check_invariants()

    def test_open_full_zone_rejected(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 80)
        assert mgr.open(zone) is Status.INVALID_ZONE_STATE_TRANSITION

    def test_close_empty_zone_rejected(self):
        mgr = manager()
        assert mgr.close(mgr.zones[0]) is Status.INVALID_ZONE_STATE_TRANSITION


class TestFinish:
    def test_finish_pads_to_full(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 30)
        status, pad = mgr.finish(zone)
        assert status is Status.SUCCESS and pad == 50
        assert zone.state is ZoneState.FULL
        assert zone.wp == zone.writable_end
        assert zone.finished_pad_lbas == 50
        assert mgr.active_count == 0

    def test_finish_empty_zone_pads_full_capacity(self):
        # Regression: Empty→Full used to be rejected; the spec's Zone
        # Finish is legal from ZSE and pads the whole writable capacity.
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        status, pad = mgr.finish(zone)
        assert status is Status.SUCCESS and pad == 80
        assert zone.state is ZoneState.FULL
        assert zone.wp == zone.writable_end
        assert zone.finished_pad_lbas == 80
        assert mgr.open_count == 0 and mgr.active_count == 0
        mgr.check_invariants()

    def test_finish_full_zone_is_idempotent_noop(self):
        # Regression: finish-on-FULL used to be rejected; like
        # open/close it is an idempotent SUCCESS, and it must not
        # disturb the pad recorded by an earlier finish.
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 30)
        mgr.finish(zone)
        assert zone.finished_pad_lbas == 50
        status, pad = mgr.finish(zone)
        assert status is Status.SUCCESS and pad == 0
        assert zone.state is ZoneState.FULL
        assert zone.finished_pad_lbas == 50
        mgr.check_invariants()

    def test_finish_closed_zone_allowed(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 10)
        mgr.close(zone)
        status, pad = mgr.finish(zone)
        assert status is Status.SUCCESS and pad == 70


class TestReset:
    def test_reset_returns_prior_occupancy(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 40)
        status, occupied, pad = mgr.reset(zone)
        assert status is Status.SUCCESS
        assert (occupied, pad) == (40, 0)
        assert zone.state is ZoneState.EMPTY
        assert zone.wp == zone.zslba

    def test_reset_of_finished_zone_reports_pad(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 40)
        mgr.finish(zone)
        status, occupied, pad = mgr.reset(zone)
        assert status is Status.SUCCESS
        assert (occupied, pad) == (40, 40)
        assert zone.finished_pad_lbas == 0

    def test_reset_of_empty_zone_is_noop_success(self):
        mgr = manager()
        status, occupied, pad = mgr.reset(mgr.zones[0])
        assert status is Status.SUCCESS and occupied == 0 and pad == 0

    def test_reset_releases_limits(self):
        mgr = manager(max_open=1, max_active=1)
        mgr.admit_write(mgr.zones[0], 0, 10)
        status, _ = mgr.admit_write(mgr.zones[1], 100, 10)
        assert status is Status.TOO_MANY_ACTIVE_ZONES
        mgr.reset(mgr.zones[0])
        status, _ = mgr.admit_write(mgr.zones[1], 100, 10)
        assert status is Status.SUCCESS


class TestPowerLossRollback:
    """Counter accounting across the recovery arc (DESIGN.md §12)."""

    def test_rollback_to_start_returns_zone_to_empty(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 10)
        assert mgr.power_loss_rollback(zone, 10)
        assert zone.state is ZoneState.EMPTY and zone.wp == zone.zslba
        assert mgr.open_count == 0 and mgr.active_count == 0
        mgr.check_invariants()

    def test_full_zone_with_lost_tail_reopens_closed(self):
        mgr = manager(size=100, cap=80)
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 80)
        assert mgr.power_loss_rollback(zone, 5)
        assert zone.state is ZoneState.CLOSED and zone.wp == 75
        assert mgr.active_count == 1
        mgr.check_invariants()

    def test_full_zone_torn_to_empty_at_active_limit(self):
        mgr = manager(max_open=1, max_active=1, size=100, cap=80)
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 80)  # FULL frees the active slot...
        mgr.admit_write(mgr.zones[1], 100, 1)  # ...which zone 1 now holds
        assert mgr.power_loss_rollback(zone, 5)
        # Reopening as CLOSED would exceed max_active: torn down instead.
        assert zone.state is ZoneState.EMPTY and zone.wp == zone.zslba
        mgr.check_invariants()

    def test_partial_rollback_keeps_open_state(self):
        mgr = manager()
        zone = mgr.zones[0]
        mgr.admit_write(zone, 0, 10)
        assert mgr.power_loss_rollback(zone, 4)
        assert zone.state is ZoneState.IMPLICIT_OPEN and zone.wp == 6
        mgr.check_invariants()

    def test_rollback_skips_retired_and_padded_zones(self):
        mgr = manager()
        finished = mgr.zones[0]
        mgr.admit_write(finished, 0, 10)
        mgr.finish(finished)
        assert not mgr.power_loss_rollback(finished, 4)  # pad is metadata
        retired = mgr.zones[1]
        mgr.admit_write(retired, retired.zslba, 10)
        mgr.retire(retired, ZoneState.READ_ONLY)
        assert not mgr.power_loss_rollback(retired, 4)
        mgr.check_invariants()


# --------------------------------------------------------------------------
# Property-based testing: no operation sequence may violate the invariants.
# --------------------------------------------------------------------------

_OPS = st.sampled_from(["write", "append", "open", "close", "finish", "reset"])


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(st.tuples(_OPS, st.integers(0, 5), st.integers(1, 90)), max_size=60),
)
def test_random_operation_sequences_preserve_invariants(ops):
    mgr = manager(num_zones=6, size=100, cap=80, max_open=2, max_active=3)
    for op, zone_index, nlb in ops:
        zone = mgr.zones[zone_index]
        if op == "write":
            mgr.admit_write(zone, zone.wp, nlb)
        elif op == "append":
            mgr.admit_append(zone, zone.zslba, nlb)
        elif op == "open":
            mgr.open(zone)
        elif op == "close":
            mgr.close(zone)
        elif op == "finish":
            mgr.finish(zone)
        elif op == "reset":
            mgr.reset(zone)
        mgr.check_invariants()


@settings(max_examples=100, deadline=None)
@given(chunks=st.lists(st.integers(1, 30), min_size=1, max_size=20))
def test_append_assigned_lbas_are_contiguous_and_ordered(chunks):
    mgr = manager(num_zones=1, size=400, cap=300, max_open=1, max_active=1)
    zone = mgr.zones[0]
    expected = zone.zslba
    for nlb in chunks:
        status, _, lba = mgr.admit_append(zone, zone.zslba, nlb)
        if expected + nlb > zone.writable_end:
            assert status in (Status.ZONE_BOUNDARY_ERROR, Status.ZONE_IS_FULL)
            break
        assert status is Status.SUCCESS
        assert lba == expected
        expected += nlb
