"""Shared helpers for device-level tests."""

from __future__ import annotations

from repro.hostif import LBA_4K, Command, Completion, Opcode, ZoneAction
from repro.sim import Simulator
from repro.zns import ZnsDevice
from repro.zns.profiles import zn540_small


def quiet_profile(**overrides):
    """A small ZN540 profile with jitter disabled for exact-latency tests."""
    return zn540_small(jitter_sigma=0.0, mgmt_jitter_sigma=0.0, **overrides)


def make_device(profile=None, lba_format=LBA_4K, tracer=None, metrics=None,
                faults=None):
    sim = Simulator()
    device = ZnsDevice(sim, profile or quiet_profile(), lba_format=lba_format,
                       tracer=tracer, metrics=metrics, faults=faults)
    return sim, device


def run_cmd(sim: Simulator, device, command: Command) -> Completion:
    """Submit one command and run the simulation until it completes."""
    return sim.run(until=device.submit(command))


def write(slba: int, nlb: int) -> Command:
    return Command(Opcode.WRITE, slba=slba, nlb=nlb)


def read(slba: int, nlb: int) -> Command:
    return Command(Opcode.READ, slba=slba, nlb=nlb)


def append(zslba: int, nlb: int) -> Command:
    return Command(Opcode.APPEND, slba=zslba, nlb=nlb)


def mgmt(zslba: int, action: ZoneAction) -> Command:
    return Command(Opcode.ZONE_MGMT, slba=zslba, action=action)
