"""Tests for the execution engine: cache, worker pool, and assembly.

The headline guarantees under test:

* parallel output is byte-identical to the serial run (plan-order
  assembly + canonical JSON payloads),
* a warm cache replays every point without touching the simulator,
* a crashed or hung worker is killed, the point retries once on a fresh
  worker, and a persistent failure is reported — the sweep never hangs.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time

import pytest

import repro.core.experiments.points as points_mod
from repro.core.experiments.common import ExperimentConfig
from repro.core.experiments.points import (
    ExperimentPlan,
    experiment_plans,
    serialize_result,
)
from repro.core.report import run_experiments
from repro.exec import (
    ExecutionError,
    ResultCache,
    WorkerPool,
    canonical_payload,
    code_version,
    config_fields,
    execute_experiments,
)
from repro.obs.tracer import Tracer
from repro.sim.engine import ms

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker-failure tests monkeypatch the plan registry, which "
           "only propagates to fork-started workers",
)


def tiny_config(**extra) -> ExperimentConfig:
    return ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                            num_zones=16, zones_per_level=3, **extra)


def results_blob(results) -> str:
    return json.dumps(
        {k: serialize_result(v) for k, v in results.items()}, sort_keys=True
    )


class TestResultCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        key = cache.key("fig2a", {"op": "write"}, {"seed": 1}, False)
        assert cache.load(key) is None and cache.misses == 1
        entry = {"payload": {"rows": [{"x": 1.5}]}, "metrics": None,
                 "elapsed_s": 0.25}
        cache.store(key, entry)
        # store() stamps the entry with the code version it ran under.
        assert cache.load(key) == {**entry, "code": "v1"} and cache.hits == 1

    def test_key_covers_all_inputs(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        base = cache.key("fig2a", {"op": "write"}, {"seed": 1}, False)
        assert cache.key("fig2b", {"op": "write"}, {"seed": 1}, False) != base
        assert cache.key("fig2a", {"op": "read"}, {"seed": 1}, False) != base
        assert cache.key("fig2a", {"op": "write"}, {"seed": 2}, False) != base
        assert cache.key("fig2a", {"op": "write"}, {"seed": 1}, True) != base
        other = ResultCache(tmp_path, version="v2")
        assert other.key("fig2a", {"op": "write"}, {"seed": 1}, False) != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        # A truncated/garbled file (e.g. a worker killed mid-write) must
        # read as a miss, be deleted so it never poisons a later run,
        # and count toward the miss statistics.
        cache = ResultCache(tmp_path, version="v1")
        key = cache.key("fig2a", {}, {}, False)
        cache.store(key, {"payload": {}})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.load(key) is None
        assert not path.exists()
        assert cache.misses == 1
        # The slot is usable again after the discard.
        cache.store(key, {"payload": {"v": 1}})
        assert cache.load(key)["payload"] == {"v": 1}

    def test_wrong_shape_entry_is_discarded(self, tmp_path):
        # Valid JSON that isn't a cache entry (not a dict, or a dict
        # without "payload") is treated exactly like corruption.
        cache = ResultCache(tmp_path, version="v1")
        for blob in ('["a", "list"]', '{"no_payload": true}'):
            key = cache.key("fig2a", {"blob": blob}, {}, False)
            cache.store(key, {"payload": {}})
            path = cache._path(key)
            path.write_text(blob)
            assert cache.load(key) is None
            assert not path.exists()

    def test_code_version_is_stable_hex(self):
        first, second = code_version(), code_version()
        assert first == second
        assert len(first) == 64 and int(first, 16) >= 0


class TestCanonicalization:
    def test_tuples_become_lists_and_floats_round_trip(self):
        payload = {"rows": [{"v": 0.1 + 0.2}], "series": [["k", [(1, 2.5)]]]}
        out = canonical_payload(payload)
        assert out["series"] == [["k", [[1, 2.5]]]]
        assert out["rows"][0]["v"] == 0.1 + 0.2  # exact repr round-trip

    def test_numpy_scalars_coerced(self):
        np = pytest.importorskip("numpy")
        out = canonical_payload({"a": np.float64(1.25), "b": np.int64(7)})
        assert out == {"a": 1.25, "b": 7}
        assert isinstance(out["b"], int)

    def test_config_fields_drop_observability_hooks(self):
        config = tiny_config(tracer=Tracer())
        fields = config_fields(config)
        assert "tracer" not in fields and "metrics" not in fields
        assert ExperimentConfig(**fields) == config  # hooks excluded from eq


class TestEngineOutputIdentity:
    IDS = ["fig2a", "obs9"]

    def test_parallel_matches_serial_and_legacy(self):
        config = tiny_config()
        legacy = run_experiments(self.IDS, config)
        serial, _ = execute_experiments(self.IDS, config, jobs=1)
        parallel, _ = execute_experiments(self.IDS, config, jobs=2)
        assert results_blob(serial) == results_blob(parallel)
        # The engine's canonicalized tables render exactly like the
        # legacy serial driver's.
        for exp_id in self.IDS:
            assert serial[exp_id].table() == legacy[exp_id].table()

    def test_cached_rerun_skips_all_simulation(self, tmp_path):
        config = tiny_config()
        first, report1 = execute_experiments(
            self.IDS, config, jobs=1, cache_dir=tmp_path
        )
        assert report1.executed == len(report1.points) > 0
        second, report2 = execute_experiments(
            self.IDS, config, jobs=2, cache_dir=tmp_path
        )
        assert report2.executed == 0
        assert report2.cache_hits == len(report2.points)
        assert results_blob(first) == results_blob(second)

    def test_partial_cache_resumes_only_missing_points(self, tmp_path):
        config = tiny_config()
        _, report1 = execute_experiments(["fig2a"], config, jobs=1,
                                         cache_dir=tmp_path)
        # Drop one checkpointed point; a re-run recomputes just that one.
        # Count only entry shards; the duration sidecar lives at the root.
        entries = sorted(tmp_path.glob("??/*.json"))
        assert len(entries) == report1.executed
        entries[0].unlink()
        _, report2 = execute_experiments(["fig2a"], config, jobs=1,
                                         cache_dir=tmp_path)
        assert report2.executed == 1
        assert report2.cache_hits == len(report2.points) - 1

    def test_metrics_merge_matches_inline_collection(self):
        from repro.obs.metrics import MetricsRegistry

        serial_reg, parallel_reg = MetricsRegistry(), MetricsRegistry()
        import dataclasses

        execute_experiments(
            ["fig2a"], dataclasses.replace(tiny_config(), metrics=serial_reg),
            jobs=1,
        )
        execute_experiments(
            ["fig2a"], dataclasses.replace(tiny_config(), metrics=parallel_reg),
            jobs=2,
        )
        assert serial_reg.snapshot() == parallel_reg.snapshot()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="no-such-exp"):
            execute_experiments(["no-such-exp"], tiny_config())

    def test_tracer_config_rejected(self):
        with pytest.raises(ValueError, match="serially"):
            execute_experiments(["fig2a"], tiny_config(tracer=Tracer()),
                                jobs=2)

    def test_registry_covers_every_legacy_runner(self):
        from repro.core.report import EXPERIMENT_RUNNERS

        assert list(experiment_plans()) == list(EXPERIMENT_RUNNERS())


# --- worker failure handling -------------------------------------------------
#
# The failure plans are injected by monkeypatching the plan registry in
# the parent; fork-started workers inherit the patched module.

_FLAG_ENV = "REPRO_TEST_FAIL_FLAG"


def _failure_plan_registry():
    def _plan(config):
        return [{"mode": "ok"}]

    def _describe(config):
        return {"title": "failure injection", "columns": ["mode", "value"]}

    def _point(config, params):
        mode = params["mode"]
        flag = os.environ.get(_FLAG_ENV, "")
        if mode == "raise":
            raise RuntimeError("deliberate point failure")
        if mode == "crash-once" and flag and not os.path.exists(flag):
            open(flag, "w").close()
            os._exit(13)
        if mode == "hang-once" and flag and not os.path.exists(flag):
            open(flag, "w").close()
            time.sleep(60)
        return {"rows": [{"mode": mode, "value": 1}]}

    plan = ExperimentPlan("failing", _plan, _point, _describe)
    return {"failing": plan}


@pytest.fixture
def failure_plans(monkeypatch, tmp_path):
    import repro.exec.engine as engine_mod

    registry = _failure_plan_registry()
    # Patch both the defining module (inherited by fork-started workers,
    # which resolve it at call time) and the engine's direct binding.
    monkeypatch.setattr(
        points_mod, "experiment_plans", lambda auxiliary=False: registry)
    monkeypatch.setattr(
        engine_mod, "experiment_plans", lambda auxiliary=False: registry)
    monkeypatch.setenv(_FLAG_ENV, str(tmp_path / "attempt.flag"))
    return registry


class TestFailureRecovery:
    def _run(self, params_list, registry, **kwargs):
        registry["failing"] = ExperimentPlan(
            "failing", lambda config: params_list,
            registry["failing"].point, registry["failing"].describe,
        )
        return execute_experiments(["failing"], tiny_config(), **kwargs)

    def test_inline_failure_reported_not_hung(self, failure_plans):
        with pytest.raises(ExecutionError) as excinfo:
            self._run([{"mode": "raise"}], failure_plans, jobs=1)
        assert "deliberate point failure" in str(excinfo.value)
        assert excinfo.value.report.failed == 1

    @needs_fork
    def test_crashed_worker_respawned_and_point_retried(self, failure_plans):
        results, report = self._run(
            [{"mode": "crash-once"}, {"mode": "ok"}], failure_plans, jobs=2,
        )
        record = next(r for r in report.points if "crash-once" in r.label)
        assert record.attempts == 2 and record.source == "run"
        assert results["failing"].find(mode="crash-once") is not None

    @needs_fork
    def test_hung_worker_killed_and_point_retried(self, failure_plans):
        results, report = self._run(
            [{"mode": "hang-once"}, {"mode": "ok"}], failure_plans,
            jobs=2, timeout_s=2.0,
        )
        record = next(r for r in report.points if "hang-once" in r.label)
        assert record.attempts == 2
        assert results["failing"].find(mode="hang-once") is not None

    @needs_fork
    def test_persistent_failure_reported_after_retry(self, failure_plans):
        with pytest.raises(ExecutionError) as excinfo:
            self._run([{"mode": "raise"}, {"mode": "ok"}], failure_plans,
                      jobs=2)
        (failure,) = excinfo.value.failures
        assert failure.attempts == 2
        assert "deliberate point failure" in failure.error


@needs_fork
class TestWorkerPool:
    def test_tasks_complete_across_more_tasks_than_workers(self, failure_plans):
        pool = WorkerPool(jobs=2)
        tasks = [
            {"task_id": i, "experiment_id": "failing",
             "params": {"mode": "ok"}, "config": config_fields(tiny_config()),
             "collect_metrics": False}
            for i in range(5)
        ]
        replies = pool.run(tasks)
        assert sorted(replies) == list(range(5))
        assert all(r["ok"] and r["attempts"] == 1 for r in replies.values())

    def test_empty_task_list(self):
        assert WorkerPool(jobs=2).run([]) == {}

    def test_respawn_budget_fails_fast(self, failure_plans):
        # With a zero respawn budget, the first worker crash exhausts
        # the pool: every task still outstanding (including the one
        # that crashed) fails with a clear budget error instead of the
        # pool respawn-thrashing or hanging forever.
        pool = WorkerPool(jobs=1, max_respawns=0, retry_backoff_s=0.01)
        tasks = [
            {"task_id": i, "experiment_id": "failing",
             "params": {"mode": mode},
             "config": config_fields(tiny_config()),
             "collect_metrics": False}
            for i, mode in enumerate(["crash-once", "ok"])
        ]
        replies = pool.run(tasks)
        assert sorted(replies) == [0, 1]
        for reply in replies.values():
            assert not reply["ok"]
            assert "respawn budget exhausted" in reply["error"]

    def test_bad_job_count_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


class TestCachePrune:
    def _store_one(self, cache: ResultCache, tag: str) -> str:
        key = cache.key("fig2a", {"op": tag}, {"seed": 1}, False)
        cache.store(key, {"payload": tag, "metrics": None, "elapsed_s": 0.1})
        return key

    def test_prune_removes_only_stale_generations(self, tmp_path):
        old = ResultCache(tmp_path, version="v1")
        old_key = self._store_one(old, "old")
        new = ResultCache(tmp_path, version="v2")
        new_key = self._store_one(new, "new")

        stale, kept = new.prune(dry_run=True)
        assert (len(stale), kept) == (1, 1)
        # Dry run deletes nothing.
        assert new.load(old_key) is not None

        stale, kept = new.prune()
        assert (len(stale), kept) == (1, 1)
        assert new.load(old_key) is None
        assert new.load(new_key)["payload"] == "new"

    def test_prune_drops_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        key = self._store_one(cache, "good")
        bad = tmp_path / "ab" / ("b" * 64 + ".json")
        bad.parent.mkdir(exist_ok=True)
        bad.write_text("{not json")
        stale, kept = cache.prune()
        assert (len(stale), kept) == (1, 1)
        assert not bad.exists() and cache.load(key) is not None

    def test_prune_preserves_duration_sidecar(self, tmp_path):
        old = ResultCache(tmp_path, version="v1")
        self._store_one(old, "old")
        old.record_duration("deadbeef", 1.25)
        old.flush_durations()
        new = ResultCache(tmp_path, version="v2")
        new.prune()
        assert new.duration_hint("deadbeef") == 1.25

    def test_prune_missing_directory_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "nonexistent", version="v1")
        assert cache.prune() == ([], 0)


def _ran_labels(progress_lines: list[str]) -> list[str]:
    """The ``experiment:label`` tokens in per-point progress lines."""
    ran = []
    for line in progress_lines:
        parts = line.split()
        if len(parts) >= 3 and "/" in parts[1]:
            ran.append(parts[2])
    return ran


class TestLongestFirstScheduling:
    def test_cold_cache_runs_in_plan_order(self, tmp_path):
        config = tiny_config()
        lines: list[str] = []
        execute_experiments(["fig2a"], config, jobs=1, cache_dir=tmp_path,
                            progress=lines.append)
        plan_labels = [
            "fig2a:" + points_mod.point_label(canonical_payload(p))
            for p in experiment_plans()["fig2a"].plan(config)
        ]
        assert _ran_labels(lines) == plan_labels

    def test_warm_hints_schedule_longest_first(self, tmp_path):
        config = tiny_config()
        serial, _ = execute_experiments(["fig2a"], config, jobs=1)
        execute_experiments(["fig2a"], config, jobs=1, cache_dir=tmp_path)

        # Rewrite the sidecar so recorded durations grow with plan index,
        # then orphan every entry: all points miss, but hints survive.
        cache = ResultCache(tmp_path)
        cfg = config_fields(config)
        params = [canonical_payload(p)
                  for p in experiment_plans()["fig2a"].plan(config)]
        for index, point_params in enumerate(params):
            cache.record_duration(
                cache.hint_key("fig2a", point_params, cfg), float(index))
        cache.flush_durations()
        for entry in tmp_path.glob("??/*.json"):
            entry.unlink()

        lines = []
        results, report = execute_experiments(
            ["fig2a"], config, jobs=1, cache_dir=tmp_path,
            progress=lines.append)
        plan_labels = ["fig2a:" + points_mod.point_label(p) for p in params]
        # Longest hint first = reverse plan order ...
        assert _ran_labels(lines) == list(reversed(plan_labels))
        assert report.executed == len(params)
        # ... while assembly stays in plan order: output is unchanged.
        assert results_blob(results) == results_blob(serial)

    def test_unknown_hints_run_before_known(self, tmp_path):
        config = tiny_config()
        execute_experiments(["fig2a"], config, jobs=1, cache_dir=tmp_path)
        # Start from an empty sidecar (the run above hinted every point).
        (tmp_path / "durations.json").unlink()
        cache = ResultCache(tmp_path)
        cfg = config_fields(config)
        params = [canonical_payload(p)
                  for p in experiment_plans()["fig2a"].plan(config)]
        # Hint every point except the last; orphan all entries.
        for index, point_params in enumerate(params[:-1]):
            cache.record_duration(
                cache.hint_key("fig2a", point_params, cfg), 1.0 + index)
        cache.flush_durations()
        for entry in tmp_path.glob("??/*.json"):
            entry.unlink()
        lines = []
        execute_experiments(["fig2a"], config, jobs=1, cache_dir=tmp_path,
                            progress=lines.append)
        first = _ran_labels(lines)[0]
        assert first == "fig2a:" + points_mod.point_label(params[-1])


class TestEngineDeterminism:
    """The sim-core fast paths must not perturb results (PR 3 oracle)."""

    def test_back_to_back_runs_byte_identical(self):
        config = tiny_config()
        first, report = execute_experiments(["fig2a", "fig4a"], config, jobs=1)
        second, _ = execute_experiments(["fig2a", "fig4a"], config, jobs=1)
        assert results_blob(first) == results_blob(second)
        # Every freshly-run point reports its simulated event count.
        assert all(r.events > 0 for r in report.points if r.source == "run")
        assert report.events_per_s > 0


class TestBench:
    def test_run_bench_document_shape(self, tmp_path):
        from repro.exec.bench import BENCH_SCHEMA, run_bench

        doc = run_bench(["fig2a"], tiny_config(), jobs=1)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["points"] == 12 and doc["cache_hits"] == 0
        assert doc["events"] > 0 and doc["events_per_s"] > 0
        row = doc["experiments"]["fig2a"]
        assert row["points"] == 12 and row["events"] == doc["events"]

    def test_compare_gates_on_events_per_s(self):
        from repro.exec.bench import compare

        baseline = {"events_per_s": 1000.0}
        assert compare({"events_per_s": 900.0}, baseline) == []
        assert compare({"events_per_s": 799.0}, baseline)
        # A fully-cached run (no fresh timing signal) never fails.
        assert compare({"events_per_s": 0.0}, baseline) == []
        assert compare({"events_per_s": 900.0}, {}) == []
