"""Unit tests for the NAND flash substrate."""

import pytest

from repro.flash import KIB, MIB, FlashBackend, FlashGeometry, NandTiming
from repro.sim import Simulator, us


def small_geometry(**overrides) -> FlashGeometry:
    base = dict(
        channels=2,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_size=16 * KIB,
    )
    base.update(overrides)
    return FlashGeometry(**base)


class TestGeometry:
    def test_derived_sizes(self):
        geo = small_geometry()
        assert geo.total_dies == 4
        assert geo.total_planes == 8
        assert geo.block_bytes == 8 * 16 * KIB
        assert geo.plane_bytes == 4 * geo.block_bytes
        assert geo.die_bytes == 2 * geo.plane_bytes
        assert geo.capacity_bytes == 4 * geo.die_bytes
        assert geo.total_blocks == 8 * 4
        assert geo.total_pages == geo.total_blocks * 8

    def test_die_index_flattening_is_bijective(self):
        geo = small_geometry()
        seen = set()
        for ch in range(geo.channels):
            for die in range(geo.dies_per_channel):
                idx = geo.die_index(ch, die)
                assert geo.channel_of_die(idx) == ch
                seen.add(idx)
        assert seen == set(range(geo.total_dies))

    def test_die_index_bounds_checked(self):
        geo = small_geometry()
        with pytest.raises(ValueError):
            geo.die_index(2, 0)
        with pytest.raises(ValueError):
            geo.die_index(0, 2)
        with pytest.raises(ValueError):
            geo.channel_of_die(geo.total_dies)

    def test_pages_needed_rounds_up(self):
        geo = small_geometry()
        assert geo.pages_needed(0) == 0
        assert geo.pages_needed(1) == 1
        assert geo.pages_needed(16 * KIB) == 1
        assert geo.pages_needed(16 * KIB + 1) == 2

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            small_geometry(channels=0)
        with pytest.raises(ValueError):
            small_geometry(page_size=1000)  # not multiple of 512

    def test_zn540_like_geometry_bandwidth(self):
        """The default geometry + timing should land near the paper's
        1,155 MiB/s device write limit."""
        geo = FlashGeometry()
        timing = NandTiming()
        bw_mib = timing.program_bandwidth(geo) / MIB
        assert 1_050 <= bw_mib <= 1_250


class TestNandTiming:
    def test_defaults_are_positive(self):
        t = NandTiming()
        assert t.read_ns > 0 and t.program_ns > 0 and t.erase_ns > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NandTiming(read_ns=0)
        with pytest.raises(ValueError):
            NandTiming(program_ns=-5)

    def test_read_rate(self):
        geo = small_geometry()
        t = NandTiming(read_ns=us(50))
        assert t.read_rate(geo) == pytest.approx(4 / 50e-6)


class TestBackend:
    def make(self, **kw):
        sim = Simulator()
        geo = small_geometry()
        timing = NandTiming(read_ns=us(60), program_ns=us(400), erase_ns=us(3000))
        return sim, FlashBackend(sim, geo, timing, **kw)

    def test_transfer_time_scales_with_bytes(self):
        sim, backend = self.make(channel_bandwidth=512 * MIB)
        one = backend.transfer_ns(4 * KIB)
        four = backend.transfer_ns(16 * KIB)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_single_read_latency(self):
        sim, backend = self.make()
        done = sim.process(backend.read_page(0))
        sim.run(until=done)
        expected = us(60) + backend.transfer_ns(16 * KIB)
        assert sim.now == expected
        assert backend.counters.pages_read == 1

    def test_single_program_latency(self):
        sim, backend = self.make()
        done = sim.process(backend.program_page(0))
        sim.run(until=done)
        assert sim.now == backend.transfer_ns(16 * KIB) + us(400)
        assert backend.counters.pages_programmed == 1

    def test_erase_occupies_die(self):
        sim, backend = self.make()
        done = sim.process(backend.erase_block(3))
        sim.run(until=done)
        assert sim.now == us(3000)
        assert backend.counters.blocks_erased == 1

    def test_programs_to_same_die_serialize(self):
        sim, backend = self.make()
        sim.process(backend.program_page(0))
        d2 = sim.process(backend.program_page(0))
        sim.run(until=d2)
        xfer = backend.transfer_ns(16 * KIB)
        # Second program waits for the first: bus transfers pipeline, but
        # the die runs one program at a time.
        assert sim.now >= 2 * us(400) + xfer

    def test_programs_to_different_channels_run_in_parallel(self):
        sim, backend = self.make()
        geo = backend.geometry
        die_a = geo.die_index(0, 0)
        die_b = geo.die_index(1, 0)
        sim.process(backend.program_page(die_a))
        sim.process(backend.program_page(die_b))
        sim.run()
        xfer = backend.transfer_ns(16 * KIB)
        assert sim.now == xfer + us(400)

    def test_priority_read_overtakes_queued_background_work(self):
        sim, backend = self.make()
        finish_order = []

        def op(tag, gen):
            yield sim.process(gen)
            finish_order.append(tag)

        # Saturate die 0 with background (low-priority) erases, then issue
        # a high-priority read: the read must finish before the queued
        # erases that arrived earlier.
        sim.process(op("erase1", backend.erase_block(0, priority=10)))
        sim.process(op("erase2", backend.erase_block(0, priority=10)))
        sim.process(op("erase3", backend.erase_block(0, priority=10)))
        sim.process(op("read", backend.read_page(0, priority=0)))
        sim.run()
        assert finish_order.index("read") < finish_order.index("erase2")

    def test_die_queue_depth_visibility(self):
        sim, backend = self.make()
        sim.process(backend.erase_block(0))
        sim.process(backend.erase_block(0))
        sim.run(until=us(1))
        assert backend.die_queue_depth(0) == 2

    def test_busy_time_accounting(self):
        sim, backend = self.make()
        done = sim.process(backend.program_page(2))
        sim.run(until=done)
        assert backend.die_busy_ns(2) == us(400)
        assert backend.die_busy_ns(0) == 0

    def test_invalid_channel_bandwidth_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlashBackend(sim, small_geometry(), NandTiming(), channel_bandwidth=0)

    def test_negative_transfer_rejected(self):
        _, backend = self.make()
        with pytest.raises(ValueError):
            backend.transfer_ns(-1)
