"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_env_prints_table2(self, capsys):
        assert main(["env"]) == 0
        out = capsys.readouterr().out
        assert "ZN540" in out and "904" in out

    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig2a" in out and "fig7" in out and "fig8" in out

    def test_run_selected_experiment(self, capsys):
        assert main(["--fast", "run", "fig2a"]) == 0
        out = capsys.readouterr().out
        assert "[fig2a]" in out and "spdk" in out

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["--fast", "run", "figZZ"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            main(["--scale", "-1", "run", "fig2a"])


class TestObservabilityCli:
    def test_run_with_trace_and_metrics(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        perfetto = tmp_path / "trace.json"
        assert main(["--fast", "run", "fig2b", "--trace", str(jsonl),
                     "--trace-perfetto", str(perfetto), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "[trace]" in out and "[metrics]" in out
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line)["ts"] >= 0 for line in lines)
        payload = json.loads(perfetto.read_text())
        assert payload["traceEvents"]

    def test_profile_self(self, capsys):
        assert main(["profile", "--self"]) == 0
        out = capsys.readouterr().out
        assert "per-layer attribution" in out and "nand" in out

    def test_profile_experiment(self, capsys):
        assert main(["--fast", "profile", "fig2b"]) == 0
        out = capsys.readouterr().out
        assert "[profile] experiment fig2b" in out
        assert "per-opcode latency" in out

    def test_profile_without_target_errors(self):
        with pytest.raises(SystemExit):
            main(["profile"])
