"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_env_prints_table2(self, capsys):
        assert main(["env"]) == 0
        out = capsys.readouterr().out
        assert "ZN540" in out and "904" in out

    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig2a" in out and "fig7" in out and "fig8" in out

    def test_run_selected_experiment(self, capsys):
        assert main(["--fast", "run", "fig2a"]) == 0
        out = capsys.readouterr().out
        assert "[fig2a]" in out and "spdk" in out

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["--fast", "run", "figZZ"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            main(["--scale", "-1", "run", "fig2a"])
