"""Tests for the application substrates (zonefs, striped zone array)."""

import pytest

from repro.apps import StripedZoneArray, ZoneFs
from repro.stacks import SpdkStack
from repro.zns import ZoneState

from .util import make_device

KIB = 1024


@pytest.fixture()
def fs():
    sim, dev = make_device()
    return ZoneFs(dev, SpdkStack(dev))


@pytest.fixture()
def array():
    sim, dev = make_device()
    return StripedZoneArray(dev, member_zones=[0, 1, 2, 3],
                            stripe_unit=64 * KIB, stack=SpdkStack(dev))


class TestZoneFs:
    def test_one_file_per_zone(self, fs):
        assert len(fs) == 32
        assert fs.file(3).name == "seq/3"
        assert fs.file(0).size == 0
        assert fs.file(0).max_size == 6 * 1024 * KIB

    def test_append_grows_file(self, fs):
        f = fs.file(0)
        f.append(16 * KIB)
        f.append(8 * KIB)
        assert f.size == 24 * KIB

    def test_read_within_eof(self, fs):
        f = fs.file(0)
        f.append(32 * KIB)
        assert f.pread(0, 32 * KIB).ok
        assert f.pread(16 * KIB, 8 * KIB).ok

    def test_read_beyond_eof_rejected(self, fs):
        f = fs.file(0)
        f.append(4 * KIB)
        with pytest.raises(ValueError, match="beyond EOF"):
            f.pread(0, 8 * KIB)

    def test_truncate_zero_resets(self, fs):
        f = fs.file(0)
        f.append(64 * KIB)
        f.truncate(0)
        assert f.size == 0
        assert fs.device.zones.zones[0].state is ZoneState.EMPTY

    def test_truncate_to_capacity_finishes(self, fs):
        f = fs.file(0)
        f.append(4 * KIB)
        f.truncate(f.max_size)
        assert fs.device.zones.zones[0].state is ZoneState.FULL
        assert f.size == f.max_size

    def test_partial_truncate_rejected(self, fs):
        f = fs.file(0)
        f.append(8 * KIB)
        with pytest.raises(ValueError, match="zonefs only supports"):
            f.truncate(4 * KIB)

    def test_statfs(self, fs):
        fs.file(0).append(8 * KIB)
        fs.file(1).append(4 * KIB)
        stat = fs.statfs()
        assert stat["files"] == 32
        assert stat["used"] == 12 * KIB
        assert stat["open_files"] == 2

    def test_misaligned_io_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.file(0).append(1000)
        with pytest.raises(ValueError):
            fs.file(0).pread(1, 4 * KIB)

    def test_unknown_file_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.file(99)


class TestStripedZoneArray:
    def test_capacity_is_sum_of_members(self, array):
        assert array.width == 4
        assert array.capacity == 4 * 6 * 1024 * KIB

    def test_append_stripes_round_robin(self, array):
        start, completions = array.append(256 * KIB)  # 4 stripe units
        assert start == 0
        assert len(completions) == 4
        # One unit landed on each member zone.
        for z in range(4):
            assert array.device.zones.zones[z].occupancy_lbas == 16  # 64 KiB

    def test_small_append_advances_member_cursor(self, array):
        array.append(64 * KIB)   # member 0
        array.append(64 * KIB)   # member 1
        occ = [array.device.zones.zones[z].occupancy_lbas for z in range(4)]
        assert occ == [16, 16, 0, 0]

    def test_read_reassembles_across_members(self, array):
        array.append(256 * KIB)
        completions = array.pread(0, 256 * KIB)
        assert len(completions) == 4
        # A read inside one stripe unit touches exactly one member.
        assert len(array.pread(64 * KIB, 32 * KIB)) == 1

    def test_read_spanning_stripe_boundary(self, array):
        array.append(256 * KIB)
        completions = array.pread(32 * KIB, 64 * KIB)
        assert len(completions) == 2

    def test_read_beyond_written_rejected(self, array):
        array.append(64 * KIB)
        with pytest.raises(ValueError, match="beyond the written extent"):
            array.pread(0, 128 * KIB)

    def test_capacity_enforced(self, array):
        with pytest.raises(ValueError, match="exceeds the array capacity"):
            array.append(array.capacity + 64 * KIB)

    def test_reset_reclaims_all_members(self, array):
        array.append(512 * KIB)
        array.reset()
        assert array.written == 0
        assert all(
            array.device.zones.zones[z].state is ZoneState.EMPTY
            for z in array.member_zones
        )
        # The array is reusable after reset.
        start, _ = array.append(64 * KIB)
        assert start == 0

    def test_striped_append_beats_sequential_appends(self):
        """The point of the array: its stripe units are issued
        *concurrently* across members, so a striped append completes
        faster than the same volume issued one unit at a time."""
        from .util import quiet_profile

        def elapsed(striped: bool) -> int:
            sim, dev = make_device(quiet_profile())
            array = StripedZoneArray(dev, list(range(4)),
                                     stripe_unit=64 * KIB, stack=SpdkStack(dev))
            start = sim.now
            for _ in range(8):
                if striped:
                    array.append(256 * KIB)       # 4 concurrent units
                else:
                    for _ in range(4):
                        array.append(64 * KIB)    # 4 serialized units
            return sim.now - start

        assert elapsed(striped=True) < 0.5 * elapsed(striped=False)

    def test_validation(self):
        sim, dev = make_device()
        with pytest.raises(ValueError):
            StripedZoneArray(dev, member_zones=[0])
        with pytest.raises(ValueError):
            StripedZoneArray(dev, member_zones=[0, 0])
        with pytest.raises(ValueError):
            StripedZoneArray(dev, member_zones=[0, 1], stripe_unit=1000)
        array = StripedZoneArray(dev, member_zones=[0, 1])
        with pytest.raises(ValueError):
            array.append(1000)
