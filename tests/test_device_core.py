"""Tests for the shared device-core layer.

Covers the :class:`~repro.device.core.DeviceCore` extraction: the
request-planner cache lifecycle (hits, reformat invalidation), ZNS/conv
parity of the shared pipeline (one definition of the controller service,
completion path, and counters), golden-output identity for
representative experiments, the §IV fidelity plan, and the schema-2
bench document.
"""

import pathlib

from repro.conv import ConvDevice
from repro.conv.device import DeviceCounters as ConvCounters
from repro.core import ExperimentConfig
from repro.core.experiments.points import (
    assemble,
    experiment_plans,
    run_via_points,
)
from repro.device import DeviceCore, DeviceCounters, RequestPlanner
from repro.device.core import PRIO_IO as CORE_PRIO_IO
from repro.hostif import LBA_512, Command, Opcode
from repro.sim import ms
from repro.zns import ZnsDevice
from repro.zns.device import PRIO_IO as ZNS_PRIO_IO
from repro.zns.device import DeviceCounters as ZnsCounters

from .test_conv_device import make_conv
from .util import append, make_device, read, run_cmd, write

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def golden_config():
    """The config the committed golden tables were rendered at
    (``repro --fast``, default seed)."""
    return ExperimentConfig(point_runtime_ns=ms(3), ramp_ns=ms(0.5),
                            zones_per_level=5, interference_reset_zones=12,
                            interference_runtime_ns=ms(600))


class TestPlannerCache:
    def test_repeated_shapes_hit_the_cache(self):
        sim, dev = make_device()
        planner = dev.planner
        zone = dev.zones.zones[0]
        assert run_cmd(sim, dev, write(zone.wp, 4)).ok
        built = planner.plans_built
        assert built > 0
        assert run_cmd(sim, dev, write(zone.wp, 4)).ok
        assert planner.plans_built == built  # same shape: pure lookup
        assert planner.cached_plans > 0

    def test_read_spans_shared_across_same_stripe_class(self):
        sim, dev = make_device()
        dev.force_fill(0, 8)
        dev.force_fill(dev.zones.zones[1].index, 8)
        assert run_cmd(sim, dev, read(dev.zones.zones[0].zslba, 4)).ok
        built = dev.planner.plans_built
        # Zone 1 starts on a different die, so its table is a new plan,
        # but a second read of zone 0 reuses everything.
        assert run_cmd(sim, dev, read(dev.zones.zones[0].zslba, 4)).ok
        assert dev.planner.plans_built == built

    def test_reformat_invalidates_every_plan(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        assert run_cmd(sim, dev, append(zone.zslba, 4)).ok
        sim.run()  # drain background flushes so the device is quiescent
        assert dev.planner.cached_plans > 0
        assert dev.planner.invalidations == 0
        dev.reformat(LBA_512)
        assert dev.planner.invalidations == 1
        assert dev.planner.cached_plans == 0
        assert dev.namespace.block_size == 512
        # Plans rebuild against the new LBA size.
        zone = dev.zones.zones[0]
        assert run_cmd(sim, dev, write(zone.wp, 8)).ok
        shape = dev.planner.io_shape(Opcode.WRITE, 8)
        assert shape.nbytes == 8 * 512

    def test_conv_reformat_also_invalidates(self):
        sim, dev = make_conv()
        assert run_cmd(sim, dev, write(0, 4)).ok
        sim.run()
        assert dev.planner.cached_plans > 0
        dev.reformat(LBA_512)
        assert dev.planner.invalidations == 1
        assert dev.planner.cached_plans == 0
        assert run_cmd(sim, dev, write(0, 8)).ok


class TestSharedCore:
    def test_one_counters_definition_reexported(self):
        assert ZnsCounters is DeviceCounters
        assert ConvCounters is DeviceCounters
        assert ZNS_PRIO_IO is CORE_PRIO_IO

    def test_models_are_core_specializations(self):
        assert issubclass(ZnsDevice, DeviceCore)
        assert issubclass(ConvDevice, DeviceCore)
        assert ZnsDevice.kind == "zns" and ConvDevice.kind == "conv"
        # The pipeline methods are inherited, not re-implemented.
        for name in ("_controller_service", "_complete", "submit",
                     "reformat", "_flush_page_to_die"):
            assert getattr(ZnsDevice, name) is getattr(DeviceCore, name)
            assert getattr(ConvDevice, name) is getattr(DeviceCore, name)

    def test_both_models_share_planner_type(self):
        _sim, zns = make_device()
        _sim2, conv = make_conv()
        assert isinstance(zns.planner, RequestPlanner)
        assert isinstance(conv.planner, RequestPlanner)

    def test_unsupported_opcodes_raise_synchronously(self):
        import pytest

        sim, zns = make_device()
        with pytest.raises(ValueError):
            zns.submit(Command(Opcode.TRIM, slba=0, nlb=4))
        sim2, conv = make_conv()
        with pytest.raises(ValueError):
            conv.submit(Command(Opcode.APPEND, slba=0, nlb=4))

    def test_counters_account_identically(self):
        sim, zns = make_device()
        zone = zns.zones.zones[0]
        assert run_cmd(sim, zns, write(zone.wp, 4)).ok
        sim2, conv = make_conv()
        assert run_cmd(sim2, conv, write(0, 4)).ok
        assert zns.counters.completed[Opcode.WRITE] == 1
        assert conv.counters.completed[Opcode.WRITE] == 1
        assert zns.counters.bytes_written == conv.counters.bytes_written == 4 * 4096


class TestGoldenIdentity:
    """The refactor must not move a single byte of experiment output."""

    def _check(self, exp_id: str, golden_name: str):
        plans = experiment_plans()
        result = run_via_points(plans[exp_id], golden_config())
        golden = (GOLDEN_DIR / golden_name).read_text()
        assert result.table() + "\n" == golden

    def test_fig2b_matches_golden(self):
        self._check("fig2b", "fig2b_fast.txt")

    def test_fig4a_matches_golden(self):
        self._check("fig4a", "fig4a_fast.txt")


def _synthetic_quantities(name: str) -> dict:
    """A quantities dict that reproduces every probed observation when
    judged against itself (ratios chosen to satisfy the orderings)."""
    return {
        "name": name,
        "lat_w4": 10.0, "lat_w32": 20.0, "lat_a4": 12.0, "lat_a8": 14.0,
        "write_intra_qd8": 300.0, "write_inter_8z": 200.0,
        "append_intra_qd4": 150.0, "append_inter_4z": 150.0,
        "read_intra_qd64": 400.0, "append8k_qd4_mibs": 500.0,
        "open_us": 10.0, "implicit_penalty_us": 10.0,
        "reset_empty_ms": 1.0, "reset_full_ms": 3.0,
        "finish_low_ms": 50.0, "finish_high_ms": 1.0,
        "reset_iso_ms": 3.0, "reset_loaded_p95_ms": 6.0,
        "write_drift": 0.01,
    }


class TestFidelityPlan:
    def test_registered_as_auxiliary_only(self):
        assert "sec4" not in experiment_plans()
        assert "sec4" in experiment_plans(auxiliary=True)

    def test_plan_lists_one_point_per_model(self):
        from repro.emulators.fidelity import FIDELITY_PLAN
        from repro.emulators.models import ALL_MODELS

        params = FIDELITY_PLAN.plan(ExperimentConfig())
        assert params == [{"model": m.name} for m in ALL_MODELS]

    def test_fold_builds_verdict_rows_with_int_keys(self):
        from repro.emulators.fidelity import FIDELITY_PLAN, PROBED_OBSERVATIONS
        from repro.emulators.models import ALL_MODELS

        payloads = [
            {"quantities": _synthetic_quantities(m.name)} for m in ALL_MODELS
        ]
        result = assemble(FIDELITY_PLAN, ExperimentConfig(), payloads)
        assert len(result.rows) == len(PROBED_OBSERVATIONS)
        # Every model matches the reference exactly, so everything
        # reproduces.
        for row in result.rows:
            assert all(row[m.name] == "yes" for m in ALL_MODELS)
        # The verdict dicts keep their *int* observation keys: the fold
        # runs in-process, after the JSON round-trip of the payloads.
        verdicts = result.meta["verdicts"]
        for model in ALL_MODELS:
            assert set(verdicts[model.name]) == set(PROBED_OBSERVATIONS)


class TestBenchSchema3:
    def test_reps_record_variance(self, tmp_path):
        from repro.exec.bench import BENCH_SCHEMA, run_bench

        from .test_exec import tiny_config

        doc = run_bench(["fig2a"], tiny_config(), reps=2,
                        cache_dir=str(tmp_path / "cache"))
        assert doc["schema"] == BENCH_SCHEMA == 3
        assert doc["reps"] == 2
        assert doc["events_per_s_stdev"] >= 0.0
        row = doc["experiments"]["fig2a"]
        assert row["wall_s_stdev"] >= 0.0
        assert row["events_per_s_stdev"] >= 0.0
        # reps > 1 disables the cache: nothing may be written to it.
        assert not (tmp_path / "cache").exists()

    def test_single_rep_has_zero_stdev(self):
        from repro.exec.bench import run_bench

        from .test_exec import tiny_config

        doc = run_bench(["fig2a"], tiny_config(), reps=1)
        assert doc["reps"] == 1
        assert doc["events_per_s_stdev"] == 0.0
        assert doc["experiments"]["fig2a"]["wall_s_stdev"] == 0.0

    def test_engine_microbench_rows(self):
        from repro.exec.bench import ENGINE_MICROBENCHES, run_bench

        from .test_exec import tiny_config

        doc = run_bench(["fig2a"], tiny_config(), reps=1)
        engine = doc["engine"]
        assert set(engine) == {name for name, _ in ENGINE_MICROBENCHES}
        for row in engine.values():
            assert row["events"] > 0
            assert row["events_per_s"] > 0.0
            assert row["events_per_s_stdev"] == 0.0  # single rep

    def test_engine_microbench_counts_are_deterministic(self):
        from repro.exec.bench import run_engine_microbench

        first = run_engine_microbench()
        second = run_engine_microbench()
        assert ({n: r["events"] for n, r in first.items()}
                == {n: r["events"] for n, r in second.items()})
