"""Tests for trace recording, (de)serialization, and open-loop replay."""

import pytest

from repro.hostif import Opcode
from repro.sim import ms, sec, us
from repro.stacks import SpdkStack
from repro.workload.trace import Trace, TraceRecord, TraceReplayer, synthetic_trace

from .util import make_device


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, Opcode.READ, 0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0, Opcode.ZONE_MGMT, 0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0, Opcode.READ, 0, 0)

    def test_to_command(self):
        cmd = TraceRecord(5, Opcode.WRITE, 8, 2).to_command()
        assert cmd.opcode is Opcode.WRITE and cmd.slba == 8 and cmd.nlb == 2


class TestTrace:
    def test_records_sorted_by_time(self):
        trace = Trace([
            TraceRecord(300, Opcode.READ, 0, 1),
            TraceRecord(100, Opcode.READ, 4, 1),
        ])
        assert [r.timestamp_ns for r in trace] == [100, 300]

    def test_csv_roundtrip(self):
        trace = synthetic_trace(ms(1), iops=5000, seed=3)
        loaded = Trace.from_csv(trace.to_csv())
        assert list(loaded) == list(trace)

    def test_csv_bad_header_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_csv("a,b,c\n1,2,3\n")

    def test_csv_bad_opcode_rejected(self):
        text = "timestamp_ns,opcode,slba,nlb\n1,erase,0,1\n"
        with pytest.raises(ValueError):
            Trace.from_csv(text)

    def test_save_load(self, tmp_path):
        trace = synthetic_trace(ms(1), iops=2000, seed=4)
        path = tmp_path / "trace.csv"
        trace.save(path)
        assert list(Trace.load(path)) == list(trace)

    def test_offered_iops(self):
        trace = synthetic_trace(sec(1), iops=10_000, seed=5)
        assert trace.offered_iops() == pytest.approx(10_000, rel=0.05)


class TestSyntheticTrace:
    def test_sequential_pattern_advances(self):
        trace = synthetic_trace(ms(1), iops=5000, pattern="seq", nlb=2,
                                address_range=(0, 100), arrival="uniform")
        slbas = [r.slba for r in trace][:5]
        assert slbas == [0, 2, 4, 6, 8]

    def test_random_pattern_within_range(self):
        trace = synthetic_trace(ms(1), iops=3000, address_range=(100, 200))
        assert all(100 <= r.slba < 200 for r in trace)

    def test_uniform_arrivals_evenly_spaced(self):
        trace = synthetic_trace(ms(1), iops=4000, arrival="uniform")
        stamps = [r.timestamp_ns for r in trace]
        gaps = {b - a for a, b in zip(stamps, stamps[1:])}
        assert len(gaps) <= 2  # integer rounding only

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_trace(0, iops=100)
        with pytest.raises(ValueError):
            synthetic_trace(ms(1), iops=100, pattern="zipf")
        with pytest.raises(ValueError):
            synthetic_trace(ms(1), iops=100, address_range=(0, 0))


class TestReplay:
    def _device_with_data(self):
        sim, dev = make_device()
        for z in (0, 1):
            dev.force_fill(z, dev.zones.zones[z].cap_lbas)
        return sim, dev

    def test_replay_completes_all_records(self):
        sim, dev = self._device_with_data()
        trace = synthetic_trace(ms(5), iops=5_000, opcode=Opcode.READ,
                                address_range=(0, dev.zones.zones[0].cap_lbas))
        replayer = TraceReplayer(SpdkStack(dev), trace).run()
        assert replayer.completed == len(trace)
        assert replayer.errors == 0
        assert replayer.latency.count == len(trace)

    def test_open_loop_latency_matches_device_when_underloaded(self):
        sim, dev = self._device_with_data()
        # 5 K reads/s << the 424 K cap: latency is the idle read latency.
        trace = synthetic_trace(ms(5), iops=5_000, opcode=Opcode.READ,
                                address_range=(0, dev.zones.zones[0].cap_lbas))
        replayer = TraceReplayer(SpdkStack(dev), trace).run()
        assert replayer.latency.mean_us == pytest.approx(73, rel=0.05)
        assert replayer.late_submissions == 0

    def test_overload_marks_late_submissions(self):
        sim, dev = self._device_with_data()
        # 2 M reads/s >> any cap: the replay cannot keep up at QD cap 8.
        trace = synthetic_trace(ms(2), iops=2_000_000, opcode=Opcode.READ,
                                address_range=(0, dev.zones.zones[0].cap_lbas))
        replayer = TraceReplayer(SpdkStack(dev), trace, max_outstanding=8).run()
        assert replayer.late_submissions > 0
        assert replayer.completed == len(trace)

    def test_outstanding_bound_validation(self):
        sim, dev = self._device_with_data()
        with pytest.raises(ValueError):
            TraceReplayer(SpdkStack(dev), Trace(), max_outstanding=0)

    def test_write_trace_on_zns_respects_wp(self):
        sim, dev = make_device()
        # A sequential write trace is exactly wp-ordered: all succeed.
        trace = synthetic_trace(ms(2), iops=20_000, opcode=Opcode.WRITE,
                                pattern="seq", nlb=1,
                                address_range=(0, dev.zones.zones[0].cap_lbas))
        replayer = TraceReplayer(SpdkStack(dev), trace, max_outstanding=1).run()
        assert replayer.errors == 0
        assert dev.zones.zones[0].wp == len(trace)
