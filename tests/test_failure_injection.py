"""Failure injection: READ_ONLY / OFFLINE zones, and conventional trim."""

import pytest

from repro.hostif import Command, Opcode, Status, ZoneAction
from repro.sim import Simulator
from repro.zns import ZoneState
from repro.conv import ConvDevice

from .test_conv_device import conv_profile
from .util import append, make_device, mgmt, read, run_cmd, write


class TestZoneFailureInjection:
    def test_read_only_zone_rejects_writes_but_serves_reads(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 4))
        dev.inject_zone_failure(0, ZoneState.READ_ONLY)
        assert run_cmd(sim, dev, write(4, 1)).status is Status.ZONE_IS_READ_ONLY
        assert run_cmd(sim, dev, read(0, 4)).ok

    def test_offline_zone_rejects_everything(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 4))
        dev.inject_zone_failure(0, ZoneState.OFFLINE)
        assert run_cmd(sim, dev, write(4, 1)).status is Status.ZONE_IS_OFFLINE
        assert run_cmd(sim, dev, read(0, 1)).status is Status.ZONE_IS_OFFLINE
        assert run_cmd(sim, dev, append(0, 1)).status is Status.ZONE_IS_OFFLINE
        reset = run_cmd(sim, dev, mgmt(0, ZoneAction.RESET))
        assert reset.status is Status.INVALID_ZONE_STATE_TRANSITION

    def test_failure_releases_open_and_active_slots(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 1))
        assert dev.zones.open_count == 1
        dev.inject_zone_failure(0, ZoneState.READ_ONLY)
        assert dev.zones.open_count == 0
        assert dev.zones.active_count == 0
        dev.zones.check_invariants()

    def test_offline_zone_loses_write_pointer(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 8))
        dev.inject_zone_failure(0, ZoneState.OFFLINE)
        assert dev.zones.zones[0].occupancy_lbas == 0

    def test_only_failure_states_injectable(self):
        sim, dev = make_device()
        with pytest.raises(ValueError):
            dev.inject_zone_failure(0, ZoneState.FULL)

    def test_io_continues_on_healthy_zones(self):
        sim, dev = make_device()
        dev.inject_zone_failure(0, ZoneState.OFFLINE)
        zone1 = dev.zones.zones[1]
        assert run_cmd(sim, dev, write(zone1.zslba, 1)).ok


class TestConvTrim:
    def make(self):
        sim = Simulator()
        return sim, ConvDevice(sim, conv_profile())

    def trim(self, slba, nlb):
        return Command(Opcode.TRIM, slba=slba, nlb=nlb)

    def test_trim_unmaps_written_pages(self):
        sim, dev = self.make()
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        run_cmd(sim, dev, write(0, 2 * page_lbas))
        assert dev.ftl.mapped_pages() == 2
        assert run_cmd(sim, dev, self.trim(0, 2 * page_lbas)).ok
        assert dev.ftl.mapped_pages() == 0

    def test_trim_of_unmapped_range_succeeds(self):
        sim, dev = self.make()
        assert run_cmd(sim, dev, self.trim(0, 4)).ok

    def test_trim_cost_grows_with_mapped_pages(self):
        sim, dev = self.make()
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        nlb = 16 * page_lbas
        run_cmd(sim, dev, write(0, nlb))
        sim.run()
        mapped_cost = run_cmd(sim, dev, self.trim(0, nlb)).latency_ns
        unmapped_cost = run_cmd(sim, dev, self.trim(0, nlb)).latency_ns
        assert mapped_cost > unmapped_cost

    def test_trim_out_of_range_rejected(self):
        sim, dev = self.make()
        cpl = run_cmd(sim, dev, self.trim(dev.namespace.capacity_lbas, 1))
        assert cpl.status is Status.LBA_OUT_OF_RANGE

    def test_trimmed_blocks_become_gc_free_wins(self):
        """Trimmed pages are garbage: GC reclaims them without copying."""
        sim, dev = self.make()
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        # Enough pages to close one block on every die (round-robin fill).
        pages = dev.profile.geometry.pages_per_block * dev.profile.geometry.total_dies
        nlb = pages * page_lbas
        for slba in range(0, nlb, 64 * page_lbas):
            run_cmd(sim, dev, write(slba, 64 * page_lbas))
        sim.run()
        for slba in range(0, nlb, 64 * page_lbas):
            run_cmd(sim, dev, self.trim(slba, 64 * page_lbas))
        victim = dev.ftl.pick_victim()
        assert victim is not None
        assert victim.valid_count == 0

    def test_zns_device_rejects_trim(self):
        sim, dev = make_device()
        with pytest.raises(ValueError):
            dev.submit(self.trim(0, 1))
