"""Integration tests: fast-config runs of the paper experiments.

These use a scaled-down :class:`ExperimentConfig` so the whole file runs
in tens of seconds; the benchmark harness runs the full-scale versions.
"""

import pytest

from repro.core import ExperimentConfig
from repro.core.experiments.lba_format import run_fig2a, run_fig2b
from repro.core.experiments.state_machine import (
    run_fig5a_reset,
    run_fig5b_finish,
    run_obs9_open_close,
)
from repro.core.observations import (
    check_obs1,
    check_obs2,
    check_obs4,
    check_obs9,
    check_obs10,
)
from repro.sim import ms


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        point_runtime_ns=ms(2.5),
        ramp_ns=ms(0.4),
        zones_per_level=4,
        interference_reset_zones=8,
        interference_runtime_ns=ms(300),
        num_zones=32,
    )


@pytest.fixture(scope="module")
def fig2a(config):
    return run_fig2a(config)


@pytest.fixture(scope="module")
def fig2b(config):
    return run_fig2b(config)


class TestFig2:
    def test_fig2a_covers_all_stack_format_combinations(self, fig2a):
        assert len(fig2a.rows) == 12  # 2 formats x (4 write stacks + 2 append)

    def test_obs1_lba_format_effect(self, fig2a):
        check = check_obs1(fig2a)
        assert check.passed, check.details

    def test_obs2_stack_ordering(self, fig2b):
        check = check_obs2(fig2b)
        assert check.passed, check.details

    def test_obs4_write_beats_append(self, fig2b):
        check = check_obs4(fig2b)
        assert check.passed, check.details

    def test_fig2b_spdk_anchors_match_paper(self, fig2b):
        write = fig2b.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
        append = fig2b.value("latency_us", lba_format="4KiB", stack="spdk", op="append")
        assert write == pytest.approx(11.36, rel=0.03)
        assert append == pytest.approx(14.02, rel=0.03)

    def test_fig2b_mq_deadline_anchor(self, fig2b):
        mqd = fig2b.value(
            "latency_us", lba_format="4KiB", stack="iouring-mq-deadline", op="write"
        )
        assert mqd == pytest.approx(14.47, rel=0.03)


class TestStateMachineExperiments:
    def test_obs9_costs(self, config):
        result = run_obs9_open_close(config)
        check = check_obs9(result)
        assert check.passed, check.details
        open_us = result.value("latency_us", quantity="explicit open")
        assert open_us == pytest.approx(9.56, rel=0.15)

    def test_fig5_occupancy_effects(self, config):
        fig5a = run_fig5a_reset(config)
        fig5b = run_fig5b_finish(config)
        check = check_obs10(fig5a, fig5b)
        assert check.passed, check.details

    def test_fig5a_anchors(self, config):
        fig5a = run_fig5a_reset(config)
        full = fig5a.value("reset_ms", occupancy="100%", finished_first=False)
        half = fig5a.value("reset_ms", occupancy="50%", finished_first=False)
        assert full == pytest.approx(16.19, rel=0.1)
        assert half == pytest.approx(11.60, rel=0.1)

    def test_fig5a_finished_zones_cost_more_than_unfinished(self, config):
        fig5a = run_fig5a_reset(config)
        for occ in ("25%", "50%"):
            plain = fig5a.value("reset_ms", occupancy=occ, finished_first=False)
            finished = fig5a.value("reset_ms", occupancy=occ, finished_first=True)
            assert finished > plain

    def test_fig5b_anchors(self, config):
        fig5b = run_fig5b_finish(config)
        low = fig5b.value("finish_ms", occupancy="<0.1%")
        high = fig5b.value("finish_ms", occupancy="~100%")
        assert low == pytest.approx(907.51, rel=0.15)
        assert high == pytest.approx(3.07, rel=0.15)


class TestRunExperimentsDispatch:
    def test_unknown_id_rejected(self, config):
        from repro.core import run_experiments

        with pytest.raises(KeyError):
            run_experiments(["figZZ"], config)

    def test_selected_run_returns_results(self, config):
        from repro.core import run_experiments

        results = run_experiments(["fig2a"], config)
        assert set(results) == {"fig2a"}
        assert results["fig2a"].rows
