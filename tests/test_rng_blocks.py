"""Jitter block-size independence: ``REPRO_JITTER_BLOCK`` is a pure
performance knob.

``LatencySampler`` pre-draws jitter factors in refillable blocks;
``Generator.normal(size=N)`` is bit-identical to N sequential scalar
draws, so the block size must never change a single simulated result
(the draw-order contract, DESIGN.md §15). These tests pin that down at
three levels: the raw sampler sequence, whole serial experiment
artifacts (with and without chaos fault injection), and parallel
execution — where the knob must reach pool workers through the
environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import execute_experiments
from repro.sim.rng import DEFAULT_JITTER_BLOCK, LatencySampler, StreamFactory

from .test_exec import results_blob, tiny_config

BLOCKS = (1, 16, 4096)


def _fresh_sampler(block=None) -> LatencySampler:
    return LatencySampler(StreamFactory(seed=7).stream("jitter"),
                          sigma=0.05, block=block)


class TestSamplerDrawOrder:
    def test_block_size_never_changes_draws(self):
        # Span several refills of every block size (including many
        # refills at block=1 and a partial final block at 4096).
        nominals = [100, 10_000, 1_000_000] * 3_000
        reference = None
        for block in (1, 16, 256, 4096):
            sampler = _fresh_sampler(block)
            draws = [sampler.jitter(n) for n in nominals]
            if reference is None:
                reference = draws
            else:
                assert draws == reference, f"block={block} diverged"

    def test_batched_normal_matches_scalar_draws(self):
        # The numpy guarantee the whole design rests on.
        batched = np.random.default_rng(42).normal(0.0, 1.0, size=64)
        scalar_rng = np.random.default_rng(42)
        scalars = [scalar_rng.normal(0.0, 1.0) for _ in range(64)]
        assert batched.tolist() == scalars

    def test_env_var_sets_block(self, monkeypatch):
        monkeypatch.setenv("REPRO_JITTER_BLOCK", "32")
        assert _fresh_sampler()._block == 32
        # An explicit constructor argument still wins.
        assert _fresh_sampler(block=8)._block == 8

    def test_default_block(self, monkeypatch):
        monkeypatch.delenv("REPRO_JITTER_BLOCK", raising=False)
        assert _fresh_sampler()._block == DEFAULT_JITTER_BLOCK

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError, match="block"):
            _fresh_sampler(block=0)


def _run_blob(monkeypatch, block=None, jobs=1, faults=None) -> str:
    if block is None:
        monkeypatch.delenv("REPRO_JITTER_BLOCK", raising=False)
    else:
        monkeypatch.setenv("REPRO_JITTER_BLOCK", str(block))
    config = tiny_config() if faults is None else tiny_config(faults=faults)
    results, _report = execute_experiments(["fig2a"], config, jobs=jobs)
    return results_blob(results)


class TestExperimentIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        blobs = {}
        for faults in (None, "chaos"):
            config = (tiny_config() if faults is None
                      else tiny_config(faults=faults))
            results, _ = execute_experiments(["fig2a"], config, jobs=1)
            blobs[faults] = results_blob(results)
        return blobs

    @pytest.mark.parametrize("block", BLOCKS)
    def test_serial_artifacts_identical(self, block, reference, monkeypatch):
        assert _run_blob(monkeypatch, block=block) == reference[None]

    @pytest.mark.parametrize("block", (1, 4096))
    def test_chaos_artifacts_identical(self, block, reference, monkeypatch):
        assert (_run_blob(monkeypatch, block=block, faults="chaos")
                == reference["chaos"])

    def test_parallel_workers_inherit_block(self, reference, monkeypatch):
        # The knob is an environment variable precisely so pool workers
        # pick it up under fork *and* spawn; a module-global would be
        # invisible to spawned workers.
        assert _run_blob(monkeypatch, block=16, jobs=4) == reference[None]
