"""Tests for the observability subsystem: tracer, metrics, profile.

The load-bearing property is the last class: enabling tracing/metrics
must not change simulation results at all (the tracer only observes the
integer-ns clock; it never touches the RNG streams or the event heap).
"""

import io
import json

import numpy as np
import pytest

from repro.core import ExperimentConfig
from repro.core.experiments.lba_format import run_fig2b
from repro.hostif import Command, Opcode, ZoneAction
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Tracer,
)
from repro.obs.profile import LayerBreakdown, _union_ns, run_self_profile
from repro.sim import Simulator, ms
from repro.sim.engine import SimulationError
from repro.workload.stats import LatencyStats, TimeSeries

from .util import append, make_device, read, run_cmd, write


class TestTracer:
    def test_events_sorted_monotonically(self):
        tracer = Tracer()
        tracer.span("nand", "late", 500, 900)
        tracer.span("controller", "early", 100, 200)
        tracer.instant("zone", "t", 100)
        ts = [e.ts for e in tracer.events()]
        assert ts == sorted(ts)
        # Equal timestamps keep insertion order (stable export).
        assert [e.name for e in tracer.events()][:2] == ["early", "t"]

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().span("nand", "bad", 100, 50)

    def test_begin_command_ids_are_unique_and_counted(self):
        tracer = Tracer()
        ids = [tracer.begin_command("write") for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert tracer.commands_traced == 5

    def test_jsonl_roundtrip(self):
        tracer = Tracer()
        tracer.span("command", "write", 10, 30, track="commands", cid=1)
        tracer.counter("qd", 20, 3)
        buf = io.StringIO()
        assert tracer.write_jsonl(buf) == 2
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert lines[0] == {
            "args": {"cid": 1}, "cat": "command", "dur": 20, "name": "write",
            "ph": "X", "track": "commands", "ts": 10,
        }
        assert lines[1]["ph"] == "C" and lines[1]["args"]["value"] == 3

    def test_chrome_trace_schema(self):
        tracer = Tracer()
        tracer.register_process("zns:test")
        tracer.span("nand", "read.page", 1_000, 43_000, track="die3", cid=7)
        tracer.instant("zone", "EMPTY->IMPLICIT_OPEN", 2_000, track="zones")
        payload = tracer.to_chrome_trace()
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metas}
        span = next(e for e in events if e["ph"] == "X")
        # trace_event timestamps are microseconds.
        assert span["ts"] == 1.0 and span["dur"] == 42.0
        assert isinstance(span["pid"], int) and isinstance(span["tid"], int)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.span("nand", "x", 0, 10)
        tracer.instant("zone", "x", 0)
        tracer.counter("x", 0, 1)
        assert tracer.begin_command("write") == 0
        assert tracer.register_process("dev") == 0
        assert len(tracer) == 0
        assert len(NULL_TRACER) == 0


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        c = registry.counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = registry.gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1 and g.max_value == 3

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_merge_snapshot_combines_workers(self):
        import json

        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, ops, depth, lat in ((a, 3, 2.0, 1_500), (b, 4, 5.0, 9_000)):
            registry.counter("ops").inc(ops)
            registry.gauge("depth").set(depth)
            registry.histogram("lat", bounds=[1_000, 8_000]).observe(lat)
        merged = MetricsRegistry()
        # JSON round-trip, as snapshots arrive from workers / the cache
        # (dict keys become strings).
        for source in (a, b):
            merged.merge_snapshot(json.loads(json.dumps(source.snapshot())))
        assert merged.counter("ops").value == 7
        gauge = merged.gauge("depth")
        assert gauge.value == 5.0 and gauge.max_value == 5.0
        hist = merged.histogram("lat", bounds=[1_000, 8_000])
        assert hist.total == 2 and hist.sum == 10_500
        assert hist.counts == [0, 1, 1]

    def test_merge_snapshot_matches_serial_recording(self):
        serial, w1, w2 = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for value in (500, 3_000, 64_000):
            serial.histogram("lat").observe(value)
            serial.counter("n").inc()
        for registry, values in ((w1, (500, 3_000)), (w2, (64_000,))):
            for value in values:
                registry.histogram("lat").observe(value)
                registry.counter("n").inc()
        merged = MetricsRegistry()
        merged.merge_snapshot(w1.snapshot())
        merged.merge_snapshot(w2.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_merge_snapshot_rejects_mismatched_bounds(self):
        target = MetricsRegistry()
        target.histogram("lat", bounds=[100, 200])
        other = MetricsRegistry()
        other.histogram("lat", bounds=[100, 300]).observe(50)
        with pytest.raises(ValueError, match="bucket bounds"):
            target.merge_snapshot(other.snapshot())

    def test_merge_snapshot_rejects_unknown_shape(self):
        with pytest.raises(ValueError, match="unrecognized"):
            MetricsRegistry().merge_snapshot({"weird": {"shape": 1}})

    def test_histogram_bucket_math(self):
        h = Histogram("lat", bounds=(10, 100, 1000))
        for v in (5, 10, 50, 500, 5000):
            h.observe(v)
        # Buckets are <= bound; the 4th bucket is the overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5 and h.sum == 5565
        assert h.mean == pytest.approx(1113.0)

    def test_histogram_percentile_interpolates(self):
        h = Histogram("lat", bounds=(100, 200, 400))
        for _ in range(100):
            h.observe(150)
        # All mass in (100, 200]; p50 interpolates inside that bucket.
        assert 100 < h.percentile(50) <= 200
        assert h.percentile(0) == 100  # lower edge of the first hit bucket
        h.observe(10_000)  # overflow clamps to the last finite bound
        assert h.percentile(100) == 400

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10, 10))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_default_latency_buckets_cover_paper_range(self):
        # 1 us .. > 1 s: spans QD1 4K reads (~87 us) through full-zone
        # resets (milliseconds).
        assert DEFAULT_LATENCY_BUCKETS_NS[0] == 1_000
        assert DEFAULT_LATENCY_BUCKETS_NS[-1] > 1_000_000_000


class TestDeviceTracing:
    def test_every_command_gets_a_span(self):
        tracer = Tracer()
        sim, device = make_device(tracer=tracer)
        nlb = device.namespace.lbas(8192)
        run_cmd(sim, device, append(0, nlb))
        run_cmd(sim, device, read(0, nlb))
        run_cmd(sim, device, write(device.zones.zones[1].zslba, nlb))
        events = tracer.events()
        commands = [e for e in events if e.cat == "command"]
        assert len(commands) == 3
        assert {c.args["opcode"] for c in commands} == {
            "append", "read", "write"}
        assert tracer.commands_traced == 3
        # Layer spans carry the command ids of those commands.
        cids = {c.args["cid"] for c in commands}
        layer_cids = {e.args.get("cid") for e in events
                      if e.cat in ("controller", "nand", "buffer")}
        assert cids <= layer_cids

    def test_zone_transitions_recorded_as_instants(self):
        tracer = Tracer()
        sim, device = make_device(tracer=tracer)
        nlb = device.namespace.lbas(8192)
        run_cmd(sim, device, append(0, nlb))
        run_cmd(sim, device, Command(Opcode.ZONE_MGMT, slba=0,
                                     action=ZoneAction.RESET))
        names = [e.name for e in tracer.events() if e.cat == "zone"]
        assert "EMPTY->IMPLICIT_OPEN" in names
        assert any(name.endswith("->EMPTY") for name in names)

    def test_trace_timestamps_are_monotonic_in_export(self):
        tracer, _ = run_self_profile()
        buf = io.StringIO()
        count = tracer.write_jsonl(buf)
        assert count == len(tracer)
        ts = [json.loads(line)["ts"] for line in buf.getvalue().splitlines()]
        assert ts == sorted(ts)

    def test_device_metrics_published(self):
        registry = MetricsRegistry()
        sim, device = make_device(metrics=registry)
        nlb = device.namespace.lbas(8192)
        run_cmd(sim, device, append(0, nlb))
        run_cmd(sim, device, read(0, nlb))
        snap = registry.snapshot()
        assert snap["device.completed.append"] == 1
        assert snap["device.completed.read"] == 1
        assert snap["nand.pages_read"] >= 1
        assert registry.histogram(
            "device.latency_ns.read", DEFAULT_LATENCY_BUCKETS_NS).total == 1
        assert "device.latency_ns.read" in registry.table()


class TestProfile:
    def test_union_merges_overlaps(self):
        assert _union_ns([(0, 10), (5, 15)]) == 15
        assert _union_ns([(0, 10), (20, 30)]) == 20
        assert _union_ns([(0, 10), (2, 8)]) == 10
        assert _union_ns([]) == 0

    def test_parallel_fanout_counted_once(self):
        # Eight concurrent per-die spans plus the covering fanout span
        # must attribute exactly the fanout's wall time to "nand".
        tracer = Tracer()
        cid = tracer.begin_command("read")
        tracer.span("command", "read", 0, 100, cid=cid, opcode="read")
        tracer.span("nand", "read.fanout", 10, 60, cid=cid)
        for die in range(8):
            tracer.span("nand", "read.page", 10, 55, track=f"die{die}",
                        cid=cid, die=die)
        breakdown = LayerBreakdown.from_tracer(tracer)
        assert breakdown.layer_ns["nand"] == 50
        assert breakdown.layer_share("nand") == pytest.approx(0.5)

    def test_self_profile_accounts_layers(self):
        _, breakdown = run_self_profile()
        assert breakdown.command_count == 32 + 16 + 1
        assert set(breakdown.command_durations) == {
            "append", "read", "zone_mgmt"}
        # Reads must show NAND time; appends buffer time; reset firmware.
        assert breakdown.layer_ns["nand"] > 0
        assert breakdown.layer_ns["buffer"] > 0
        assert breakdown.layer_ns["firmware"] > 0
        # No layer can exceed total end-to-end command time.
        for layer, ns in breakdown.layer_ns.items():
            assert ns <= breakdown.total_command_ns, layer
        table = breakdown.table()
        assert "per-layer attribution" in table and "firmware" in table


class TestSatellites:
    def test_step_on_empty_heap_raises_simulation_error(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="no scheduled events"):
            sim.step()

    def test_latency_record_many_matches_record(self):
        a, b = LatencyStats(), LatencyStats()
        values = [300, 100, 200, 500, 400]
        for v in values:
            a.record(v)
        b.record_many(np.asarray(values))
        assert a.count == b.count == 5
        assert a.percentile_ns(95) == b.percentile_ns(95)
        assert b.min_ns == 100 and b.max_ns == 500

    def test_latency_cache_invalidated_on_write(self):
        stats = LatencyStats()
        stats.record_many([100, 200])
        assert stats.max_ns == 200
        stats.record(900)  # must drop the cached sorted array
        assert stats.max_ns == 900 and stats.count == 3
        other = LatencyStats()
        other.record(50)
        stats.merge(other)
        assert stats.min_ns == 50

    def test_record_many_validates(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.record_many([10, -1])
        stats.record_many([])  # empty batch is a no-op
        assert stats.count == 0

    def test_timeseries_idle_fraction(self):
        ts = TimeSeries(interval_ns=100)
        ts.record(50, 4096)    # bucket 0
        ts.record(350, 4096)   # bucket 3; buckets 1-2 empty
        assert ts.interval_count == 4
        assert ts.zero_intervals == 2
        assert ts.idle_fraction == pytest.approx(0.5)
        empty = TimeSeries(interval_ns=100)
        assert empty.idle_fraction == 0.0 and empty.interval_count == 0

    def test_bandwidth_values_dtype_stable_when_empty(self):
        ts = TimeSeries(interval_ns=100)
        assert ts.bandwidth_values().dtype == np.float64
        ts.record(10, 4096)
        assert ts.bandwidth_values().dtype == np.float64


def _fig2b_config(**extra):
    return ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                            num_zones=16, **extra)


class TestTracingDeterminism:
    def test_traced_run_identical_to_untraced(self):
        plain = run_fig2b(_fig2b_config())
        tracer = Tracer()
        registry = MetricsRegistry()
        traced = run_fig2b(_fig2b_config(tracer=tracer, metrics=registry))
        assert plain.rows == traced.rows
        assert len(tracer) > 0
        assert registry.snapshot()["device.completed.write"] > 0
