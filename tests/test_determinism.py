"""End-to-end determinism: same seed, same inputs → identical outputs.

The simulation uses an integer-nanosecond clock, deterministic event
ordering, and named RNG streams, so entire experiments must reproduce
byte-for-byte. These tests guard that property — it is what makes the
calibration gate and EXPERIMENTS.md numbers exact.
"""

from repro.core import ExperimentConfig
from repro.core.experiments.lba_format import run_fig2a
from repro.core.experiments.state_machine import run_fig5a_reset
from repro.sim import ms
from repro.stacks import SpdkStack
from repro.workload import IoKind, JobRunner, JobSpec

from .util import make_device
from repro.zns.profiles import zn540_small


def fast_config():
    return ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                            zones_per_level=3, num_zones=16)


class TestExperimentDeterminism:
    def test_fig2a_reproduces_exactly(self):
        a = run_fig2a(fast_config())
        b = run_fig2a(fast_config())
        assert a.rows == b.rows

    def test_fig5a_reproduces_exactly(self):
        a = run_fig5a_reset(fast_config())
        b = run_fig5a_reset(fast_config())
        assert a.rows == b.rows

    def test_different_seeds_differ_but_stay_close(self):
        a = run_fig2a(fast_config())
        b = run_fig2a(ExperimentConfig(seed=99, point_runtime_ns=ms(2),
                                       ramp_ns=ms(0.4), num_zones=16))
        lat_a = a.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
        lat_b = b.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
        assert lat_a != lat_b  # different jitter draws
        assert abs(lat_a - lat_b) / lat_a < 0.02  # same device


class TestWorkloadDeterminism:
    def run_job(self, seed=5):
        # Jittered profile: determinism must hold *with* randomness on.
        profile = zn540_small()
        sim, dev = make_device(profile)
        job = JobSpec(op=IoKind.APPEND, block_size=4096, runtime_ns=ms(3),
                      iodepth=4, zones=[0, 1], seed=seed)
        result = JobRunner(dev, SpdkStack(dev), job).run()
        return result.ops, result.latency.mean_ns, sim.now

    def test_identical_runs(self):
        assert self.run_job() == self.run_job()

    def test_seed_changes_trace(self):
        assert self.run_job(seed=5) != self.run_job(seed=6)
