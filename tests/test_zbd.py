"""Tests for the libzbd-style ZonedBlockDevice facade."""

import pytest

from repro.hostif import StatusError
from repro.stacks import SpdkStack
from repro.zns import ZoneState
from repro.zns.zbd import ZonedBlockDevice

from .util import make_device

KIB = 1024


@pytest.fixture()
def zbd():
    sim, dev = make_device()
    return ZonedBlockDevice(dev, SpdkStack(dev))


class TestGeometry:
    def test_reports_profile_geometry(self, zbd):
        assert zbd.nr_zones == 32
        assert zbd.zone_size == 8 * 1024 * KIB
        assert zbd.zone_capacity == 6 * 1024 * KIB
        assert zbd.max_open_zones == 14


class TestIo:
    def test_pwrite_then_pread(self, zbd):
        cpl = zbd.pwrite(0, 8 * KIB)
        assert cpl.ok
        assert zbd.pread(0, 8 * KIB).ok

    def test_pwrite_at_wrong_offset_raises(self, zbd):
        with pytest.raises(StatusError, match="zone_invalid_write"):
            zbd.pwrite(64 * KIB, 4 * KIB)

    def test_append_returns_byte_offset(self, zbd):
        offset1, _ = zbd.append(1, 4 * KIB)
        offset2, _ = zbd.append(1, 4 * KIB)
        assert offset1 == zbd.zone_size  # zone 1 starts one zone-size in
        assert offset2 == offset1 + 4 * KIB

    def test_alignment_enforced(self, zbd):
        with pytest.raises(ValueError):
            zbd.pwrite(1, 4 * KIB)
        with pytest.raises(ValueError):
            zbd.pread(0, 1000)
        with pytest.raises(ValueError):
            zbd.append(0, 0)


class TestManagement:
    def test_open_close_lifecycle(self, zbd):
        zbd.open_zone(3)
        assert zbd.report_zones(3, 1)[0].state is ZoneState.EXPLICIT_OPEN
        zbd.close_zone(3)
        assert zbd.report_zones(3, 1)[0].state is ZoneState.EMPTY  # untouched wp

    def test_finish_and_reset(self, zbd):
        zbd.pwrite(0, 16 * KIB)
        zbd.finish_zone(0)
        info = zbd.report_zones(0, 1)[0]
        assert info.state is ZoneState.FULL
        assert info.wp == info.start + info.capacity
        zbd.reset_zone(0)
        assert zbd.report_zones(0, 1)[0].occupancy == 0

    def test_finish_empty_zone_pads_to_full(self, zbd):
        # Regression: finishing an EMPTY zone used to raise; the spec's
        # ZSE→ZSF arc pads the whole writable capacity instead.
        zbd.finish_zone(5)
        info = zbd.report_zones(5, 1)[0]
        assert info.state is ZoneState.FULL
        assert info.wp == info.start + info.capacity

    def test_finish_offline_zone_raises(self, zbd):
        zbd.device.inject_zone_failure(5, ZoneState.OFFLINE)
        with pytest.raises(StatusError, match="invalid_zone_state_transition"):
            zbd.finish_zone(5)

    def test_reset_all_counts_nonempty_zones(self, zbd):
        zbd.pwrite(0, 4 * KIB)
        zbd.append(1, 4 * KIB)
        assert zbd.reset_all() == 2
        assert all(z.state is ZoneState.EMPTY for z in zbd.device.zones.zones)

    def test_zone_index_bounds(self, zbd):
        with pytest.raises(ValueError):
            zbd.reset_zone(999)


class TestReport:
    def test_report_slice(self, zbd):
        report = zbd.report_zones(start=2, count=3)
        assert [z.index for z in report] == [2, 3, 4]

    def test_occupancy_in_bytes(self, zbd):
        zbd.pwrite(0, 12 * KIB)
        assert zbd.report_zones(0, 1)[0].occupancy == 12 * KIB

    def test_works_without_a_stack(self):
        sim, dev = make_device()
        raw = ZonedBlockDevice(dev)  # direct device access
        assert raw.pwrite(0, 4 * KIB).ok
