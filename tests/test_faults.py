"""The deterministic fault-injection subsystem (DESIGN.md §12).

Covers the four fault layers end to end:

* plan resolution (presets, JSON profiles, validation),
* media faults at the flash backend — read-retry ladders with exact
  injected latency, uncorrectable reads, program failures driving zone
  retirement to READ_ONLY/OFFLINE,
* the scheduled power cut — buffer-tail loss, write-pointer rollback,
  recovery accounting, and bit-reproducibility,
* host resilience — command timeouts and bounded retry of retryable
  statuses,

plus the two headline guarantees: a *disabled* plan is byte-identical
to no plan at all, and a faulted sweep is identical at any ``--jobs``.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FAULT_PRESETS, FaultPlan, FaultPlanError, resolve
from repro.hostif import Command, Completion, Opcode, Status
from repro.sim.engine import ms, us
from repro.stacks import SpdkStack
from repro.workload import IoKind, JobRunner, JobSpec
from repro.zns import ZoneState

from .util import make_device, read, run_cmd, write

KIB = 1024


def plan(**overrides) -> FaultPlan:
    return FaultPlan(name="test", **overrides)


class TestPlanResolution:
    def test_none_and_disabled_resolve_to_none(self):
        assert resolve(None) is None
        assert resolve("") is None
        assert resolve("none") is None  # the preset is inert

    def test_every_preset_resolves(self):
        for name in FAULT_PRESETS:
            if name == "none":
                continue
            resolved = resolve(name)
            assert resolved is not None and resolved.enabled

    def test_unknown_preset_lists_known_names(self):
        with pytest.raises(FaultPlanError, match="chaos"):
            resolve("definitely-not-a-preset")

    def test_json_profile_round_trip(self, tmp_path):
        path = tmp_path / "my-faults.json"
        path.write_text(json.dumps({"read_disturb_prob": 0.5}))
        loaded = resolve(str(path))
        assert loaded.read_disturb_prob == 0.5
        assert loaded.name == "my-faults"  # defaults to the file stem

    def test_json_profile_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"read_disturb_probability": 1.0}))
        with pytest.raises(FaultPlanError, match="unknown fields"):
            resolve(str(path))

    def test_invalid_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(read_disturb_prob=1.5)

    def test_plans_are_json_serializable(self):
        for preset in FAULT_PRESETS.values():
            assert json.loads(json.dumps(preset.to_dict()))["name"] == preset.name


class TestMediaReadFaults:
    def _read_latency(self, faults):
        sim, dev = make_device(faults=faults)
        nlb = dev.profile.geometry.page_size // 4096
        assert run_cmd(sim, dev, write(0, nlb)).ok
        sim.run()  # drain the flush so the read is not queued behind it
        return sim, dev, run_cmd(sim, dev, read(0, nlb))

    def test_retry_ladder_adds_exact_latency(self):
        # prob=1 + retry_max=1 makes the ladder depth deterministic (one
        # retry); the quiet profile has jitter disabled, so the injected
        # latency is exactly the configured step.
        _, _, clean = self._read_latency(None)
        _, dev, faulty = self._read_latency(plan(
            read_disturb_prob=1.0, read_retry_max=1,
            read_retry_step_ns=us(50)))
        assert faulty.ok
        assert faulty.latency_ns - clean.latency_ns == us(50)
        assert dev.faults.read_disturbs.value == 1
        assert dev.faults.read_retries.value == 1

    def test_uncorrectable_read_fails_after_full_ladder(self):
        _, _, clean = self._read_latency(None)
        sim, dev, faulty = self._read_latency(plan(
            read_disturb_prob=1.0, read_uncorrectable_frac=1.0,
            read_retry_max=2, read_retry_step_ns=us(40)))
        assert faulty.status is Status.MEDIA_UNRECOVERED_READ
        assert not faulty.status.retryable  # DNR: retrying cannot help
        assert faulty.latency_ns - clean.latency_ns == 2 * us(40)
        assert dev.faults.read_uncorrectable.value == 1
        # The failed read shows up in the always-on device error counters.
        assert dev.counters.errors[Status.MEDIA_UNRECOVERED_READ] == 1

    def test_read_faults_leave_writes_untouched(self):
        sim_a, dev_a = make_device(faults=None)
        sim_b, dev_b = make_device(faults=plan(read_disturb_prob=1.0))
        nlb = dev_a.profile.geometry.page_size // 4096
        a = run_cmd(sim_a, dev_a, write(0, nlb))
        b = run_cmd(sim_b, dev_b, write(0, nlb))
        assert a.latency_ns == b.latency_ns


class TestZoneRetirement:
    def test_program_failures_retire_zone_to_offline(self):
        # Every page program fails exactly once (prob=1, retry cap 1):
        # four flushed pages accumulate four failures, crossing the
        # READ_ONLY threshold at 2 and the OFFLINE threshold at 4.
        sim, dev = make_device(faults=plan(
            program_fail_prob=1.0, program_retry_max=1,
            retire_read_only_after=2, retire_offline_after=4))
        page = dev.profile.geometry.page_size
        assert run_cmd(sim, dev, write(0, 4 * page // 4096)).ok
        sim.run()  # let the async flushes (and their failures) land
        zone = dev.zones.zones[0]
        assert zone.state is ZoneState.OFFLINE
        assert dev.faults.program_failures.value == 4
        assert dev.faults.zones_read_only.value == 1
        assert dev.faults.zones_offlined.value == 1
        dev.zones.check_invariants()
        # The retired zone now rejects host I/O with the NVMe status.
        cpl = run_cmd(sim, dev, write(4 * page // 4096, page // 4096))
        assert cpl.status is Status.ZONE_IS_OFFLINE

    def test_below_threshold_zone_stays_writable(self):
        sim, dev = make_device(faults=plan(
            program_fail_prob=1.0, program_retry_max=1,
            retire_read_only_after=100))
        page = dev.profile.geometry.page_size
        assert run_cmd(sim, dev, write(0, 4 * page // 4096)).ok
        sim.run()
        assert dev.faults.program_failures.value == 4
        assert dev.zones.zones[0].state not in (
            ZoneState.READ_ONLY, ZoneState.OFFLINE)


class TestPowerCut:
    # The 2 MiB write is admitted into the buffer at ~t=401us and NAND
    # programs take 450us, so a cut at t=500us catches a full buffer
    # with only the earliest pages persisted.
    CUT = plan(power_cut_at_ns=us(500), plp_budget_bytes=0,
               recovery_base_ns=ms(1))

    def _run_cut(self):
        sim, dev = make_device(faults=self.CUT)
        nlb = (2 * 1024 * KIB) // 4096  # 2 MiB, far more than flushes by t=500us
        assert run_cmd(sim, dev, write(0, nlb)).ok
        sim.run()
        return sim, dev

    def test_cut_drops_tail_and_rolls_back_wp(self):
        sim, dev = self._run_cut()
        lost = dev.faults.bytes_lost.value
        assert dev.faults.power_cuts.value == 1
        assert lost > 0
        assert dev.faults.recovery_ns.value >= ms(1)
        # Lost bytes came out of the buffer: everything else flushed.
        assert dev.buffer.level == 0
        # The write pointer rolled back over the lost LBAs.
        zone = dev.zones.zones[0]
        written_lbas = (2 * 1024 * KIB) // 4096
        assert zone.wp - zone.zslba == written_lbas - lost // 4096
        dev.zones.check_invariants()

    def test_cut_is_bit_reproducible(self):
        sim_a, dev_a = self._run_cut()
        sim_b, dev_b = self._run_cut()
        assert dev_a.faults.bytes_lost.value == dev_b.faults.bytes_lost.value
        assert dev_a.zones.zones[0].wp == dev_b.zones.zones[0].wp
        assert sim_a.now == sim_b.now

    def test_plp_budget_bounds_the_loss(self):
        generous = plan(power_cut_at_ns=us(500),
                        plp_budget_bytes=64 * 1024 * KIB)
        sim, dev = make_device(faults=generous)
        assert run_cmd(sim, dev, write(0, (2 * 1024 * KIB) // 4096)).ok
        sim.run()
        assert dev.faults.power_cuts.value == 1
        assert dev.faults.bytes_lost.value == 0  # budget covers the tail


class _ScriptedStack:
    """Stack stub whose completion statuses are scripted per submission."""

    def __init__(self, sim, statuses):
        self.sim = sim
        self.statuses = list(statuses)
        self.submissions = 0

    def submit(self, command):
        command.submitted_at = self.sim.now
        status = (self.statuses.pop(0) if self.statuses
                  else Status.SUCCESS)
        self.submissions += 1

        def _complete():
            yield self.sim.timeout(us(10))
            return Completion(command=command, status=status,
                              completed_at=self.sim.now)

        return self.sim.process(_complete())


class TestHostResilience:
    def _job(self, **overrides):
        spec = dict(op=IoKind.WRITE, block_size=64 * KIB, runtime_ns=ms(1),
                    zones=[0])
        spec.update(overrides)
        return JobSpec(**spec)

    def test_command_timeout_counts_aborts(self):
        sim, dev = make_device(faults=plan(command_timeout_ns=us(1)))
        result = JobRunner(dev, SpdkStack(dev), self._job()).run()
        assert result.timeouts > 0
        assert result.errors.get(Status.COMMAND_ABORTED) == result.timeouts
        assert result.ops == 0  # every command timed out
        assert dev.metrics.counter("host.timeouts").value == result.timeouts

    def test_retryable_status_retried_to_success(self):
        # command_timeout arms the host-resilience path without ever
        # firing (50 ms >> the run); a retry-only plan is otherwise inert.
        sim, dev = make_device(faults=plan(max_retries=3,
                                           retry_backoff_ns=us(5),
                                           command_timeout_ns=ms(50)))
        stack = _ScriptedStack(sim, [Status.TOO_MANY_ACTIVE_ZONES] * 2)
        result = JobRunner(dev, stack, self._job()).run()
        assert result.retries == 2  # two flaky completions, then clean
        assert not result.errors
        assert result.ops > 0
        assert dev.metrics.counter("host.retries").value == 2

    def test_retry_budget_bounds_attempts(self):
        sim, dev = make_device(faults=plan(max_retries=2,
                                           retry_backoff_ns=us(5),
                                           command_timeout_ns=ms(50)))
        stack = _ScriptedStack(sim, [Status.TOO_MANY_ACTIVE_ZONES] * 100)
        result = JobRunner(dev, stack, self._job(runtime_ns=us(200))).run()
        # Each command burns its full budget then records the error.
        assert result.errors.get(Status.TOO_MANY_ACTIVE_ZONES, 0) >= 1
        assert result.retries >= 2

    def test_dnr_status_not_retried(self):
        sim, dev = make_device(faults=plan(max_retries=3,
                                           command_timeout_ns=ms(50)))
        stack = _ScriptedStack(sim, [Status.MEDIA_UNRECOVERED_READ] * 100)
        result = JobRunner(dev, stack, self._job(runtime_ns=us(100))).run()
        assert result.retries == 0
        assert result.errors.get(Status.MEDIA_UNRECOVERED_READ, 0) >= 1


class TestDisabledPlanByteIdentity:
    def _run(self, faults):
        sim, dev = make_device(faults=faults)
        job = JobSpec(op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=ms(4),
                      zones=[0, 1], iodepth=4)
        result = JobRunner(dev, SpdkStack(dev), job).run()
        return sim, result

    def test_inert_plan_is_byte_identical_to_no_plan(self):
        sim_none, res_none = self._run(None)
        sim_null, res_null = self._run(FaultPlan())  # every knob inert
        assert sim_none.now == sim_null.now  # same event timeline
        assert res_none.ops == res_null.ops
        assert (res_none.latency.asarray() == res_null.latency.asarray()).all()

    def test_device_skips_injector_for_inert_plan(self):
        _, dev = make_device(faults=FaultPlan())
        assert dev.faults is None
        assert dev.backend.faults is None


class TestParallelDeterminism:
    def test_faulted_sweep_identical_at_any_jobs(self):
        # The whole point of seed-driven injection: fault outcomes ride
        # the per-point-salted device streams, so worker count cannot
        # change them. Full-output equality, serial vs 2 workers.
        from repro.core.experiments.common import ExperimentConfig
        from repro.core.experiments.points import serialize_result
        from repro.exec import execute_experiments

        config = ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                                  num_zones=16, zones_per_level=3,
                                  faults="wearout")
        serial, _ = execute_experiments(["fig2a"], config, jobs=1)
        parallel, _ = execute_experiments(["fig2a"], config, jobs=2)
        assert (json.dumps(serialize_result(serial["fig2a"]), sort_keys=True)
                == json.dumps(serialize_result(parallel["fig2a"]),
                              sort_keys=True))
