"""Unit tests for the simulated ZNS device (semantics + latency anchors)."""

import pytest

from repro.hostif import LBA_512, Command, Opcode, Status, ZoneAction
from repro.sim import ms, us
from repro.zns import ZoneState

from .util import append, make_device, mgmt, quiet_profile, read, run_cmd, write


class TestWriteSemantics:
    def test_write_advances_write_pointer(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, write(0, 1))
        assert cpl.ok
        assert dev.zones.zones[0].wp == 1
        assert dev.counters.completed[Opcode.WRITE] == 1

    def test_sequential_writes_fill_zone_to_full(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        step = 256
        for slba in range(0, zone.cap_lbas, step):
            assert run_cmd(sim, dev, write(slba, step)).ok
        assert zone.state is ZoneState.FULL

    def test_nonsequential_write_rejected(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, write(5, 1))
        assert cpl.status is Status.ZONE_INVALID_WRITE

    def test_out_of_range_write_rejected(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, write(dev.namespace.capacity_lbas, 1))
        assert cpl.status is Status.LBA_OUT_OF_RANGE

    def test_second_inflight_write_to_same_zone_rejected(self):
        sim, dev = make_device()
        first = dev.submit(write(0, 1))
        second = dev.submit(write(1, 1))
        sim.run()
        assert first.value.ok
        assert second.value.status is Status.ZONE_INVALID_WRITE

    def test_concurrent_writes_to_distinct_zones_allowed(self):
        sim, dev = make_device()
        zone_size = dev.zones.size_lbas
        events = [dev.submit(write(z * zone_size, 1)) for z in range(4)]
        sim.run()
        assert all(e.value.ok for e in events)

    def test_write_into_buffer_eventually_programs_flash(self):
        sim, dev = make_device()
        pages = 4
        nlb = pages * dev.profile.geometry.page_size // dev.namespace.block_size
        run_cmd(sim, dev, write(0, nlb))
        sim.run()  # let the flusher drain
        assert dev.backend.counters.pages_programmed == pages
        assert dev.buffer.level == 0


class TestAppendSemantics:
    def test_append_returns_assigned_lba(self):
        sim, dev = make_device()
        zone = dev.zones.zones[2]
        c1 = run_cmd(sim, dev, append(zone.zslba, 2))
        c2 = run_cmd(sim, dev, append(zone.zslba, 2))
        assert c1.assigned_lba == zone.zslba
        assert c2.assigned_lba == zone.zslba + 2

    def test_concurrent_appends_to_one_zone_all_succeed(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        events = [dev.submit(append(zone.zslba, 1)) for _ in range(8)]
        sim.run()
        lbas = sorted(e.value.assigned_lba for e in events)
        assert all(e.value.ok for e in events)
        assert lbas == list(range(zone.zslba, zone.zslba + 8))

    def test_append_to_non_zslba_rejected(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, append(1, 1))
        assert cpl.status is Status.INVALID_FIELD

    def test_append_beyond_capacity_rejected(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        run_cmd(sim, dev, append(zone.zslba, zone.cap_lbas))
        cpl = run_cmd(sim, dev, append(zone.zslba, 1))
        assert cpl.status is Status.ZONE_IS_FULL


class TestReadSemantics:
    def test_read_written_data(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 8))
        cpl = run_cmd(sim, dev, read(0, 8))
        assert cpl.ok
        assert dev.counters.bytes_read == 8 * dev.namespace.block_size

    def test_read_cannot_cross_zone_end(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        cpl = run_cmd(sim, dev, read(zone.end - 1, 2))
        assert cpl.status is Status.ZONE_BOUNDARY_ERROR

    def test_read_out_of_range(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, read(dev.namespace.capacity_lbas - 1, 2))
        assert cpl.status is Status.LBA_OUT_OF_RANGE


class TestLatencyAnchors:
    """Device-level QD1 latencies must hit the calibrated components.

    Paper totals include the host stack overhead, added by the stack
    layer; the device-side constants below are the profile's decomposed
    targets (DESIGN.md §5).
    """

    def test_write_4k_qd1_latency(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 1))  # absorb implicit-open penalty
        cpl = run_cmd(sim, dev, write(1, 1))
        assert cpl.latency_ns == 5_380 + 610 + 4_800  # service + DMA + admit

    def test_first_write_pays_implicit_open_penalty(self):
        sim, dev = make_device()
        first = run_cmd(sim, dev, write(0, 1))
        second = run_cmd(sim, dev, write(1, 1))
        assert first.latency_ns - second.latency_ns == 2_020

    def test_append_4k_qd1_latency(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        run_cmd(sim, dev, append(zone.zslba, 1))
        cpl = run_cmd(sim, dev, append(zone.zslba, 1))
        assert cpl.latency_ns == 7_580 + 610 + 4_800 + 2_090

    def test_append_8k_is_faster_than_append_4k(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        run_cmd(sim, dev, append(zone.zslba, 1))
        lat4 = run_cmd(sim, dev, append(zone.zslba, 1)).latency_ns
        lat8 = run_cmd(sim, dev, append(zone.zslba, 2)).latency_ns
        assert lat8 < lat4

    def test_write_latency_beats_append_latency(self):
        """Observation #4 at the device level."""
        sim, dev = make_device()
        zone0, zone1 = dev.zones.zones[0], dev.zones.zones[1]
        run_cmd(sim, dev, write(zone0.zslba, 1))
        run_cmd(sim, dev, append(zone1.zslba, 1))
        wlat = run_cmd(sim, dev, write(zone0.zslba + 1, 1)).latency_ns
        alat = run_cmd(sim, dev, append(zone1.zslba, 1)).latency_ns
        assert wlat < alat
        assert (alat - wlat) / alat > 0.15  # paper: up to 23% difference

    def test_512_format_slower_than_4k_format(self):
        """Observation #1 at the device level."""
        sim4, dev4 = make_device()
        sim5, dev5 = make_device(lba_format=LBA_512)
        run_cmd(sim4, dev4, write(0, 1))
        run_cmd(sim5, dev5, write(0, 8))
        lat4 = run_cmd(sim4, dev4, write(1, 1)).latency_ns  # 4 KiB = 1 LBA
        lat5 = run_cmd(sim5, dev5, write(8, 8)).latency_ns  # 4 KiB = 8 LBAs
        assert lat5 > 1.3 * lat4

    def test_read_4k_qd1_latency_near_nand_read(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 1))
        cpl = run_cmd(sim, dev, read(0, 1))
        assert us(68) < cpl.latency_ns < us(78)


class TestZoneManagement:
    def test_explicit_open_latency_and_state(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.OPEN))
        assert cpl.ok
        assert zone.state is ZoneState.EXPLICIT_OPEN
        assert cpl.latency_ns == us(9.56)

    def test_close_latency(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        run_cmd(sim, dev, write(zone.zslba, 1))
        cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.CLOSE))
        assert cpl.ok
        assert cpl.latency_ns == us(11.01)
        assert zone.state is ZoneState.CLOSED

    def test_mgmt_on_non_zone_start_rejected(self):
        sim, dev = make_device()
        cpl = run_cmd(sim, dev, mgmt(1, ZoneAction.OPEN))
        assert cpl.status is Status.INVALID_FIELD

    def test_mgmt_on_out_of_range_slba_rejected(self):
        # Regression: an out-of-range ZSLBA used to report INVALID_FIELD
        # like a misaligned one; it is an addressing error.
        sim, dev = make_device()
        beyond = dev.namespace.capacity_lbas
        cpl = run_cmd(sim, dev, mgmt(beyond, ZoneAction.RESET))
        assert cpl.status is Status.LBA_OUT_OF_RANGE

    def test_reset_empty_zone_cheapest(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.RESET))
        assert cpl.ok
        assert cpl.latency_ns == pytest.approx(ms(7.0), rel=0.01)

    def test_reset_latency_grows_with_occupancy(self):
        """Observation #10: reset cost is occupancy-dependent."""
        sim, dev = make_device()
        latencies = []
        for zone_index, fraction in enumerate([0.0, 0.25, 0.5, 1.0]):
            zone = dev.zones.zones[zone_index]
            dev.force_fill(zone_index, round(zone.cap_lbas * fraction))
            cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.RESET))
            latencies.append(cpl.latency_ns)
        assert latencies == sorted(latencies)
        assert latencies[-1] == pytest.approx(ms(16.19), rel=0.01)
        assert latencies[2] == pytest.approx(ms(11.60), rel=0.01)

    def test_reset_of_finished_partial_zone_costs_more(self):
        """§III-E: a finished half-full zone resets ~3 ms slower."""
        sim, dev = make_device()
        z0, z1 = dev.zones.zones[0], dev.zones.zones[1]
        half = z0.cap_lbas // 2
        dev.force_fill(0, half)
        dev.force_fill(1, half)
        run_cmd(sim, dev, mgmt(z1.zslba, ZoneAction.FINISH))
        plain = run_cmd(sim, dev, mgmt(z0.zslba, ZoneAction.RESET)).latency_ns
        finished = run_cmd(sim, dev, mgmt(z1.zslba, ZoneAction.RESET)).latency_ns
        assert finished - plain == pytest.approx(ms(3.08), rel=0.01)

    def test_finish_latency_decreases_with_occupancy(self):
        """Observation #10: finish cost shrinks as occupancy grows."""
        sim, dev = make_device()
        latencies = []
        for zone_index, fraction in enumerate([0.01, 0.25, 0.5, 0.99]):
            zone = dev.zones.zones[zone_index]
            dev.force_fill(zone_index, max(1, round(zone.cap_lbas * fraction)))
            cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.FINISH))
            assert cpl.ok
            latencies.append(cpl.latency_ns)
        assert latencies == sorted(latencies, reverse=True)

    def test_finish_empty_zone_pads_whole_capacity(self):
        # Regression: used to be rejected; the spec permits ZSE→ZSF, so
        # the firmware pads the entire writable capacity (the most
        # expensive finish there is — dearer than any occupied zone).
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        empty_cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.FINISH))
        assert empty_cpl.ok
        assert zone.state is ZoneState.FULL
        assert zone.finished_pad_lbas == zone.cap_lbas
        dev.zones.check_invariants()
        other = dev.zones.zones[1]
        dev.force_fill(other.index, other.cap_lbas // 2)
        half_cpl = run_cmd(sim, dev, mgmt(other.zslba, ZoneAction.FINISH))
        assert empty_cpl.latency_ns > half_cpl.latency_ns

    def test_finish_full_zone_is_cheap_idempotent_success(self):
        # Regression: used to be rejected; finish-on-FULL succeeds and
        # pays only the management handshake, not the padding work.
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        dev.force_fill(0, zone.cap_lbas)
        cpl = run_cmd(sim, dev, mgmt(zone.zslba, ZoneAction.FINISH))
        assert cpl.ok
        assert zone.state is ZoneState.FULL
        assert zone.finished_pad_lbas == 0
        assert cpl.latency_ns < us(100)  # no pad: handshake only
        dev.zones.check_invariants()

    def test_write_during_finish_rejected(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        run_cmd(sim, dev, write(zone.zslba, 1))
        finish_ev = dev.submit(mgmt(zone.zslba, ZoneAction.FINISH))
        write_ev = dev.submit(write(zone.zslba + 1, 1))
        sim.run()
        assert finish_ev.value.ok
        assert write_ev.value.status is Status.INVALID_ZONE_STATE_TRANSITION


class TestForceFillEquivalence:
    def test_force_fill_matches_real_writes(self):
        sim_a, dev_a = make_device()
        sim_b, dev_b = make_device()
        zone_a, zone_b = dev_a.zones.zones[0], dev_b.zones.zones[0]
        nlb = 64
        # Real path: write then close.
        run_cmd(sim_a, dev_a, write(zone_a.zslba, nlb))
        run_cmd(sim_a, dev_a, mgmt(zone_a.zslba, ZoneAction.CLOSE))
        # Fixture path.
        assert dev_b.force_fill(0, nlb) is Status.SUCCESS
        assert zone_a.state == zone_b.state == ZoneState.CLOSED
        assert zone_a.wp == zone_b.wp
        assert dev_a.zones.active_count == dev_b.zones.active_count
        # And the reset cost derived from the state is identical.
        lat_a = run_cmd(sim_a, dev_a, mgmt(zone_a.zslba, ZoneAction.RESET)).latency_ns
        lat_b = run_cmd(sim_b, dev_b, mgmt(zone_b.zslba, ZoneAction.RESET)).latency_ns
        assert lat_a == lat_b

    def test_force_fill_to_capacity_goes_full(self):
        _, dev = make_device()
        zone = dev.zones.zones[0]
        dev.force_fill(0, zone.cap_lbas)
        assert zone.state is ZoneState.FULL

    def test_force_fill_on_nonempty_zone_rejected(self):
        sim, dev = make_device()
        run_cmd(sim, dev, write(0, 1))
        assert dev.force_fill(0, 5) is Status.INVALID_ZONE_STATE_TRANSITION


class TestInterferenceMechanics:
    def test_reads_queue_behind_buffered_writes(self):
        """§III-F mechanism: flush backlogs inflate read latency."""
        profile = quiet_profile()
        sim, dev = make_device(profile)
        block = dev.namespace.block_size
        page_lbas = dev.profile.geometry.page_size // block
        # Idle read latency first.
        run_cmd(sim, dev, write(0, page_lbas))
        sim.run()
        idle = run_cmd(sim, dev, read(0, 1)).latency_ns
        # Now stuff many pages into the buffer and read before they drain.
        zone = dev.zones.zones[0]
        next_lba = zone.wp
        for _ in range(320):
            ev = dev.submit(write(next_lba, page_lbas))
            sim.run(until=ev)
            next_lba += page_lbas
        busy = run_cmd(sim, dev, read(0, 1)).latency_ns
        assert busy > 3 * idle

    def test_reset_does_not_delay_concurrent_io(self):
        """Observation #12: resets have no effect on I/O latency."""
        profile = quiet_profile()
        sim, dev = make_device(profile)
        other = dev.zones.zones[5]
        dev.force_fill(4, dev.zones.zones[4].cap_lbas)
        # Baseline write latency without a reset running.
        run_cmd(sim, dev, write(other.zslba, 1))
        baseline = run_cmd(sim, dev, write(other.zslba + 1, 1)).latency_ns
        # Kick off a full-zone reset, then immediately write elsewhere.
        reset_ev = dev.submit(mgmt(dev.zones.zones[4].zslba, ZoneAction.RESET))
        during = run_cmd(sim, dev, write(other.zslba + 2, 1)).latency_ns
        sim.run(until=reset_ev)
        assert during == baseline

    def test_concurrent_io_inflates_reset_latency(self):
        """Observation #13: I/O mapping updates stall reset work."""
        profile = quiet_profile()
        sim, dev = make_device(profile)
        dev.force_fill(0, dev.zones.zones[0].cap_lbas)
        dev.force_fill(1, dev.zones.zones[1].cap_lbas)
        isolated = run_cmd(sim, dev, mgmt(0, ZoneAction.RESET)).latency_ns

        stop = []

        def writer():
            zone = dev.zones.zones[5]
            lba = zone.zslba
            while not stop:
                cpl = yield dev.submit(write(lba, 1))
                assert cpl.ok
                lba += 1

        sim.process(writer())
        zslba1 = dev.zones.zones[1].zslba
        loaded = run_cmd(sim, dev, mgmt(zslba1, ZoneAction.RESET)).latency_ns
        stop.append(True)
        assert loaded > 1.3 * isolated


class TestStateSnapshotRestore:
    """The snapshot/restore fixture the occupancy sweeps rewind with."""

    def _snapshot_view(self, dev):
        return {
            "zones": dev.zones.state_snapshot(),
            "buffer": dev.buffer.level,
        }

    def test_restore_rewinds_zone_and_buffer_state(self):
        sim, dev = make_device(quiet_profile())
        pristine = dev.state_snapshot()
        before = self._snapshot_view(dev)
        # Dirty several zones in different ways.
        run_cmd(sim, dev, write(0, 3))
        run_cmd(sim, dev, append(dev.zones.zones[1].zslba, 2))
        dev.force_fill(2, 64)
        run_cmd(sim, dev, mgmt(dev.zones.zones[2].zslba, ZoneAction.FINISH))
        sim.run()
        dev.restore_state(pristine)
        assert self._snapshot_view(dev) == before
        assert dev.zones.open_count == 0
        assert dev.zones.active_count == 0
        for zone in dev.zones.zones[:3]:
            assert zone.state is ZoneState.EMPTY
            assert zone.wp == zone.zslba

    def test_restore_reinstates_subpage_residual(self):
        sim, dev = make_device(quiet_profile())
        # Leave a stable sub-page residual in the buffer, then snapshot.
        run_cmd(sim, dev, write(0, 1))
        sim.run()
        assert dev.buffer.level > 0
        dirty = dev.state_snapshot()
        pristine_level = dev.buffer.level
        # More writes change the residual; restore brings it back.
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        run_cmd(sim, dev, write(dev.zones.zones[0].wp, page_lbas))
        sim.run()
        dev.restore_state(dirty)
        assert dev.buffer.level == pristine_level

    def test_snapshot_rejects_pending_flush(self):
        import pytest

        sim, dev = make_device(quiet_profile())
        page_lbas = dev.profile.geometry.page_size // dev.namespace.block_size
        # Complete a full-page write but do NOT drain the flusher.
        run_cmd(sim, dev, write(0, page_lbas))
        with pytest.raises(RuntimeError, match="page flush"):
            dev.state_snapshot()

    def test_snapshot_rejects_inflight_command(self):
        import pytest

        sim, dev = make_device(quiet_profile())
        dev.submit(write(0, 1))
        # Run partway into the (~11 µs) write so it is genuinely in flight.
        sim.run(until=sim.timeout(us(1)))
        with pytest.raises(RuntimeError, match="in flight"):
            dev.state_snapshot()

    def test_restored_device_replays_identical_latencies(self):
        """With jitter off, a rewound device repeats the same physics —
        the property the per-rep rewind in fig5a/fig5b relies on."""
        sim, dev = make_device(quiet_profile())
        pristine = dev.state_snapshot()

        def one_rep():
            dev.force_fill(0, 256)
            fin = run_cmd(sim, dev, mgmt(0, ZoneAction.FINISH)).latency_ns
            rst = run_cmd(sim, dev, mgmt(0, ZoneAction.RESET)).latency_ns
            sim.run()
            dev.restore_state(pristine)
            return fin, rst

        assert one_rep() == one_rep()

    def test_zone_manager_restore_checks_length(self):
        import pytest

        sim, dev = make_device(quiet_profile())
        with pytest.raises(ValueError, match="zones"):
            dev.zones.restore_state([])
