"""Tests for the ASCII figure renderer."""

import pytest

from repro.core import ExperimentResult
from repro.core.figures import ascii_chart, ascii_timeline, render_figure


class TestAsciiChart:
    def test_axes_and_legend(self):
        text = ascii_chart(
            {"reads": [(1, 10), (2, 20)], "writes": [(1, 5), (2, 40)]},
            width=20, height=6, title="demo", xlabel="qd", ylabel="kiops",
        )
        assert "demo" in text
        assert "o reads" in text and "x writes" in text
        assert "(kiops vs qd)" in text

    def test_log_x_positions_geometric_points_evenly(self):
        text = ascii_chart(
            {"s": [(1, 1), (4, 1), (16, 1)]}, width=17, height=3, log_x=True,
        )
        row = next(line for line in text.splitlines() if "o" in line)
        cols = [i for i, c in enumerate(row) if c == "o"]
        # geometric x spacing -> equal column gaps under log-x
        assert cols[1] - cols[0] == cols[2] - cols[1]

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 1), (2, 2)]}, log_x=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_values_stay_in_grid(self):
        text = ascii_chart({"s": [(i, i * i) for i in range(1, 30)]},
                           width=30, height=8)
        body = [l for l in text.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in body)


class TestAsciiTimeline:
    def test_scales_to_peak(self):
        line = ascii_timeline([0, 600, 1200], peak=1200, label="w")
        assert line.startswith("w [")
        assert line.count("█") == 1 and " " in line.split("[")[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_timeline([])

    def test_autoscale_without_peak(self):
        line = ascii_timeline([1, 2, 4])
        assert "█" in line


class TestRenderFigure:
    def test_renders_series_result(self):
        result = ExperimentResult("fig4b", "t", ["a"])
        result.series = {"read": [(1, 10), (14, 100)]}
        assert "o read" in render_figure(result)

    def test_fig6_uses_timelines(self):
        result = ExperimentResult("fig6", "t", ["a"])
        result.series = {"zns-write": [(0.05, 1100), (0.10, 1100)]}
        text = render_figure(result)
        assert "zns-write" in text and "[" in text

    def test_result_without_series_rejected(self):
        with pytest.raises(ValueError):
            render_figure(ExperimentResult("x", "t", ["a"]))
