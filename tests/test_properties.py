"""Property-based tests (hypothesis) for core invariants across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import KIB, FlashGeometry
from repro.hostif import Opcode
from repro.sim import Container, Simulator, us
from repro.workload import LatencyStats, RatePacer, TimeSeries
from repro.zns import ZoneStriping
from repro.zns.profiles import zn540


# --------------------------------------------------------------------- engine

@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=50))
def test_engine_fires_events_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(
    puts=st.lists(st.integers(1, 40), min_size=1, max_size=30),
)
def test_container_conserves_quantity(puts):
    """Everything put in can be taken out, and levels never go negative."""
    sim = Simulator()
    tank = Container(sim, capacity=100)
    total = sum(puts)
    taken = [0]

    def producer():
        for amount in puts:
            yield tank.put(amount)

    def consumer():
        while taken[0] < total:
            amount = min(17, total - taken[0])
            yield tank.get(amount)
            assert tank.level >= 0
            taken[0] += amount

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert taken[0] == total
    assert tank.level == 0


# -------------------------------------------------------------------- striping

@settings(max_examples=100, deadline=None)
@given(
    zone_index=st.integers(0, 903),
    offset_pages=st.integers(0, 1000),
    nbytes=st.integers(1, 512 * 1024),
)
def test_striping_span_covers_exactly_the_request(zone_index, offset_pages, nbytes):
    geometry = FlashGeometry()
    striping = ZoneStriping(geometry, zone_size_bytes=2048 * 1024 * 1024)
    offset = offset_pages * geometry.page_size
    spans = striping.dies_for_span(zone_index, offset, nbytes)
    assert sum(take for _, take in spans) == nbytes
    assert all(0 <= die < geometry.total_dies for die, _ in spans)
    # No span crosses a page boundary.
    assert all(take <= geometry.page_size for _, take in spans)


@settings(max_examples=30, deadline=None)
@given(zone_index=st.integers(0, 100))
def test_striping_distributes_pages_evenly(zone_index):
    geometry = FlashGeometry()
    striping = ZoneStriping(geometry, zone_size_bytes=2048 * 1024 * 1024)
    pages = 4 * geometry.total_dies
    counts = np.zeros(geometry.total_dies, dtype=int)
    for page in range(pages):
        counts[striping.die_for_page(zone_index, page)] += 1
    assert (counts == 4).all()


# ----------------------------------------------------------------------- stats

@settings(max_examples=60, deadline=None)
@given(samples=st.lists(st.integers(0, 10**9), min_size=1, max_size=300),
       p=st.floats(0, 100))
def test_latency_percentile_matches_numpy(samples, p):
    stats = LatencyStats()
    for s in samples:
        stats.record(s)
    assert stats.percentile_ns(p) == pytest.approx(np.percentile(samples, p))
    assert stats.mean_ns == pytest.approx(np.mean(samples))


@settings(max_examples=50, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 10**9), st.integers(1, 10**6)),
        min_size=1, max_size=200,
    ),
    interval_ms=st.integers(1, 500),
)
def test_timeseries_conserves_bytes(events, interval_ms):
    ts = TimeSeries(interval_ns=interval_ms * 1_000_000)
    total = 0
    for when, nbytes in events:
        ts.record(when, nbytes)
        total += nbytes
    series = ts.bandwidth_series()
    # sum(MiB/s * interval_seconds) == total MiB
    reconstructed = sum(v * interval_ms / 1000 for _, v in series)
    assert reconstructed == pytest.approx(total / (1024 * 1024), rel=1e-9)


# ------------------------------------------------------------------ rate pacer

@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 10**6), min_size=1, max_size=100),
    rate=st.integers(10**5, 10**9),
)
def test_pacer_reservations_never_exceed_rate(sizes, rate):
    sim = Simulator()
    pacer = RatePacer(sim, rate_bps=rate)
    start = sim.now
    total = 0
    horizon = start
    for nbytes in sizes:
        delay = pacer.delay_for(nbytes)
        assert delay >= 0
        total += nbytes
        horizon = max(horizon, start + delay)
    # The reservation horizon admits at most rate x elapsed bytes.
    # Each reservation rounds to the nearest nanosecond — unbiased, but
    # it can under-charge by up to 0.5 ns per request, so the bound
    # carries that slack (negligible at real block sizes, visible to
    # hypothesis at 1-byte requests against sub-ns byte costs).
    elapsed_s = (pacer._next_free_ns - start) / 1e9
    slack_s = 0.5e-9 * len(sizes)
    assert total <= rate * (elapsed_s + slack_s) * (1 + 1e-6) + 1


# --------------------------------------------------------------------- profile

@settings(max_examples=60, deadline=None)
@given(
    nlb_a=st.integers(1, 64),
    nlb_b=st.integers(1, 64),
    opcode=st.sampled_from([Opcode.READ, Opcode.WRITE, Opcode.APPEND]),
)
def test_cmd_service_monotone_in_lba_count(nlb_a, nlb_b, opcode):
    profile = zn540()
    lo, hi = sorted((nlb_a, nlb_b))
    # Compare at equal request-size tier so only the per-LBA term varies.
    service_lo = profile.cmd_service_ns(opcode, 8 * KIB, lo, 4096)
    service_hi = profile.cmd_service_ns(opcode, 8 * KIB, hi, 4096)
    assert service_lo <= service_hi


@settings(max_examples=60, deadline=None)
@given(
    occ_a=st.integers(0, 275_712),
    occ_b=st.integers(0, 275_712),
)
def test_reset_work_monotone_in_occupancy(occ_a, occ_b):
    profile = zn540()
    lo, hi = sorted((occ_a, occ_b))
    assert profile.reset_work_ns(lo, 0, 4096) <= profile.reset_work_ns(hi, 0, 4096)


@settings(max_examples=60, deadline=None)
@given(remaining=st.integers(0, 1077 * 1024 * 1024))
def test_finish_work_bounds(remaining):
    profile = zn540()
    work = profile.finish_work_ns(remaining)
    assert work >= profile.finish_floor_ns
    # Never worse than padding the whole capacity plus the floor.
    assert work <= profile.finish_work_ns(profile.zone_cap_bytes)


# ------------------------------------------------------------------- scheduler

@settings(max_examples=40, deadline=None)
@given(
    chunks=st.lists(st.integers(1, 8), min_size=1, max_size=40),
)
def test_mq_deadline_merging_preserves_lba_coverage(chunks):
    """Merged dispatches cover exactly the submitted LBAs, in order."""
    from repro.stacks import IoUringStack
    from .util import make_device, write

    sim, dev = make_device()
    stack = IoUringStack(dev, scheduler="mq-deadline")
    total = 0
    events = []
    zone_cap = dev.zones.zones[0].cap_lbas
    for nlb in chunks:
        if total + nlb > zone_cap:
            break
        events.append(stack.submit(write(total, nlb)))
        total += nlb
    sim.run()
    assert all(e.value.ok for e in events)
    assert dev.zones.zones[0].wp == total
    assert dev.counters.bytes_written == total * dev.namespace.block_size
