"""Calibration regression gate: the profile must hold the paper anchors."""

import pytest

from repro.zns.calibrate import PAPER_ANCHORS, Anchor, AnchorResult, measure_anchors


@pytest.fixture(scope="module")
def anchor_results():
    return measure_anchors()


def test_every_anchor_within_tolerance(anchor_results):
    off = [str(r) for r in anchor_results if not r.ok]
    assert not off, "calibration drifted:\n" + "\n".join(off)


def test_anchor_set_covers_the_quick_quantities(anchor_results):
    names = {r.anchor.name for r in anchor_results}
    assert len(names) == len(PAPER_ANCHORS) == 13


def test_results_are_deterministic():
    a = {r.anchor.name: r.measured for r in measure_anchors(seed=7)}
    b = {r.anchor.name: r.measured for r in measure_anchors(seed=7)}
    assert a == b


def test_different_seed_stays_within_tolerance():
    assert all(r.ok for r in measure_anchors(seed=20260706))


def test_anchor_result_formatting():
    anchor = Anchor("demo", 10.0, "us", 0.05, "here")
    ok = AnchorResult(anchor, 10.2)
    off = AnchorResult(anchor, 12.0)
    assert ok.ok and "[ok ]" in str(ok)
    assert not off.ok and "[OFF]" in str(off)
