"""Tests for time-resolved telemetry, run directories, and ``repro report``.

The guarantees under test:

* the sampler's windowed deltas are exact — counter columns sum back to
  the registry totals, window indices and spans agree,
* enabling telemetry does not perturb the simulation: result tables are
  identical with it on or off,
* the merged timeseries is byte-identical at any ``--jobs`` (including
  under fault injection) and survives a cache round trip,
* the pinned aggregation semantics (plan-order gauge merge, NaN from an
  empty histogram percentile) hold,
* the run directory round-trips and the HTML dashboard renders exactly
  the committed golden page.
"""

from __future__ import annotations

import json
import math
import os
import types

import pytest

from repro.core.experiments.common import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.exec import execute_experiments
from repro.hostif.commands import Command, Opcode, ZoneAction
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.report import RUN_SCHEMA, load_run, render_html, write_run
from repro.obs.telemetry import TelemetryCollector
from repro.sim.engine import Simulator, ms, us
from repro.zns.device import ZnsDevice
from repro.zns.profiles import zn540_small

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "report_small.html")


def tiny_config(**extra) -> ExperimentConfig:
    return ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                            num_zones=16, zones_per_level=3, **extra)


def telemetry_blob(report) -> str:
    return json.dumps(report.telemetry, sort_keys=True)


def _run_smoke(interval_ns: int):
    """Appends + reads + a reset on a small device under a sampler."""
    collector = TelemetryCollector(interval_ns)
    sim = Simulator()
    device = ZnsDevice(sim, zn540_small(), telemetry=collector)
    nlb = device.namespace.lbas(16 * 1024)
    zone = device.zones.zones[0]
    for _ in range(48):
        sim.run(until=device.submit(
            Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb)))
    for i in range(16):
        sim.run(until=device.submit(
            Command(Opcode.READ, slba=zone.zslba + i * nlb, nlb=nlb)))
    sim.run(until=device.submit(
        Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
    return collector, device


class TestSampler:
    def test_window_and_span_arithmetic(self):
        collector, device = _run_smoke(us(5))
        [segment] = collector.drain()
        assert segment["rows"] >= 2
        assert len(segment["windows"]) == segment["rows"]
        assert len(segment["spans"]) == segment["rows"]
        previous = 0
        for window, span in zip(segment["windows"], segment["spans"]):
            assert window > previous
            assert span == window - previous
            previous = window
        for name, column in segment["columns"].items():
            assert len(column) == segment["rows"], name

    def test_counter_deltas_sum_to_registry_totals(self):
        collector, device = _run_smoke(us(5))
        [segment] = collector.drain()
        registry = {metric.name: metric for metric in device.metrics}
        checked = 0
        for name, column in segment["columns"].items():
            metric = registry.get(name)
            if metric is not None and type(metric) is Counter:
                assert sum(v or 0 for v in column) == metric.value, name
                checked += 1
        assert checked >= 3  # host ops, nand ops, ...

    def test_zone_census_present_and_conserved(self):
        collector, device = _run_smoke(us(5))
        [segment] = collector.drain()
        census = {name: column for name, column in segment["columns"].items()
                  if name.startswith("zones.")}
        assert census, "zone-state census columns missing"
        total_zones = len(device.zones.zones)
        # Instantaneous census: states absent from a row are zero, so the
        # sum of present states never exceeds the zone count.
        for i in range(segment["rows"]):
            assert sum(column[i] or 0 for column in census.values()) \
                <= total_zones

    def test_drain_is_idempotent_per_sampler(self):
        collector, _device = _run_smoke(us(5))
        first = collector.drain()
        second = collector.drain()
        assert first == second  # segment() finalizes exactly once

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TelemetryCollector(0)


class TestPinnedAggregation:
    def test_empty_histogram_percentile_is_nan(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=(10, 100, 1000))
        assert math.isnan(histogram.percentile(50))
        histogram.observe(42)
        assert histogram.percentile(50) == pytest.approx(55.0, rel=0.5)

    def test_merge_snapshot_gauge_last_wins(self):
        first = MetricsRegistry()
        first.gauge("depth").set(7)
        second = MetricsRegistry()
        second.gauge("depth").set(3)
        target = MetricsRegistry()
        target.merge_snapshot(first.snapshot())
        target.merge_snapshot(second.snapshot())
        gauge = target.gauge("depth")
        assert gauge.value == 3      # plan-order: last snapshot wins
        assert gauge.max_value == 7  # highs still take the max


class TestEngineIntegration:
    def test_telemetry_does_not_perturb_results(self):
        plain, _ = execute_experiments(
            ["fig2a"], tiny_config(), jobs=1, cache_dir=None)
        sampled, report = execute_experiments(
            ["fig2a"], tiny_config(telemetry_interval_ns=us(100)),
            jobs=1, cache_dir=None)
        assert plain["fig2a"].table() == sampled["fig2a"].table()
        segments = report.telemetry["fig2a"]
        assert segments
        assert all(s["experiment_id"] == "fig2a" for s in segments)

    def test_disabled_report_carries_no_telemetry(self):
        _, report = execute_experiments(
            ["fig2a"], tiny_config(), jobs=1, cache_dir=None)
        assert report.telemetry == {}

    def test_jobs_invariant_under_faults(self):
        config = tiny_config(telemetry_interval_ns=us(100), faults="chaos")
        _, serial = execute_experiments(
            ["fig2a"], config, jobs=1, cache_dir=None)
        _, parallel = execute_experiments(
            ["fig2a"], config, jobs=4, cache_dir=None)
        assert telemetry_blob(serial) == telemetry_blob(parallel)
        columns = {name for segment in serial.telemetry["fig2a"]
                   for name in segment["columns"]}
        assert any(name.startswith("faults.") for name in columns)

    def test_cache_round_trip(self, tmp_path):
        config = tiny_config(telemetry_interval_ns=us(100))
        _, cold = execute_experiments(
            ["fig2a"], config, jobs=1, cache_dir=str(tmp_path))
        _, warm = execute_experiments(
            ["fig2a"], config, jobs=1, cache_dir=str(tmp_path))
        assert warm.cache_hits == len(warm.points)
        assert telemetry_blob(cold) == telemetry_blob(warm)

    def test_live_collector_on_config_is_rejected(self):
        config = tiny_config(telemetry=TelemetryCollector(us(100)))
        with pytest.raises(ValueError, match="telemetry_interval_ns"):
            execute_experiments(["fig2a"], config, jobs=1, cache_dir=None)

    def test_pool_emits_started_progress(self):
        lines = []
        execute_experiments(["fig2a"], tiny_config(), jobs=2,
                            cache_dir=None, progress=lines.append)
        assert any("started (pid" in line for line in lines)


# ----------------------------------------------------------------- run dirs
def _fake_report():
    return types.SimpleNamespace(
        jobs=2, points=[object(), object()], executed=2, cache_hits=0,
        failed=0, wall_s=1.234, events=4321,
        telemetry={
            "figX": [{
                "device": "zns:zn540-small", "ordinal": 0,
                "interval_ns": 100_000, "rows": 4, "end_ns": 400_000,
                "windows": [1, 2, 3, 4], "spans": [1, 1, 1, 1],
                "columns": {
                    "host.appends": [5, 6, 0, 2],
                    "lat.append.p95": [12.5, 13.0, None, 11.0],
                    "lat.append.count": [5, 6, 0, 2],
                    "faults.injected": [0, 1, 0, 0],
                    "gc.running": [0, 0, 1, 1],
                    "wbuf.level_bytes": [4096, 8192, 0, 4096],
                    "nand.die0.busy_frac": [0.5, 0.25, 0.0, 0.125],
                    "nand.die1.busy_frac": [0.25, 0.75, 0.0, 0.375],
                },
                "experiment_id": "figX", "point": "qd=1",
            }],
        },
    )


def _fake_results():
    result = ExperimentResult(
        experiment_id="figX", title="Synthetic table",
        columns=["stack", "kiops"],
        notes=["synthetic fixture for the report golden test"],
    )
    result.add_row(stack="spdk", kiops=123.4)
    result.add_row(stack="iouring", kiops=98.7)
    return {"figX": result}


def _golden_run(tmp_path) -> dict:
    run_dir = os.path.join(str(tmp_path), "golden-run")
    manifest = {
        "ids": ["figX"], "seed": 24301, "fast": True, "scale": 1.0,
        "faults": None, "interval_us": 100.0, "jobs": 2,
        "created": "2026-01-01T00:00:00",
    }
    write_run(run_dir, _fake_results(), _fake_report(), manifest)
    return load_run(run_dir)


class TestRunDirectory:
    def test_round_trip(self, tmp_path):
        run = _golden_run(tmp_path)
        assert run["manifest"]["schema"] == RUN_SCHEMA
        assert run["manifest"]["exec"]["points"] == 2
        assert run["results"]["figX"]["columns"] == ["stack", "kiops"]
        assert run["telemetry"]["figX"][0]["rows"] == 4

    def test_telemetry_json_is_canonical(self, tmp_path):
        _golden_run(tmp_path)
        path = os.path.join(str(tmp_path), "golden-run", "telemetry.json")
        raw = open(path, encoding="utf-8").read()
        doc = json.loads(raw)
        assert raw == json.dumps(doc, sort_keys=True,
                                 separators=(",", ":")) + "\n"

    def test_load_rejects_non_run_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path))

    def test_report_matches_golden(self, tmp_path):
        page = render_html(_golden_run(tmp_path))
        expected = open(GOLDEN, encoding="utf-8").read()
        assert page == expected, (
            "report HTML drifted from tests/golden/report_small.html; "
            "regenerate it if the change is intentional (see that file's "
            "sibling tests)"
        )

    def test_report_structure(self, tmp_path):
        page = render_html(_golden_run(tmp_path))
        assert page.count("<svg") >= 6          # one sparkline per family+
        assert 'class="s-fault"' in page        # faults wear the red series
        assert "die mean" in page               # per-die columns collapse
        assert "lat.append.p50" not in page     # p95 supersedes p50 tiles
        assert "src=" not in page and "href=" not in page  # self-contained
        assert "prefers-color-scheme: dark" in page
