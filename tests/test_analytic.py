"""Cross-validation: analytical predictions vs simulated measurements."""

import math

import pytest

from repro.core import analytic
from repro.hostif import Opcode
from repro.sim import ms
from repro.stacks import SpdkStack
from repro.workload import IoKind, JobRunner, JobSpec
from repro.zns.profiles import zn540

from .util import make_device, quiet_profile

KIB = 1024
MIB = 1024 * 1024


class TestCaps:
    def test_paper_iops_caps(self):
        profile = zn540()
        assert analytic.iops_cap(profile, Opcode.WRITE, 4 * KIB) == pytest.approx(186_000, rel=0.01)
        assert analytic.iops_cap(profile, Opcode.APPEND, 4 * KIB) == pytest.approx(132_000, rel=0.01)
        assert analytic.iops_cap(profile, Opcode.READ, 4 * KIB) == pytest.approx(424_000, rel=0.01)

    def test_device_write_limit(self):
        profile = zn540()
        limit = analytic.device_write_limit_bps(profile) / MIB
        assert 1_100 <= limit <= 1_160

    def test_qd1_latency_matches_simulation(self):
        profile = quiet_profile()
        for opcode, op in ((Opcode.WRITE, IoKind.WRITE), (Opcode.APPEND, IoKind.APPEND)):
            predicted = analytic.qd1_latency_ns(profile, opcode, 4 * KIB)
            sim, dev = make_device(profile)
            job = JobSpec(op=op, block_size=4 * KIB, runtime_ns=ms(2),
                          ramp_ns=ms(0.3), zones=[0])
            measured = JobRunner(dev, SpdkStack(dev), job).run().latency.mean_ns
            stack_overhead = 560
            assert measured == pytest.approx(predicted + stack_overhead, rel=0.02)

    def test_closed_loop_throughput_curve(self):
        # Appends: linear until the cap, then flat (Fig. 4a shape).
        profile = zn540()
        cap = analytic.iops_cap(profile, Opcode.APPEND, 4 * KIB)
        latency = analytic.qd1_latency_ns(profile, Opcode.APPEND, 4 * KIB)
        t1 = analytic.closed_loop_throughput(1, latency, cap)
        t2 = analytic.closed_loop_throughput(2, latency, cap)
        t8 = analytic.closed_loop_throughput(8, latency, cap)
        assert t2 == pytest.approx(2 * t1, rel=0.01)
        assert t8 == pytest.approx(cap)

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError):
            analytic.closed_loop_throughput(0, 1000, 1000)


class TestTailAndTransitions:
    def test_flood_read_tail_matches_paper(self):
        tail_ms = analytic.flood_read_tail_ns(zn540()) / 1e6
        assert tail_ms == pytest.approx(99, rel=0.03)  # paper: 98.04 ms

    def test_finish_latency_endpoints(self):
        profile = zn540()
        empty = analytic.finish_latency_ns(profile, 0.0) / 1e6
        full = analytic.finish_latency_ns(profile, 1.0) / 1e6
        assert empty == pytest.approx(908, rel=0.02)  # paper: 907.51 ms
        assert full == pytest.approx(3.07, rel=0.01)

    def test_finish_latency_validation(self):
        with pytest.raises(ValueError):
            analytic.finish_latency_ns(zn540(), 1.5)

    def test_reset_inflation_matches_fig7(self):
        profile = zn540()
        # QD1 write thread: ~88 K ops/s -> paper's +78%.
        factor = analytic.reset_inflation_factor(profile, Opcode.WRITE, 88_000)
        assert factor == pytest.approx(1.78, rel=0.05)
        # QD1 append thread: ~64 K ops/s -> ~+71%.
        factor = analytic.reset_inflation_factor(profile, Opcode.APPEND, 64_000)
        assert factor == pytest.approx(1.71, rel=0.06)

    def test_reset_inflation_saturation_guard(self):
        with pytest.raises(ValueError):
            analytic.reset_inflation_factor(zn540(), Opcode.WRITE, 10**9)


class TestGcModel:
    def test_lambert_w_identity(self):
        for x in (-0.3, -0.1, 0.0, 0.5, 2.0):
            w = analytic._lambert_w(x)
            assert w * math.exp(w) == pytest.approx(x, abs=1e-9)

    def test_lambert_w_domain(self):
        with pytest.raises(ValueError):
            analytic._lambert_w(-1.0)

    def test_wa_increases_with_utilization(self):
        was = [analytic.greedy_gc_write_amplification(u) for u in (0.5, 0.7, 0.85, 0.92)]
        assert was == sorted(was)
        assert was[0] > 1.0

    def test_wa_validation(self):
        with pytest.raises(ValueError):
            analytic.greedy_gc_write_amplification(1.0)

    def test_wa_magnitude_for_experiment_utilization(self):
        # The Fig. 6 conventional device runs at 0.92 x 0.93 = 0.856
        # utilization of physical space: WA should land near the
        # simulation's measured ~2-3.
        wa = analytic.greedy_gc_write_amplification(0.856)
        assert 2.0 < wa < 4.0
