"""Tests for the §IV emulator latency models and fidelity probes."""

import pytest

from repro.emulators import ALL_MODELS, CONFZNS, FEMU, NVMEVIRT, THIS_WORK
from repro.emulators.fidelity import (
    _mgmt_latency_ms,
    _qd1_latency_us,
    _verdicts,
    probe_model,
)
from repro.hostif import Command, Opcode, ZoneAction
from repro.sim import us

KIB = 1024


class TestModelDefinitions:
    def test_four_models(self):
        assert len(ALL_MODELS) == 4
        assert {m.name for m in ALL_MODELS} == {"femu", "nvmevirt", "confzns", "this-work"}

    def test_models_build_working_devices(self):
        for model in ALL_MODELS:
            sim, device = model.build()
            cpl = sim.run(until=device.submit(Command(Opcode.WRITE, slba=0, nlb=1)))
            assert cpl.ok, model.name

    def test_femu_completes_at_host_speed(self):
        latency = _qd1_latency_us(FEMU, Opcode.WRITE, 4 * KIB, reps=5)
        assert latency < 2.0  # microseconds: DRAM-speed

    def test_femu_ops_all_equal(self):
        write = _qd1_latency_us(FEMU, Opcode.WRITE, 4 * KIB, reps=5)
        append = _qd1_latency_us(FEMU, Opcode.APPEND, 4 * KIB, reps=5)
        assert write == pytest.approx(append, rel=0.05)

    def test_nvmevirt_append_equals_write(self):
        write = _qd1_latency_us(NVMEVIRT, Opcode.WRITE, 4 * KIB, reps=5)
        append = _qd1_latency_us(NVMEVIRT, Opcode.APPEND, 4 * KIB, reps=5)
        assert append == pytest.approx(write, rel=0.05)

    def test_this_work_append_differs_from_write(self):
        write = _qd1_latency_us(THIS_WORK, Opcode.WRITE, 4 * KIB, reps=5)
        append = _qd1_latency_us(THIS_WORK, Opcode.APPEND, 4 * KIB, reps=5)
        assert append > 1.2 * write

    def test_nvmevirt_reset_is_static(self):
        empty = _mgmt_latency_ms(NVMEVIRT, ZoneAction.RESET, 0.0, reps=3)
        full = _mgmt_latency_ms(NVMEVIRT, ZoneAction.RESET, 1.0, reps=3)
        assert empty == pytest.approx(full, rel=0.15)
        assert empty == pytest.approx(3.5, rel=0.15)  # NAND erase latency

    def test_this_work_reset_occupancy_dependent(self):
        empty = _mgmt_latency_ms(THIS_WORK, ZoneAction.RESET, 0.0, reps=3)
        full = _mgmt_latency_ms(THIS_WORK, ZoneAction.RESET, 1.0, reps=3)
        assert full > 1.8 * empty

    def test_emulators_enforce_full_zone_semantics(self):
        """Latency models differ; the zone state machine must not."""
        for model in ALL_MODELS:
            sim, device = model.build()
            bad = sim.run(until=device.submit(Command(Opcode.WRITE, slba=5, nlb=1)))
            assert not bad.ok, model.name


class TestVerdictLogic:
    def test_reference_passes_against_itself(self):
        ref = probe_model(THIS_WORK)
        verdicts = _verdicts(ref, ref)
        failed = [obs for obs, ok in verdicts.items() if not ok]
        assert not failed, f"reference failed its own observations: {failed}"

    def test_femu_fails_everything(self):
        ref = probe_model(THIS_WORK)
        verdicts = _verdicts(probe_model(FEMU), ref)
        assert not any(verdicts.values())

    def test_nvmevirt_misses_append_and_transitions(self):
        ref = probe_model(THIS_WORK)
        verdicts = _verdicts(probe_model(NVMEVIRT), ref)
        for obs in (4, 6, 9, 10, 12, 13):
            assert not verdicts[obs], f"obs {obs} should fail on NVMeVirt"
        for obs in (3, 7, 8):
            assert verdicts[obs], f"obs {obs} should pass on NVMeVirt (read/write accurate)"

    def test_confzns_reproduces_read_write_scaling(self):
        ref = probe_model(THIS_WORK)
        verdicts = _verdicts(probe_model(CONFZNS), ref)
        assert verdicts[3] and verdicts[5] and verdicts[7] and verdicts[8]
        assert not verdicts[4] and not verdicts[9]
