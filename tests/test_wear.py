"""The wear-dependent lifetime model (DESIGN.md §17).

Covers the wear layer end to end:

* :class:`WearCurve` — the parametric base/knee/slope failure ladder,
  its JSON round trip, and validation;
* plan-level wiring — wear curves arming the media-fault machinery,
  inverted retirement thresholds rejected at resolve time;
* the headline byte-identity guarantee — a *flat* wear curve is
  byte-identical to the equivalent static-probability plan;
* wear odometers — erase counts, read-disturb exposure, program
  failures; snapshot/restore through the device state fixture;
* deterministic aging — :meth:`Device.age` replays are bit-reproducible
  per (seed, epochs), retire zones by erase-count thresholds, and
  compose with the chaos preset;
* conventional bad-block management — spare-pool promotion, remap
  flagging, and victim exclusion in the page-mapped FTL.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    FaultPlan,
    FaultPlanError,
    WearCurve,
    WearTracker,
    resolve,
)
from repro.flash.geometry import FlashGeometry
from repro.conv.ftl import PageMappedFtl
from repro.hostif import Status, ZoneAction
from repro.sim.engine import us
from repro.zns import ZoneState

from .util import make_device, mgmt, read, run_cmd, write

KIB = 1024


def plan(**overrides) -> FaultPlan:
    return FaultPlan(name="test", **overrides)


class TestWearCurve:
    def test_flat_curve_is_constant(self):
        curve = WearCurve(base=0.25)
        assert curve.flat
        assert curve.value(0) == 0.25
        assert curve.value(10_000) == 0.25

    def test_slope_climbs_after_knee_and_caps(self):
        curve = WearCurve(base=0.1, knee=10, slope=0.05, cap=0.4)
        assert curve.value(0) == 0.1
        assert curve.value(10) == 0.1          # knee inclusive
        assert curve.value(12) == pytest.approx(0.2)
        assert curve.value(1_000) == 0.4       # capped
        assert not curve.flat

    def test_armed_semantics(self):
        assert not WearCurve().armed                      # all-zero: inert
        assert WearCurve(base=0.1).armed
        assert WearCurve(slope=0.01).armed                # arms with wear
        assert not WearCurve(slope=0.01, cap=0.0).armed   # capped to zero

    def test_json_round_trip(self):
        curve = WearCurve(base=0.05, knee=4, slope=0.01, cap=0.5)
        assert WearCurve.from_dict(json.loads(json.dumps(curve.to_dict()))) == curve

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            WearCurve.from_dict({"base": 0.1, "bend": 3})

    def test_curve_in_profile_rejected_as_plan_error(self, tmp_path):
        path = tmp_path / "bad-curve.json"
        path.write_text(json.dumps(
            {"program_fail_curve": {"base": 0.1, "bend": 3}}))
        with pytest.raises(FaultPlanError, match="program_fail_curve"):
            resolve(str(path))

    def test_validation(self):
        with pytest.raises(ValueError):
            WearCurve(base=1.5)
        with pytest.raises(ValueError):
            WearCurve(base=0.5, cap=0.2)   # base above cap
        with pytest.raises(ValueError):
            WearCurve(slope=-0.1)
        with pytest.raises(ValueError):
            WearCurve(knee=-1)


class TestPlanWearValidation:
    def test_inverted_failure_thresholds_rejected(self):
        # OFFLINE at-or-below READ_ONLY would skip the read-only stage.
        with pytest.raises(FaultPlanError, match="READ_ONLY"):
            plan(retire_read_only_after=4, retire_offline_after=4)
        with pytest.raises(FaultPlanError, match="READ_ONLY"):
            plan(retire_read_only_after=6, retire_offline_after=2)

    def test_inverted_erase_thresholds_rejected(self):
        with pytest.raises(FaultPlanError, match="READ_ONLY"):
            plan(retire_read_only_erases=50, retire_offline_erases=40)

    def test_inverted_thresholds_rejected_through_resolve(self, tmp_path):
        path = tmp_path / "inverted.json"
        path.write_text(json.dumps(
            {"retire_read_only_after": 8, "retire_offline_after": 8}))
        with pytest.raises(FaultPlanError, match="READ_ONLY"):
            resolve(str(path))

    def test_single_sided_thresholds_allowed(self):
        # Failure-count thresholds alone are valid but inert (they only
        # fire when program faults actually occur); erase thresholds arm
        # the plan on their own (aging can trip them without faults).
        plan(retire_offline_after=3)
        assert not plan(retire_offline_after=3).enabled
        assert plan(retire_read_only_erases=10).enabled
        assert plan(retire_read_only_erases=10).wear_enabled

    def test_curve_profile_round_trips_through_json(self, tmp_path):
        path = tmp_path / "wear.json"
        path.write_text(json.dumps({
            "program_fail_curve": {"base": 0.02, "knee": 8, "slope": 0.004,
                                   "cap": 0.3},
        }))
        loaded = resolve(str(path))
        assert loaded.program_fail_curve == WearCurve(
            base=0.02, knee=8, slope=0.004, cap=0.3)
        # And back out: to_dict serializes the curve as a dict again.
        assert json.loads(json.dumps(loaded.to_dict()))[
            "program_fail_curve"]["knee"] == 8

    def test_presets_carry_wear_curves(self):
        assert resolve("wearout").program_fail_curve.armed
        assert resolve("wearout").erase_fail_curve.armed
        assert resolve("read-disturb").read_disturb_curve.armed


class _Trace:
    """Latency trace of a fixed write+drain+read+reset sequence."""

    def __init__(self, faults):
        sim, dev = make_device(faults=faults)
        self.latencies = []
        page = dev.profile.geometry.page_size
        nlb = page // 4096
        for i in range(4):
            self.latencies.append(
                run_cmd(sim, dev, write(i * nlb, nlb)).latency_ns)
        sim.run()
        for i in range(4):
            self.latencies.append(
                run_cmd(sim, dev, read(i * nlb, nlb)).latency_ns)
        self.latencies.append(
            run_cmd(sim, dev, mgmt(0, ZoneAction.RESET)).latency_ns)
        self.device = dev


class TestFlatCurveByteIdentity:
    """A flat curve (slope 0) must reproduce the static plan exactly —
    same draws, same latencies, same counters — so armed-but-flat
    profiles degrade to the pre-wear behaviour."""

    def test_flat_program_curve_matches_static_prob(self):
        static = _Trace(plan(program_fail_prob=0.5, program_retry_max=2))
        flat = _Trace(plan(
            program_fail_curve=WearCurve(base=0.5), program_retry_max=2))
        assert static.latencies == flat.latencies
        assert (static.device.faults.program_failures.value
                == flat.device.faults.program_failures.value)

    def test_flat_read_curve_matches_static_prob(self):
        static = _Trace(plan(read_disturb_prob=0.7, read_retry_max=3))
        flat = _Trace(plan(
            read_disturb_curve=WearCurve(base=0.7), read_retry_max=3))
        assert static.latencies == flat.latencies
        assert (static.device.faults.read_retries.value
                == flat.device.faults.read_retries.value)

    def test_flat_erase_curve_matches_static_prob(self):
        static = _Trace(plan(erase_fail_prob=0.5, erase_retry_max=2))
        flat = _Trace(plan(
            erase_fail_curve=WearCurve(base=0.5), erase_retry_max=2))
        assert static.latencies == flat.latencies


class TestWearOdometers:
    #: Armed but (at zero wear) inert: probabilities only climb with
    #: erase count, so a fresh device sees no failures.
    _TRACKING = dict(program_fail_curve=WearCurve(slope=1e-9))

    def test_reset_bumps_erase_count_and_clears_exposure(self):
        sim, dev = make_device(faults=plan(
            **self._TRACKING, read_disturb_curve=WearCurve(slope=1e-9),
            read_disturb_exposure_reads=2))
        page = dev.profile.geometry.page_size
        nlb = page // 4096
        assert run_cmd(sim, dev, write(0, nlb)).ok
        sim.run()
        for _ in range(3):
            assert run_cmd(sim, dev, read(0, nlb)).ok
        wear = dev.faults.wear.peek(0)
        assert wear.reads_since_erase == 3
        assert run_cmd(sim, dev, mgmt(0, ZoneAction.RESET)).ok
        assert wear.erase_count == 1
        assert wear.reads_since_erase == 0
        assert dev.faults.max_erase_count.value == 1

    def test_program_failures_accumulate_per_zone(self):
        sim, dev = make_device(faults=plan(
            program_fail_prob=1.0, program_retry_max=1,
            retire_read_only_after=100))
        page = dev.profile.geometry.page_size
        assert run_cmd(sim, dev, write(0, 4 * page // 4096)).ok
        sim.run()
        assert dev.faults.wear.peek(0).program_failures == 4

    def test_failure_probability_monotone_in_wear(self):
        injector_plan = plan(program_fail_curve=WearCurve(
            base=0.01, knee=5, slope=0.02, cap=0.6))
        sim, dev = make_device(faults=injector_plan)
        probs = []
        wear = dev.faults.wear.unit(0)
        for erases in (0, 5, 10, 20, 50, 1_000):
            wear.erase_count = erases
            probs.append(dev.faults._program_prob(wear))
        assert probs == sorted(probs)
        assert probs[0] == 0.01 and probs[-1] == 0.6

    def test_wear_snapshot_restores_through_device_fixture(self):
        sim, dev = make_device(faults=resolve("wearout"))
        page = dev.profile.geometry.page_size
        assert run_cmd(sim, dev, write(0, 4 * page // 4096)).ok
        sim.run()
        assert run_cmd(sim, dev, mgmt(0, ZoneAction.RESET)).ok
        sim.run()
        dev.age(3)
        image = dev.state_snapshot()
        worn = dev.faults.wear.snapshot()
        assert any(entry[0] > 0 for entry in worn.values())  # erases landed

        sim2, dev2 = make_device(faults=resolve("wearout"))
        dev2.restore_state(image)
        assert dev2.faults.wear.snapshot() == worn

    def test_tracker_restore_round_trip(self):
        tracker = WearTracker()
        unit = tracker.unit(7)
        unit.erase_count, unit.program_failures, unit.reads_since_erase = 9, 2, 5
        clone = WearTracker()
        clone.restore(json.loads(json.dumps(tracker.snapshot())))
        assert clone.snapshot() == tracker.snapshot()
        assert clone.peek(7).erase_count == 9


class TestAging:
    def test_age_is_inert_without_faults(self):
        sim, dev = make_device(faults=None)
        assert dev.age(10) == 0

    def test_age_zero_epochs_is_noop(self):
        sim, dev = make_device(faults=resolve("wearout"))
        assert dev.age(0) == 0
        assert len(dev.faults.wear) == 0

    def test_age_is_deterministic_per_seed(self):
        _, dev_a = make_device(faults=resolve("wearout"))
        _, dev_b = make_device(faults=resolve("wearout"))
        dev_a.age(5)
        dev_b.age(5)
        assert dev_a.faults.wear.snapshot() == dev_b.faults.wear.snapshot()
        # And epochs matter: a different age is a different replay.
        _, dev_c = make_device(faults=resolve("wearout"))
        dev_c.age(6)
        assert dev_c.faults.wear.snapshot() != dev_a.faults.wear.snapshot()

    def test_age_accumulates_monotonically(self):
        _, dev = make_device(faults=resolve("wearout"))
        dev.age(2)
        first = dev.faults.wear.max_erase_count()
        dev.age(2)
        assert dev.faults.wear.max_erase_count() > first
        assert dev.faults.max_erase_count.value >= first

    def test_age_retires_zones_by_erase_thresholds(self):
        sim, dev = make_device(faults=plan(
            program_fail_curve=WearCurve(slope=1e-9),
            retire_read_only_erases=10, retire_offline_erases=60))
        retired = dev.age(4)   # mean ~18 erases/zone, all past 10
        assert retired > 0
        states = {z.state for z in dev.zones.zones}
        assert ZoneState.READ_ONLY in states
        assert dev.faults.zones_read_only.value == retired
        # READ_ONLY zones still serve reads but refuse writes.
        ro = next(z for z in dev.zones.zones
                  if z.state is ZoneState.READ_ONLY)
        nlb = dev.profile.geometry.page_size // 4096
        assert run_cmd(sim, dev, write(ro.zslba, nlb)).status is not Status.SUCCESS

    def test_chaos_plus_aging_runs_clean(self):
        # The kitchen-sink preset composes with a pre-aged device: the
        # workload must complete (errors allowed, crashes not).
        sim, dev = make_device(faults=resolve("chaos"))
        dev.age(3)
        page = dev.profile.geometry.page_size
        nlb = page // 4096
        outcomes = []
        for i in range(8):
            outcomes.append(run_cmd(sim, dev, write(i * nlb, nlb)))
        sim.run()
        for i in range(8):
            outcomes.append(run_cmd(sim, dev, read(i * nlb, nlb)))
        assert all(isinstance(c.latency_ns, int) for c in outcomes)
        dev.zones.check_invariants()


class TestConvBadBlocks:
    def _ftl(self, spares=1):
        geometry = FlashGeometry(
            channels=1, dies_per_channel=2, planes_per_die=1,
            blocks_per_plane=4, pages_per_block=4, page_size=4 * KIB)
        return PageMappedFtl(geometry, overprovision=0.25,
                             spare_blocks_per_die=spares)

    def test_spares_held_out_of_circulation(self):
        ftl = self._ftl(spares=1)
        total = ftl.geometry.total_blocks
        assert ftl.free_block_count == total - 2   # one spare per die
        assert ftl.spare_blocks_left(0) == 1

    def test_retire_promotes_spare_and_flags_remap(self):
        ftl = self._ftl(spares=1)
        victim = ftl.blocks[0]
        spare = ftl.retire_block(victim)
        assert spare is not None
        assert victim.block_id in ftl.bad_blocks
        assert spare.block_id in ftl.remapped_blocks
        assert ftl.is_remapped(spare.block_id * ftl.pages_per_block)
        assert ftl.spare_blocks_left(victim.die) == 0
        # The dead block can never be picked again.
        assert victim.is_full
        picked = ftl.pick_victim()
        assert picked is None or picked.block_id != victim.block_id

    def test_retirement_without_spares_shrinks_the_die(self):
        ftl = self._ftl(spares=1)
        first = ftl.retire_block(ftl.blocks[0])
        assert first is not None
        before = ftl.free_block_count
        second = ftl.retire_block(ftl.blocks[1])   # same die, pool empty
        assert second is None
        assert ftl.free_block_count == before      # nothing promoted

    def test_retire_rejects_blocks_with_valid_pages(self):
        ftl = self._ftl()
        ftl.blocks[0].valid_count = 1
        with pytest.raises(ValueError, match="valid pages"):
            ftl.retire_block(ftl.blocks[0])
