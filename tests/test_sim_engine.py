"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    ms,
    sec,
    us,
)


class TestTimeHelpers:
    def test_us_is_thousand_ns(self):
        assert us(1) == 1_000

    def test_ms_is_million_ns(self):
        assert ms(1) == 1_000_000

    def test_sec_is_billion_ns(self):
        assert sec(1) == 1_000_000_000

    def test_fractional_us_rounds(self):
        assert us(1.8564) == 1_856

    def test_helpers_return_ints(self):
        assert isinstance(us(3.3), int)
        assert isinstance(ms(0.5), int)
        assert isinstance(sec(2.25), int)


class TestTimeouts:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(us(5))
        sim.run()
        assert sim.now == us(5)

    def test_run_until_deadline_stops_clock_exactly(self):
        sim = Simulator()
        sim.timeout(us(100))
        sim.run(until=us(30))
        assert sim.now == us(30)

    def test_run_until_deadline_with_no_events(self):
        sim = Simulator()
        sim.run(until=us(10))
        assert sim.now == us(10)

    def test_event_exactly_at_deadline_fires(self):
        # The stop condition is when > deadline: an event scheduled at
        # exactly the deadline belongs to the run and must fire.
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(us(30))
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=us(30))
        assert fired == [us(30)]
        assert sim.now == us(30)

    def test_event_just_past_deadline_does_not_fire(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(us(30) + 1)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=us(30))
        assert fired == []
        assert sim.now == us(30)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeouts_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(us(3), lambda: fired.append("c"))
        sim.schedule(us(1), lambda: fired.append("a"))
        sim.schedule(us(2), lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(us(1), lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]


class TestProcesses:
    def test_process_yields_timeouts(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(us(2))
            trace.append(sim.now)
            yield sim.timeout(us(3))
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0, us(2), us(5)]

    def test_process_return_value_via_run(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            return 42

        done = sim.process(proc())
        assert sim.run(until=done) == 42

    def test_yielding_a_process_waits_for_it(self):
        sim = Simulator()

        def child():
            yield sim.timeout(us(10))
            return "payload"

        def parent():
            value = yield sim.process(child())
            return (sim.now, value)

        result = sim.run(until=sim.process(parent()))
        assert result == (us(10), "payload")

    def test_yielding_completed_process_resumes_immediately(self):
        sim = Simulator()

        def child():
            return "done"
            yield  # pragma: no cover

        def parent():
            proc = sim.process(child())
            yield sim.timeout(us(5))  # child finishes long before this
            value = yield proc
            return (sim.now, value)

        assert sim.run(until=sim.process(parent())) == (us(5), "done")

    def test_process_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent():
            with pytest.raises(ValueError, match="boom"):
                yield sim.process(child())
            return "handled"

        assert sim.run(until=sim.process(parent())) == "handled"

    def test_unwaited_failure_is_stored_on_event(self):
        sim = Simulator()

        def child():
            raise RuntimeError("lost")
            yield  # pragma: no cover

        proc = sim.process(child())
        sim.run()
        assert proc.triggered and not proc.ok

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 3

        proc = sim.process(bad())
        sim.run()
        assert proc.triggered and not proc.ok


class TestEvents:
    def test_manual_succeed_delivers_value(self):
        sim = Simulator()
        gate = sim.event()

        def opener():
            yield sim.timeout(us(7))
            gate.succeed("open")

        def waiter():
            value = yield gate
            return (sim.now, value)

        sim.process(opener())
        assert sim.run(until=sim.process(waiter())) == (us(7), "open")

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_failed_event_value_raises(self):
        sim = Simulator()
        event = sim.event()
        event.fail(KeyError("k"))
        sim.run()
        with pytest.raises(KeyError):
            _ = event.value


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()

        def proc():
            yield AllOf(sim, [sim.timeout(us(1)), sim.timeout(us(9)), sim.timeout(us(4))])
            return sim.now

        assert sim.run(until=sim.process(proc())) == us(9)

    def test_any_of_fires_on_fastest(self):
        sim = Simulator()

        def proc():
            yield AnyOf(sim, [sim.timeout(us(8)), sim.timeout(us(2))])
            return sim.now

        assert sim.run(until=sim.process(proc())) == us(2)

    def test_all_of_collects_values(self):
        sim = Simulator()
        a = sim.timeout(1, value="a")
        b = sim.timeout(2, value="b")

        def proc():
            values = yield sim.all_of([a, b])
            return sorted(values.values())

        assert sim.run(until=sim.process(proc())) == ["a", "b"]

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run(until=sim.process(proc())) == 0


class TestInterrupts:
    def test_interrupt_wakes_blocked_process(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(sec(100))
            except Interrupt as intr:
                return ("interrupted", sim.now, intr.cause)

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(us(3))
            proc.interrupt("wake up")

        sim.process(interrupter())
        assert sim.run(until=proc) == ("interrupted", us(3), "wake up")

    def test_interrupting_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            return None
            yield  # pragma: no cover

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for tag, delay in [("a", us(3)), ("b", us(5)), ("c", us(3))]:
                sim.process(worker(tag, delay))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()

    def test_run_until_event_with_starved_heap_raises(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError):
            sim.run(until=never)
