"""Tests for the host storage stacks (SPDK, thrpool, io_uring)."""

import json

import pytest

from repro.hostif import Status, ZoneAction
from repro.sim import us
from repro.stacks import (
    IoUringStack,
    SpdkStack,
    ThreadPoolStack,
    UnsupportedOperation,
)

from .util import append, make_device, mgmt, read, write


def run(sim, event):
    return sim.run(until=event)


class TestSpdkStack:
    def test_write_latency_includes_stack_overhead(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        run(sim, stack.submit(write(0, 1)))  # absorb implicit open
        cpl = run(sim, stack.submit(write(1, 1)))
        # Paper anchor: SPDK 4 KiB write = 11.36 µs (Observation #2).
        assert cpl.latency_ns == 10_790 + 560
        assert abs(cpl.latency_ns - us(11.36)) <= us(0.05)

    def test_append_8k_latency_anchor(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        zone = dev.zones.zones[0]
        run(sim, stack.submit(append(zone.zslba, 2)))
        cpl = run(sim, stack.submit(append(zone.zslba, 2)))
        # Paper anchor: SPDK 8 KiB append = 14.02 µs (Observation #4).
        assert abs(cpl.latency_ns - us(14.02)) <= us(0.05)

    def test_supports_zone_management(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        cpl = run(sim, stack.submit(mgmt(0, ZoneAction.OPEN)))
        assert cpl.ok

    def test_rejects_second_inflight_write_per_zone(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        stack.submit(write(0, 1))
        with pytest.raises(UnsupportedOperation):
            stack.submit(write(1, 1))

    def test_concurrent_appends_allowed(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        zone = dev.zones.zones[0]
        events = [stack.submit(append(zone.zslba, 1)) for _ in range(4)]
        sim.run()
        assert all(e.value.ok for e in events)

    def test_serialization_check_can_be_disabled(self):
        sim, dev = make_device()
        stack = SpdkStack(dev, enforce_write_serialization=False)
        stack.submit(write(0, 1))
        second = stack.submit(write(1, 1))
        sim.run()
        assert second.value.status is Status.ZONE_INVALID_WRITE  # device rejects


class TestIoUringStack:
    def test_none_scheduler_write_latency(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="none")
        run(sim, stack.submit(write(0, 1)))
        cpl = run(sim, stack.submit(write(1, 1)))
        # Paper anchor: kernel/none 4 KiB write = 12.62 µs.
        assert abs(cpl.latency_ns - us(12.62)) <= us(0.05)

    def test_mq_deadline_write_latency(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        run(sim, stack.submit(write(0, 1)))
        cpl = run(sim, stack.submit(write(1, 1)))
        # Paper anchor: mq-deadline 4 KiB write = 14.47 µs (+1.85 µs).
        assert abs(cpl.latency_ns - us(14.47)) <= us(0.05)

    def test_append_unsupported(self):
        sim, dev = make_device()
        stack = IoUringStack(dev)
        with pytest.raises(UnsupportedOperation):
            stack.submit(append(0, 1))

    def test_zone_mgmt_unsupported(self):
        sim, dev = make_device()
        stack = IoUringStack(dev)
        with pytest.raises(UnsupportedOperation):
            stack.submit(mgmt(0, ZoneAction.RESET))

    def test_unknown_scheduler_rejected(self):
        _, dev = make_device()
        with pytest.raises(ValueError):
            IoUringStack(dev, scheduler="bfq")

    def test_reads_pass_through_scheduler(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        run(sim, stack.submit(write(0, 1)))
        cpl = run(sim, stack.submit(read(0, 1)))
        assert cpl.ok


class TestThreadPoolStack:
    def test_write_latency_between_spdk_and_iouring(self):
        """Obs #2 ordering: SPDK < thrpool < io_uring host overhead."""
        latencies = {}
        for name, build in (
            ("spdk", SpdkStack),
            ("thrpool", ThreadPoolStack),
            ("iouring", lambda dev: IoUringStack(dev, scheduler="none")),
        ):
            sim, dev = make_device()
            stack = build(dev)
            run(sim, stack.submit(write(0, 1)))
            latencies[name] = run(sim, stack.submit(write(1, 1))).latency_ns
        assert latencies["spdk"] < latencies["thrpool"] < latencies["iouring"]
        # Calibration anchor: 10.79 µs device write + 1.10 µs pool hop.
        assert latencies["thrpool"] == 10_790 + 1_100

    def test_supports_append_and_zone_management(self):
        sim, dev = make_device()
        stack = ThreadPoolStack(dev)
        zone = dev.zones.zones[0]
        assert run(sim, stack.submit(append(zone.zslba, 2))).ok
        assert run(sim, stack.submit(mgmt(zone.zslba, ZoneAction.FINISH))).ok
        assert run(sim, stack.submit(mgmt(zone.zslba, ZoneAction.RESET))).ok

    def test_worker_count_bounds_device_concurrency(self):
        """N worker threads admit at most N in-flight device commands."""
        def makespan(num_threads, jobs=6):
            sim, dev = make_device()
            stack = ThreadPoolStack(dev, num_threads=num_threads)
            dev.force_fill(0, 512)
            events = [stack.submit(read(i, 1)) for i in range(jobs)]
            sim.run()
            assert all(e.value.ok for e in events)
            return max(e.value.completed_at for e in events)

        serial = makespan(1)
        dual = makespan(2)
        wide = makespan(6)
        # One worker serializes the queue; more workers overlap I/O.
        assert serial > dual > wide

    def test_single_worker_fifo_order(self):
        sim, dev = make_device()
        stack = ThreadPoolStack(dev, num_threads=1)
        dev.force_fill(0, 512)
        events = [stack.submit(read(i, 1)) for i in range(4)]
        sim.run()
        finished = [e.value.completed_at for e in events]
        assert finished == sorted(finished)  # strict submission order
        assert stack.stats.dispatched == 4

    def test_invalid_thread_count_rejected(self):
        _, dev = make_device()
        with pytest.raises(ValueError):
            ThreadPoolStack(dev, num_threads=0)


class TestThreadPoolDeterminism:
    """The new stack must satisfy the exec-engine identity contract."""

    @staticmethod
    def _blob(results):
        from repro.core.experiments.points import serialize_result

        return json.dumps(
            {k: serialize_result(v) for k, v in results.items()},
            sort_keys=True,
        )

    @pytest.mark.parametrize("faults", [None, "chaos"])
    def test_fig2b_byte_identical_at_any_jobs(self, faults):
        from repro.core import ExperimentConfig
        from repro.exec import execute_experiments
        from repro.sim import ms

        config = ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                                  num_zones=16, zones_per_level=3,
                                  stacks=("thrpool",), faults=faults)
        serial, _ = execute_experiments(["fig2b"], config, jobs=1)
        parallel, _ = execute_experiments(["fig2b"], config, jobs=4)
        assert self._blob(serial) == self._blob(parallel)
        rows = serial["fig2b"].rows
        assert rows and all(row["stack"] == "thrpool" for row in rows)
        # The sweep honors --stack thrpool: both ops on both formats.
        assert {row["op"] for row in rows} == {"write", "append"}

    def test_obs2_ordering_in_experiment_sweep(self):
        from repro.core import ExperimentConfig
        from repro.core.observations import check_obs2
        from repro.exec import execute_experiments
        from repro.sim import ms

        config = ExperimentConfig(point_runtime_ns=ms(2), ramp_ns=ms(0.4),
                                  num_zones=16, zones_per_level=3)
        results, _ = execute_experiments(["fig2b"], config, jobs=1)
        check = check_obs2(results["fig2b"])
        assert check.passed, check.details


class TestMqDeadlineMerging:
    def test_queued_contiguous_writes_merge(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        events = [stack.submit(write(i, 1)) for i in range(16)]
        sim.run()
        completions = [e.value for e in events]
        assert all(c.ok for c in completions)
        # The first write dispatches alone; the 15 queued behind it merge.
        assert stack.stats.dispatched < 16
        assert stack.stats.merge_fraction > 0.5
        assert any(c.merged_from > 1 for c in completions)

    def test_merged_write_advances_wp_correctly(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        for i in range(8):
            stack.submit(write(i, 1))
        sim.run()
        assert dev.zones.zones[0].wp == 8

    def test_noncontiguous_writes_do_not_merge(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        zone_size = dev.zones.size_lbas
        # Writes to two different zones, one request each: nothing to merge.
        e1 = stack.submit(write(0, 1))
        e2 = stack.submit(write(zone_size, 1))
        sim.run()
        assert e1.value.ok and e2.value.ok
        assert stack.stats.merged_away == 0

    def test_merge_respects_size_cap(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline", max_merge_bytes=8192)
        events = [stack.submit(write(i, 1)) for i in range(8)]
        sim.run()
        assert all(e.value.ok for e in events)
        # 8 × 4 KiB at a 8 KiB cap: at least 4 dispatches.
        assert stack.stats.dispatched >= 4

    def test_zones_dispatch_independently(self):
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        zone_size = dev.zones.size_lbas
        events = []
        for z in range(3):
            events += [stack.submit(write(z * zone_size + i, 1)) for i in range(4)]
        sim.run()
        assert all(e.value.ok for e in events)
        for z in range(3):
            assert dev.zones.zones[z].wp == z * zone_size + 4

    def test_high_qd_sequential_writes_merge_like_paper(self):
        """Obs #7: at QD16 fio reports 92.35% of writes merged."""
        sim, dev = make_device()
        stack = IoUringStack(dev, scheduler="mq-deadline")
        next_lba = [0]

        def writer():
            while next_lba[0] < 2_000:
                lba = next_lba[0]
                next_lba[0] += 1
                yield stack.submit(write(lba, 1))

        workers = [sim.process(writer()) for _ in range(16)]
        sim.run(until=sim.all_of(workers))
        assert stack.stats.merge_fraction > 0.8
