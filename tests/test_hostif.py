"""Unit tests for the NVMe host-interface layer."""

import pytest

from repro.hostif import (
    LBA_4K,
    LBA_512,
    Command,
    Completion,
    LbaFormat,
    Namespace,
    Opcode,
    QueuePair,
    Status,
    StatusError,
    ZoneAction,
)
from repro.sim import us

from .util import make_device, write


class TestLbaFormat:
    def test_supported_formats(self):
        assert LBA_512.block_size == 512
        assert LBA_4K.block_size == 4096
        assert str(LBA_512) == "512B" and str(LBA_4K) == "4KiB"

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            LbaFormat(1024)


class TestNamespace:
    def test_capacity_conversions(self):
        ns = Namespace(1 << 20, LBA_4K)
        assert ns.capacity_lbas == 256
        assert ns.lbas(8192) == 2
        assert ns.bytes_of(2) == 8192
        assert ns.lba_of_byte(4095) == 0
        assert ns.lba_of_byte(4096) == 1

    def test_misaligned_rejected(self):
        ns = Namespace(1 << 20, LBA_4K)
        with pytest.raises(ValueError):
            ns.lbas(1000)
        with pytest.raises(ValueError):
            ns.lbas(0)
        with pytest.raises(ValueError):
            ns.bytes_of(-1)
        with pytest.raises(ValueError):
            ns.lba_of_byte(1 << 20)

    def test_capacity_must_match_block_size(self):
        with pytest.raises(ValueError):
            Namespace(4097, LBA_4K)
        with pytest.raises(ValueError):
            Namespace(0, LBA_4K)


class TestCommandValidation:
    def test_io_commands_need_positive_nlb(self):
        with pytest.raises(ValueError):
            Command(Opcode.READ, slba=0, nlb=0)
        with pytest.raises(ValueError):
            Command(Opcode.WRITE, slba=-1, nlb=1)

    def test_io_commands_reject_zone_action(self):
        with pytest.raises(ValueError):
            Command(Opcode.WRITE, slba=0, nlb=1, action=ZoneAction.RESET)

    def test_zone_mgmt_needs_action_and_no_nlb(self):
        with pytest.raises(ValueError):
            Command(Opcode.ZONE_MGMT, slba=0)
        with pytest.raises(ValueError):
            Command(Opcode.ZONE_MGMT, slba=0, nlb=1, action=ZoneAction.OPEN)
        Command(Opcode.ZONE_MGMT, slba=0, action=ZoneAction.OPEN)  # ok

    def test_trim_is_an_io_command(self):
        cmd = Command(Opcode.TRIM, slba=0, nlb=8)
        assert cmd.nlb == 8


class TestCompletion:
    def test_latency_requires_submission_stamp(self):
        cmd = Command(Opcode.READ, slba=0, nlb=1)
        cpl = Completion(command=cmd, status=Status.SUCCESS, completed_at=100)
        with pytest.raises(ValueError):
            _ = cpl.latency_ns
        cmd.submitted_at = 40
        assert cpl.latency_ns == 60

    def test_ok_mirrors_status(self):
        cmd = Command(Opcode.READ, slba=0, nlb=1, submitted_at=0)
        assert Completion(cmd, Status.SUCCESS, 1).ok
        assert not Completion(cmd, Status.ZONE_IS_FULL, 1).ok


class TestStatus:
    def test_only_success_is_ok(self):
        assert Status.SUCCESS.ok
        assert not any(s.ok for s in Status if s is not Status.SUCCESS)

    def test_status_error_carries_status(self):
        err = StatusError(Status.ZONE_IS_FULL, "zone 3")
        assert err.status is Status.ZONE_IS_FULL
        assert "zone 3" in str(err)


class TestQueuePair:
    def test_depth_validation(self):
        _, dev = make_device()
        with pytest.raises(ValueError):
            QueuePair(dev, depth=0)

    def test_qd1_serializes_submissions(self):
        sim, dev = make_device()
        qp = QueuePair(dev, depth=1)
        done = []

        def issuer(slba):
            cpl = yield from qp.submit(write(slba, 1))
            done.append((sim.now, cpl.command.slba))

        sim.process(issuer(0))
        sim.process(issuer(1))
        sim.run()
        assert len(done) == 2
        # Second command waited for the first's completion slot.
        assert done[1][0] > done[0][0]
        assert qp.submitted == qp.completed == 2

    def test_higher_depth_allows_overlap(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        qp = QueuePair(dev, depth=4)
        t_done = []

        def issuer():
            yield from qp.submit(
                Command(Opcode.APPEND, slba=zone.zslba, nlb=1))
            t_done.append(sim.now)

        for _ in range(4):
            sim.process(issuer())
        sim.run()
        # All four were in flight together: total elapsed is far below
        # 4x the single-command latency through a QD1 pair.
        assert max(t_done) < 4 * us(16)

    def test_latency_measured_from_sq_entry(self):
        sim, dev = make_device()
        qp = QueuePair(dev, depth=1)
        latencies = []

        def issuer(slba):
            cpl = yield from qp.submit(write(slba, 1))
            latencies.append(cpl.latency_ns)

        sim.process(issuer(0))
        sim.process(issuer(1))
        sim.run()
        # The queued command's latency excludes its QD wait (§III-B
        # measures submission-queue entry to completion).
        assert latencies[1] < 1.5 * latencies[0]
