"""NVMe ZNS spec-conformance gate (tentpole suite, DESIGN.md §14).

Runs the :mod:`repro.hostif.conformance` table against both device
models. Every (command × zone-state) arc — including READ_ONLY/OFFLINE
— plus boundary and resource-limit cases is parametrized individually
so a regression names the exact violated arc. The conventional device
runs the same suite with zone arcs explicitly *skipped* (reported, not
dropped) and the namespace-addressing cases enforced.
"""

import pytest

from repro.conv import ConvDevice
from repro.hostif.conformance import ConformanceDriver
from repro.sim import Simulator
from repro.zns import ZnsDevice

from .test_conv_device import conv_profile
from .util import quiet_profile


def zns_factory():
    sim = Simulator()
    # Tight limits so the max-open/max-active cases stay cheap while
    # still needing the implicit-close eviction path.
    profile = quiet_profile(max_open_zones=3, max_active_zones=4)
    return sim, ZnsDevice(sim, profile)


def conv_factory():
    sim = Simulator()
    return sim, ConvDevice(sim, conv_profile())


_DRIVER = ConformanceDriver(zns_factory)
_CASE_NAMES = _DRIVER.case_names()


def test_suite_covers_every_command_state_arc():
    """The table must span all 7 states for each command family."""
    for op in ("open", "close", "finish", "reset", "write", "append", "read"):
        arcs = [n for n in _CASE_NAMES if n.startswith(f"{op}.from_")]
        assert len(arcs) == 7, f"{op}: incomplete state coverage: {arcs}"
    assert any("read_only" in n for n in _CASE_NAMES)
    assert any("offline" in n for n in _CASE_NAMES)
    assert any(n.startswith("limits.") for n in _CASE_NAMES)


@pytest.mark.parametrize("name", _CASE_NAMES)
def test_zns_conformance(name):
    result = ConformanceDriver(zns_factory).run_case(name)
    assert result.outcome == "pass", result.detail


def test_zns_full_report_is_clean():
    report = ConformanceDriver(zns_factory).run_all()
    assert not report.failures, report.summary()
    assert not report.skipped, report.summary()


def test_conv_runs_namespace_cases_and_skips_zone_arcs():
    report = ConformanceDriver(conv_factory).run_all()
    assert not report.failures, report.summary()
    by_name = {r.name: r for r in report.results}
    # Namespace-addressing cases apply to any device and must pass.
    for name in (
        "read.across_namespace_end[any-namespace]",
        "read.start_beyond_namespace_end[any-namespace]",
        "write.across_namespace_end[any-namespace]",
        "write.start_beyond_namespace_end[any-namespace]",
    ):
        assert by_name[name].outcome == "pass", by_name[name].detail
    # Every zone arc is an *explicit* skip: reported with a reason, so
    # a future zoned-conv hybrid cannot silently lose coverage.
    zone_cases = [r for r in report.results if r.requires_zones]
    assert zone_cases
    assert all(r.outcome == "skip" for r in zone_cases)
    assert all("zone" in r.detail for r in zone_cases)
