"""Unit tests for observation predicates on synthetic experiment results.

The integration suite checks the predicates against real simulation
output; here we verify the predicate *logic* — both accepting paper-like
numbers and rejecting counterfactual ones — without running a simulator.
"""

from repro.core import ExperimentResult
from repro.core.observations import (
    check_all,
    check_obs3,
    check_obs5,
    check_obs6,
    check_obs7,
    check_obs8,
    check_obs11,
    check_obs12,
    check_obs13,
)


def fig3_like(write4=85, write8=85, append4=66, append8=69):
    result = ExperimentResult("fig3", "t", ["op", "request_kib", "kiops", "bandwidth_mibs"])
    sizes = {4: (write4, append4), 8: (write8, append8), 32: (35, 35), 128: (9, 9)}
    for op_index, op in enumerate(("write", "append")):
        series = []
        for kib, vals in sizes.items():
            kiops = vals[op_index]
            result.add_row(op=op, request_kib=kib, kiops=kiops,
                           bandwidth_mibs=kiops * kib / 1.024)
            series.append((kib, kiops))
        result.series[op] = series
    return result


def fig4_like(read=424, write=293, append=132):
    result = ExperimentResult("fig4a", "t", ["op", "qd", "kiops"])
    result.series = {
        "read": [(1, 14), (128, read)],
        "write": [(1, 69), (32, write)],
        "append": [(1, 64), (4, append)],
    }
    return result


class TestObs3:
    def test_paper_numbers_pass(self):
        assert check_obs3(fig3_like()).passed

    def test_flat_femu_like_numbers_fail(self):
        # FEMU-like: identical IOPS regardless of size/op ordering.
        assert not check_obs3(fig3_like(write4=50, write8=80, append4=66, append8=60)).passed


class TestObs5to7:
    def test_paper_numbers_pass(self):
        fig4a, fig4b = fig4_like(), fig4_like(read=160, write=186, append=132)
        assert check_obs5(fig4a, fig4b).passed
        assert check_obs6(fig4a, fig4b).passed
        assert check_obs7(fig4a).passed

    def test_inter_beating_intra_fails_obs5(self):
        fig4a = fig4_like(read=100, write=100)
        fig4b = fig4_like(read=400, write=300)
        assert not check_obs5(fig4a, fig4b).passed

    def test_divergent_append_plateaus_fail_obs6(self):
        assert not check_obs6(fig4_like(append=132), fig4_like(append=186)).passed

    def test_wrong_ordering_fails_obs7(self):
        assert not check_obs7(fig4_like(read=100, write=300, append=200)).passed


class TestObs8:
    def make(self, plateau=1128, small_cap=726):
        result = ExperimentResult("fig4c", "t", ["mode"])
        for key in ("append-8k", "write-8k", "append-16k", "write-16k"):
            result.series[key] = [(1, plateau * 0.6), (2, plateau), (4, plateau)]
        result.series["write-4k"] = [(1, 345), (4, small_cap), (14, small_cap)]
        return result

    def test_paper_numbers_pass(self):
        assert check_obs8(self.make()).passed

    def test_missing_device_limit_fails(self):
        assert not check_obs8(self.make(plateau=700)).passed

    def test_small_requests_reaching_limit_fails(self):
        assert not check_obs8(self.make(small_cap=1128)).passed


class TestObs11to13:
    def fig6_like(self, zns_cov=0.02, conv_cov=0.9, zns_read=1.25, conv_read=0.4):
        result = ExperimentResult("fig6", "t", ["device", "metric", "cov", "mean_mibs"])
        result.add_row(device="zns", metric="write", cov=zns_cov, mean_mibs=1128)
        result.add_row(device="conv", metric="write", cov=conv_cov, mean_mibs=390)
        result.add_row(device="zns", metric="read", cov=0.9, mean_mibs=zns_read)
        result.add_row(device="conv", metric="read", cov=1.5, mean_mibs=conv_read)
        return result

    def fig7_like(self, none=17.9, read=28.0, write=32.0, append=31.5,
                  io_write=11.4, io_append=15.6):
        result = ExperimentResult(
            "fig7", "t", ["concurrent_op", "reset_p95_ms", "io_mean_latency_us"])
        result.add_row(concurrent_op="none", reset_p95_ms=none, io_mean_latency_us="-")
        result.add_row(concurrent_op="read", reset_p95_ms=read, io_mean_latency_us=80.0)
        result.add_row(concurrent_op="write", reset_p95_ms=write, io_mean_latency_us=io_write)
        result.add_row(concurrent_op="append", reset_p95_ms=append, io_mean_latency_us=io_append)
        return result

    def test_obs11_paper_numbers_pass(self):
        assert check_obs11(self.fig6_like()).passed

    def test_obs11_unstable_zns_fails(self):
        assert not check_obs11(self.fig6_like(zns_cov=0.8)).passed

    def test_obs11_conv_reads_winning_fails(self):
        assert not check_obs11(self.fig6_like(zns_read=0.4, conv_read=1.25)).passed

    def test_obs12_unperturbed_io_passes(self):
        assert check_obs12(self.fig7_like()).passed

    def test_obs12_perturbed_io_fails(self):
        assert not check_obs12(self.fig7_like(io_write=20.0)).passed

    def test_obs13_inflated_resets_pass(self):
        assert check_obs13(self.fig7_like()).passed

    def test_obs13_uninflated_resets_fail(self):
        assert not check_obs13(self.fig7_like(read=18, write=18.5, append=18)).passed


class TestCheckAll:
    def test_runs_only_available_checks(self):
        fig3 = fig3_like()
        checks = check_all({"fig3": fig3})
        assert [c.obs_id for c in checks] == [3]

    def test_empty_results(self):
        assert check_all({}) == []
