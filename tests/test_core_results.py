"""Tests for experiment result containers and reporting."""

import pytest

from repro.core import ExperimentResult, render_table, table1, table2
from repro.core.observations import ObservationCheck, OBSERVATION_SUMMARIES
from repro.core.recommendations import RECOMMENDATIONS, validate


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["name", "value"],
            [{"name": "a", "value": 1.5}, {"name": "bb", "value": 1234.5}],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1,234" in lines[3] or "1,235" in lines[3]

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_float_formatting_tiers(self):
        text = render_table(["v"], [{"v": 0.123}, {"v": 12.3}, {"v": 12345.0}])
        assert "0.12" in text and "12.3" in text and "12,345" in text


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("figX", "demo", ["a", "b"])
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        return result

    def test_find_and_value(self):
        result = self.make()
        assert result.find(a=2)["b"] == "y"
        assert result.value("b", a=1) == "x"
        assert result.find(a=3) is None
        with pytest.raises(KeyError):
            result.value("b", a=3)

    def test_column(self):
        assert self.make().column("a") == [1, 2]

    def test_table_includes_id_and_notes(self):
        result = self.make()
        result.notes.append("hello note")
        text = result.table()
        assert "[figX]" in text and "hello note" in text


class TestObservationCheck:
    def test_str_shows_status(self):
        check = ObservationCheck(4, True, "details here")
        assert "REPRODUCED" in str(check)
        assert "details here" in str(check)
        assert check.summary == OBSERVATION_SUMMARIES[4]

    def test_failed_status(self):
        assert "NOT REPRODUCED" in str(ObservationCheck(4, False, "d"))


class TestRecommendations:
    def test_five_recommendations(self):
        assert len(RECOMMENDATIONS) == 5
        assert {r.rec_id for r in RECOMMENDATIONS} == {1, 2, 3, 4, 5}

    def test_supporting_observations_cover_all_thirteen(self):
        covered = set()
        for rec in RECOMMENDATIONS:
            covered |= set(rec.supported_by)
        assert covered == set(range(1, 14))

    def test_validation_requires_all_supporting_obs(self):
        checks = [ObservationCheck(i, i != 4, "") for i in range(1, 14)]
        pairs = dict((rec.rec_id, ok) for rec, ok in validate(checks))
        assert pairs[1] is False  # rec 1 depends on obs 4
        assert pairs[2] is True
        assert pairs[5] is True

    def test_table1_renders(self):
        checks = [ObservationCheck(i, True, "") for i in range(1, 14)]
        text = table1(checks)
        assert "Append vs. write" in text
        assert "yes" in text


class TestTable2:
    def test_environment_table_mentions_zn540_layout(self):
        text = table2()
        assert "1,077" in text and "904" in text and "14" in text
