"""Tenant/session tier: partitions, SLO accounting, fleet determinism."""

from __future__ import annotations

import json

import pytest

from repro.apps import LsmConfig, LsmWorkload, ZoneFs
from repro.core.experiments.common import ExperimentConfig
from repro.core.experiments.fleet import run_fig7_fleet
from repro.core.experiments.points import serialize_result
from repro.exec import execute_experiments
from repro.hostif import Command, Opcode, Status, ZoneAction
from repro.sim.engine import ms, us
from repro.stacks.spdk import SpdkStack
from repro.tenancy import (
    HostSession,
    ResetStorm,
    Tenant,
    TenantScheduler,
    partition_zones,
)
from repro.workload.job import JobSpec
from repro.workload.runner import JobRunner
from repro.zns import ZoneState

from .util import make_device, quiet_profile


def fleet_config(**extra) -> ExperimentConfig:
    return ExperimentConfig(fleet_runtime_ns=ms(12), **extra)


def blob(result) -> str:
    return json.dumps(serialize_result(result), sort_keys=True)


class TestPartitionZones:
    def test_consecutive_disjoint(self):
        parts = partition_zones(10, [3, 3, 4])
        assert parts == [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_start_offset_and_overflow(self):
        assert partition_zones(8, [2], start=6) == [[6, 7]]
        with pytest.raises(ValueError):
            partition_zones(8, [5, 4])
        with pytest.raises(ValueError):
            partition_zones(8, [0])


class TestTenant:
    def test_submit_stamps_label(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "a", zones=[0, 1])
        command = Command(Opcode.APPEND, slba=0, nlb=1)
        completion = sim.run(until=tenant.submit(command))
        assert completion.ok
        assert command.tenant == "a"

    def test_session_pays_stack_overhead(self):
        # The session's whole point: every submit goes through a host
        # stack, so latency exceeds the bare-device submit path.
        sim, dev = make_device()
        bare = sim.run(until=dev.submit(Command(Opcode.APPEND, slba=0, nlb=1)))
        sim2, dev2 = make_device()
        session = HostSession(dev2)
        stacked = sim2.run(
            until=session.submit(Command(Opcode.APPEND, slba=0, nlb=1))
        )
        assert stacked.latency_ns > bare.latency_ns

    def test_slo_violation_accounting(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "a", zones=[0], slo_p99_ns=1)  # 1 ns: all violate
        for _ in range(3):
            completion = sim.run(
                until=tenant.submit(Command(Opcode.APPEND, slba=0, nlb=1))
            )
            tenant.record(completion, 4096)
        assert tenant.ops == 3 and tenant.slo_violations == 3
        assert tenant.slo_met is False
        tenant.slo_p99_ns = int(tenant.p99_ns) + 1
        assert tenant.slo_met is True

    def test_error_zone_attribution(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "a", zones=[0])
        zone1 = dev.zones.zones[1]
        dev.zones.force_state(zone1, ZoneState.OFFLINE)
        completion = sim.run(
            until=tenant.submit(
                Command(Opcode.ZONE_MGMT, slba=zone1.zslba,
                        action=ZoneAction.RESET)
            )
        )
        assert not completion.ok
        tenant.record_error(completion.status, zone1.zslba)
        assert list(tenant.errors_by_zone) == [1]

    def test_rng_streams_are_tenant_private(self):
        sim, dev = make_device()
        a = Tenant(dev, "a", index=0, seed=7)
        b = Tenant(dev, "b", index=1, seed=7)
        assert list(a.rng("x").integers(0, 1 << 30, 4)) != list(
            b.rng("x").integers(0, 1 << 30, 4)
        )
        # Same tenant, same stream name -> reproducible draws.
        assert list(a.rng("x").integers(0, 1 << 30, 4)) == list(
            a.rng("x").integers(0, 1 << 30, 4)
        )

    def test_duplicate_zones_rejected(self):
        sim, dev = make_device()
        with pytest.raises(ValueError):
            Tenant(dev, "a", zones=[0, 0])
        with pytest.raises(ValueError):
            Tenant(dev, "")


class TestTenantScheduler:
    def test_overlapping_partitions_rejected(self):
        sim, dev = make_device()
        scheduler = TenantScheduler(dev)
        scheduler.add_tenant(Tenant(dev, "a", zones=[0, 1]))
        with pytest.raises(ValueError, match="zone 1"):
            scheduler.add_tenant(Tenant(dev, "b", zones=[1, 2]))
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.add_tenant(Tenant(dev, "a", zones=[3]))

    def test_errors_resolved_to_owning_tenant(self):
        sim, dev = make_device()
        scheduler = TenantScheduler(dev)
        victim = Tenant(dev, "victim", zones=[0])
        owner = Tenant(dev, "owner", zones=[1])
        scheduler.add_tenant(victim)
        scheduler.add_tenant(owner)
        # victim's command failed inside owner's zone 1.
        zone1 = dev.zones.zones[1]
        victim.record_error(Status.ZONE_IS_READ_ONLY, zone1.zslba)
        job = JobSpec(op="append", block_size=4096, runtime_ns=us(30),
                      zones=[0])
        scheduler.add_workload(victim, JobRunner(tenant=victim, job=job))
        rows = scheduler.run()
        assert rows[0].tenant == "victim"
        assert rows[0].errors_by_owner == {"owner": 1}

    def test_job_runner_in_tenant_context(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "t0", zones=[0, 1], slo_p99_ns=1)
        job = JobSpec(op="append", block_size=4096, runtime_ns=us(100),
                      zones=[0, 1])
        runner = JobRunner(tenant=tenant, job=job)
        result = runner.run()
        # Completions feed both the job result and the tenant accounting.
        assert result.ops > 0
        assert tenant.ops == result.ops
        assert tenant.slo_violations == tenant.ops  # 1 ns SLO


class TestResetStorm:
    def test_force_mode_resets_and_records(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "storm", zones=[0, 1])
        storm = ResetStorm(tenant, until_ns=ms(2))
        sim.run(until=storm.start())
        assert tenant.resets > 0
        assert tenant.reset_latency.count == tenant.resets

    def test_write_mode_issues_real_appends(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "storm", zones=[0, 1, 2])
        storm = ResetStorm(tenant, until_ns=ms(4), refill="write")
        sim.run(until=storm.start())
        # Real refill traffic reaches the flash backend (force_fill
        # would leave the program counter untouched).
        assert dev.backend.counters.pages_programmed > 0
        assert tenant.resets > 0


class TestRetirementUnderTenancy:
    """Wear retirement mid-run lands in the owning tenant's accounting
    (DESIGN.md §17) and retired zones drop out of the reclaim loop."""

    def _retiring_plan(self):
        from repro.faults import FaultPlan

        # Every page program fails once; two failures retire the zone.
        return FaultPlan(name="retiring", program_fail_prob=1.0,
                         program_retry_max=1, retire_read_only_after=2,
                         retire_offline_after=4)

    def test_mid_run_retirement_attributed_to_tenant(self):
        sim, dev = make_device(faults=self._retiring_plan())
        scheduler = TenantScheduler(dev)
        tenant = Tenant(dev, "log", zones=[0, 1], seed=7)
        scheduler.add_workload(
            tenant, ResetStorm(tenant, until_ns=ms(8), refill="write"))
        results = scheduler.run()

        retired = [z for z in dev.zones.zones[:2]
                   if z.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE)]
        assert retired, "program failures should have retired a zone"
        row = results[0]
        assert sum(row.errors.values()) > 0
        # Per-zone attribution names the retired zone, and the owner
        # roll-up resolves it back to this tenant.
        assert any(z.index in row.errors_by_zone for z in retired)
        assert row.errors_by_owner.get("log", 0) > 0

    def test_offline_zone_never_reissued(self):
        sim, dev = make_device(faults=self._retiring_plan())
        dev.inject_zone_failure(1, ZoneState.OFFLINE)
        scheduler = TenantScheduler(dev)
        tenant = Tenant(dev, "log", zones=[0, 1], seed=7)
        scheduler.add_workload(
            tenant, ResetStorm(tenant, until_ns=ms(6), refill="write"))
        results = scheduler.run()
        # The storm worked zone 0 but never touched the OFFLINE zone —
        # no appends, no resets, so no errors attributed to it.
        assert 1 not in results[0].errors_by_zone
        assert dev.zones.zones[1].state is ZoneState.OFFLINE


class TestLsmWorkload:
    def lsm_once(self, seed: int, faults=None):
        from repro.faults import resolve

        profile = quiet_profile(num_zones=8, zone_size_bytes=1024 * 1024,
                                zone_cap_bytes=768 * 1024)
        sim, dev = make_device(
            profile=profile,
            faults=resolve(faults) if faults else None,
        )
        tenant = Tenant(dev, "t", zones=list(range(8)), seed=seed,
                        slo_p99_ns=us(500))
        config = LsmConfig(sst_bytes=128 * 1024, append_chunk=32 * 1024,
                           flush_interval_ns=us(300), readers=2,
                           read_interval_ns=us(30))
        workload = LsmWorkload(tenant, ms(20), config)
        sim.run(until=workload.start())
        return (
            tenant.ops, tenant.bytes, tenant.latency.percentile_ns(99),
            tenant.slo_violations, tenant.resets, workload.flushes,
            workload.compactions, workload.reads, workload.stale_reads,
            sorted((s.value, c) for s, c in tenant.errors.items()),
        )

    def test_flush_compact_serve(self):
        ops, nbytes, p99, _, resets, flushes, compactions, reads, _, _ = (
            self.lsm_once(seed=3)
        )
        assert flushes > 5 and reads > 50 and ops > 0
        assert compactions > 0 and resets > 0  # reclaim loop ran

    def test_deterministic_across_runs(self):
        assert self.lsm_once(seed=5) == self.lsm_once(seed=5)
        assert self.lsm_once(seed=5) != self.lsm_once(seed=6)

    def test_deterministic_under_chaos_faults(self):
        assert (self.lsm_once(seed=5, faults="chaos")
                == self.lsm_once(seed=5, faults="chaos"))


class TestFig7Fleet:
    def test_reports_per_tenant_slo_and_inflation(self):
        result = run_fig7_fleet(fleet_config())
        modes = {row["mode"] for row in result.rows}
        assert modes == {"baseline", "reset-storm"}
        serving = [r for r in result.rows if r["workload"] == "lsm"]
        assert len(serving) == 2 * 3  # both modes x fleet_tenants
        reclaim = [r for r in result.rows if r["tenant"] == "reclaim"]
        assert len(reclaim) == 1 and reclaim[0]["resets"] > 0
        # The headline effect: victim read p99 inflated by co-location.
        assert result.meta["read_p99_inflation"] > 1.1
        violations = result.meta["slo_violations"]
        assert violations["reset-storm"] > violations["baseline"]

    def test_tenant_count_is_a_config_knob(self):
        result = run_fig7_fleet(fleet_config(fleet_tenants=2))
        baseline = [r for r in result.rows if r["mode"] == "baseline"]
        assert [r["tenant"] for r in baseline] == ["serve0", "serve1"]

    def test_bit_identical_at_any_jobs(self):
        config = fleet_config()
        serial, _ = execute_experiments(["fig7_fleet"], config, jobs=1)
        parallel, _ = execute_experiments(["fig7_fleet"], config, jobs=2)
        assert blob(serial["fig7_fleet"]) == blob(parallel["fig7_fleet"])

    def test_bit_identical_under_chaos_faults(self):
        config = fleet_config(faults="chaos", seed=11)
        serial, _ = execute_experiments(["fig7_fleet"], config, jobs=1)
        parallel, _ = execute_experiments(["fig7_fleet"], config, jobs=2)
        assert blob(serial["fig7_fleet"]) == blob(parallel["fig7_fleet"])


class TestAppsStackRouting:
    def test_zonefs_default_pays_stack_overhead(self):
        # stack=None used to submit straight to the device, skipping
        # host-stack overhead; now it builds a private SPDK-like stack.
        sim, dev = make_device()
        fs = ZoneFs(dev)
        stacked = fs.file(0).append(4096)
        sim2, dev2 = make_device()
        bare = sim2.run(
            until=dev2.submit(Command(Opcode.APPEND, slba=0, nlb=1))
        )
        assert stacked.latency_ns > bare.latency_ns

    def test_zonefs_routes_through_tenant_session(self):
        sim, dev = make_device()
        tenant = Tenant(dev, "fs-tenant", zones=[0])
        fs = ZoneFs(dev, stack=tenant)
        event = fs.file(0).append_async(4096)
        completion = sim.run(until=event)
        assert completion.ok
        assert completion.command.tenant == "fs-tenant"

    def test_zraid_default_pays_stack_overhead(self):
        from repro.apps import StripedZoneArray

        sim, dev = make_device()
        array = StripedZoneArray(dev, [0, 1], stripe_unit=4096)
        _, completions = array.append(8192)
        sim2, dev2 = make_device()
        explicit = StripedZoneArray(dev2, [0, 1], stripe_unit=4096,
                                    stack=SpdkStack(dev2))
        _, explicit_completions = explicit.append(8192)
        assert ([c.latency_ns for c in completions]
                == [c.latency_ns for c in explicit_completions])

    def test_zonefs_async_variants_inside_running_sim(self):
        # append/pread/truncate events usable from a workload process.
        sim, dev = make_device()
        fs = ZoneFs(dev)
        log = []

        def proc():
            completion = yield fs.file(0).append_async(8192)
            log.append(("append", completion.ok))
            completion = yield fs.file(0).pread_async(0, 4096)
            log.append(("pread", completion.ok))
            completion = yield fs.file(0).truncate_async(0)
            log.append(("truncate", completion.ok))

        sim.run(until=sim.process(proc()))
        assert log == [("append", True), ("pread", True), ("truncate", True)]
