"""Tests for the workload engine (jobs, patterns, pacing, runner)."""

import math

import pytest

from repro.sim import Simulator, ms, sec, us
from repro.stacks import IoUringStack, SpdkStack
from repro.workload import (
    BACKOFF,
    IoKind,
    JobRunner,
    JobSpec,
    LatencyStats,
    Pattern,
    RatePacer,
    ResetSweep,
    TimeSeries,
    ZoneAppendCursor,
    ZoneWriteCursor,
)

from .util import make_device

KIB = 1024


class TestJobSpec:
    def test_defaults_and_name(self):
        job = JobSpec(op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(10))
        assert job.name == "write-4k-qd1"
        assert job.iodepth == 1 and job.numjobs == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(op="erase", block_size=4 * KIB, runtime_ns=ms(1))
        with pytest.raises(ValueError):
            JobSpec(op=IoKind.READ, block_size=1000, runtime_ns=ms(1))
        with pytest.raises(ValueError):
            JobSpec(op=IoKind.READ, block_size=4 * KIB, runtime_ns=0)
        with pytest.raises(ValueError):
            JobSpec(op=IoKind.READ, block_size=4 * KIB, runtime_ns=ms(1), ramp_ns=ms(1))
        with pytest.raises(ValueError):
            JobSpec(op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=ms(1),
                    pattern=Pattern.RANDOM)

    def test_zone_per_thread_split(self):
        job = JobSpec(op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(1),
                      numjobs=3, zones=[5, 6, 7], zone_per_thread=True)
        assert job.zones_for_thread(0) == [5]
        assert job.zones_for_thread(2) == [7]

    def test_zone_per_thread_needs_enough_zones(self):
        with pytest.raises(ValueError):
            JobSpec(op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(1),
                    numjobs=3, zones=[1, 2], zone_per_thread=True)


class TestStats:
    def test_latency_percentiles(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.record(v * 1000)
        assert stats.count == 100
        assert stats.mean_us == pytest.approx(50.5)
        assert stats.percentile_us(95) == pytest.approx(95.05, rel=0.01)
        assert stats.min_ns == 1000 and stats.max_ns == 100_000

    def test_latency_empty_degrades_to_nan(self):
        # Zero samples is legitimate under fault injection (an aggressive
        # profile can abort every command), so summaries degrade to NaN
        # instead of raising; min/max stay strict.
        empty = LatencyStats()
        assert math.isnan(empty.mean_ns)
        assert math.isnan(empty.percentile_ns(95))
        with pytest.raises(ValueError):
            empty.min_ns

    def test_latency_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.record(10)
        b.record(20)
        a.merge(b)
        assert a.count == 2

    def test_timeseries_bandwidth(self):
        ts = TimeSeries(interval_ns=ms(100))
        for i in range(10):
            ts.record(ms(100) * i + 1, 1024 * 1024)  # 1 MiB per 100 ms
        series = ts.bandwidth_series()
        assert len(series) == 10
        assert all(v == pytest.approx(10.0) for _, v in series)  # 10 MiB/s

    def test_timeseries_gaps_are_zero(self):
        ts = TimeSeries(interval_ns=ms(10))
        ts.record(ms(5), 1)
        ts.record(ms(35), 1)
        values = [v for _, v in ts.bandwidth_series()]
        assert len(values) == 4
        assert values[1] == 0.0 and values[2] == 0.0

    def test_record_many_rejects_nan_and_inf_atomically(self):
        import numpy as np

        stats = LatencyStats()
        stats.record(500)
        for batch in ([100.0, float("nan"), 200.0],
                      [100.0, float("inf")],
                      np.array([1.0, -np.inf])):
            with pytest.raises(ValueError, match="non-finite"):
                stats.record_many(batch)
            # The failed batch must not leave partial samples behind.
            assert stats.count == 1 and stats.max_ns == 500

    def test_record_many_rounds_floats(self):
        stats = LatencyStats()
        stats.record_many([10.6, 10.4, 9.5])
        # Round half-to-even, never truncate: 10.6 -> 11, 9.5 -> 10.
        assert stats.count == 3
        assert stats.max_ns == 11 and stats.min_ns == 10

    def test_record_many_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="non-numeric"):
            LatencyStats().record_many(["fast", "slow"])


class TestRatePacer:
    def test_paces_to_configured_rate(self):
        sim = Simulator()
        pacer = RatePacer(sim, rate_bps=1_000_000)  # 1 MB/s
        # Without the clock advancing, the i-th reservation starts i*0.1 s
        # in the future: delays are 0, 0.1, ..., 0.9 s.
        delays = [pacer.delay_for(100_000) for _ in range(10)]
        assert delays == [round(i * 0.1 * sec(1)) for i in range(10)]

    def test_paced_loop_hits_target_rate(self):
        sim = Simulator()
        pacer = RatePacer(sim, rate_bps=10_000_000)  # 10 MB/s
        sent = [0]

        def producer():
            while sim.now < sec(1):
                delay = pacer.delay_for(100_000)
                if delay:
                    yield sim.timeout(delay)
                sent[0] += 100_000

        sim.run(until=sim.process(producer()))
        assert sent[0] == pytest.approx(10_000_000, rel=0.02)

    def test_no_delay_when_under_rate(self):
        sim = Simulator()
        sim.timeout(sec(1))
        sim.run()
        pacer = RatePacer(sim, rate_bps=1_000_000)
        assert pacer.delay_for(1000) == 0


class TestCursors:
    def test_write_cursor_follows_wp(self):
        sim, dev = make_device()
        cursor = ZoneWriteCursor(dev, zones=[0], nlb=4)
        cmd, _ = cursor.next_target()
        assert cmd.slba == 0 and cmd.nlb == 4
        cmd, _ = cursor.next_target()
        assert cmd.slba == 4

    def test_write_cursor_moves_to_next_zone_when_full(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        cap = zone.cap_lbas
        cursor = ZoneWriteCursor(dev, zones=[0, 1], nlb=cap)
        c1, _ = cursor.next_target()
        assert c1.slba == zone.zslba
        dev.zones.admit_write(zone, c1.slba, c1.nlb)  # simulate completion
        c2, _ = cursor.next_target()
        assert c2.slba == dev.zones.zones[1].zslba

    def test_write_cursor_requests_reset_when_all_full(self):
        sim, dev = make_device()
        cap = dev.zones.zones[0].cap_lbas
        for z in (0, 1):
            dev.force_fill(z, cap)
        cursor = ZoneWriteCursor(dev, zones=[0, 1], nlb=4)
        cmd, reset_zone = cursor.next_target()
        assert cmd is None and reset_zone in (0, 1)

    def test_append_cursor_reserves_capacity(self):
        sim, dev = make_device()
        zone = dev.zones.zones[0]
        cursor = ZoneAppendCursor(dev, zones=[0], nlb=zone.cap_lbas // 2)
        c1, _ = cursor.next_target()
        c2, _ = cursor.next_target()
        assert c1 is not None and c2 is not None
        c3, reset_zone = cursor.next_target()
        # Both halves reserved: a third append must not be issued, but the
        # condition is transient (in-flight appends will release it), so
        # the cursor signals back-off rather than exhaustion.
        assert c3 is BACKOFF and reset_zone is None


class TestJobRunner:
    def test_sequential_write_job_measures_iops(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        job = JobSpec(op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(5),
                      ramp_ns=ms(1), zones=[0])
        result = JobRunner(dev, stack, job).run()
        assert result.ops > 100
        # QD1 SPDK writes at ~11.36 us -> ~88 KIOPS.
        assert result.kiops == pytest.approx(88, rel=0.08)
        assert result.latency.mean_us == pytest.approx(11.36, rel=0.05)

    def test_qd_scaling_append(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        r1 = JobRunner(dev, stack, JobSpec(
            op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=ms(5),
            zones=[0], iodepth=1)).run()
        sim2, dev2 = make_device()
        r4 = JobRunner(dev2, SpdkStack(dev2), JobSpec(
            op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=ms(5),
            zones=[0], iodepth=4)).run()
        assert r4.kiops > 1.5 * r1.kiops
        assert r4.kiops == pytest.approx(132, rel=0.1)  # Obs #6 cap

    def test_rate_limited_write_job(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        rate = 50 * 1024 * 1024  # 50 MiB/s
        job = JobSpec(op=IoKind.WRITE, block_size=16 * KIB, runtime_ns=ms(50),
                      zones=[0, 1], rate_limit_bps=rate)
        result = JobRunner(dev, stack, job).run()
        assert result.bandwidth_mibs == pytest.approx(50, rel=0.1)

    def test_write_job_resets_zones_when_wrapping(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        # Tiny zone set + long runtime forces wrap-around resets.
        job = JobSpec(op=IoKind.WRITE, block_size=64 * KIB, runtime_ns=ms(80),
                      zones=[0, 1])
        result = JobRunner(dev, stack, job).run()
        assert result.resets >= 1
        assert result.reset_latency.count >= 1

    def test_random_read_job(self):
        sim, dev = make_device()
        stack = SpdkStack(dev)
        for z in (0, 1):
            dev.force_fill(z, dev.zones.zones[z].cap_lbas)
        job = JobSpec(op=IoKind.READ, block_size=4 * KIB, runtime_ns=ms(5),
                      pattern=Pattern.RANDOM, zones=[0, 1], iodepth=8)
        result = JobRunner(dev, stack, job).run()
        assert result.ops > 100
        assert not result.errors

    def test_runner_cannot_start_twice(self):
        sim, dev = make_device()
        runner = JobRunner(dev, SpdkStack(dev), JobSpec(
            op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(1), zones=[0]))
        runner.run()
        with pytest.raises(RuntimeError):
            runner.start()

    def test_job_without_target_rejected(self):
        sim, dev = make_device()
        runner = JobRunner(dev, SpdkStack(dev), JobSpec(
            op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(1)))
        with pytest.raises(ValueError):
            runner.run()

    def test_mq_deadline_intra_zone_write_merging(self):
        """Obs #7 mechanism: QD writes through mq-deadline merge and
        beat the per-command IOPS cap."""
        from .util import quiet_profile

        # Zones large enough that the 10 ms run never wraps (no resets).
        profile = quiet_profile(
            num_zones=8, zone_size_bytes=64 * 1024 * KIB,
            zone_cap_bytes=48 * 1024 * KIB,
        )
        sim, dev = make_device(profile)
        stack = IoUringStack(dev, scheduler="mq-deadline")
        job = JobSpec(op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(10),
                      zones=[0], iodepth=32)
        result = JobRunner(dev, stack, job).run()
        assert stack.stats.merge_fraction > 0.5
        assert result.kiops > 186  # above the unmerged per-command cap


class TestResetSweep:
    def test_sweep_resets_and_records(self):
        sim, dev = make_device()
        for z in range(4):
            dev.force_fill(z, dev.zones.zones[z].cap_lbas // 2)
        sweep = ResetSweep(dev, range(4))
        latencies = sweep.run()
        assert latencies.count == 4
        assert all(
            z.state.value == "empty" for z in dev.zones.zones[:4]
        )

    def test_sweep_records_failures(self):
        # A reset that fails (e.g. the zone was retired OFFLINE by fault
        # injection) is recorded in ``errors`` and the sweep continues —
        # raising would abort a whole occupancy sweep over one dead zone.
        sim, dev = make_device()
        dev.force_fill(1, dev.zones.zones[1].cap_lbas // 2)
        dev.zones.zones[0].state = __import__(
            "repro.zns", fromlist=["ZoneState"]
        ).ZoneState.OFFLINE
        sweep = ResetSweep(dev, [0, 1])
        latencies = sweep.run()
        assert latencies.count == 1  # zone 1 still reset fine
        assert sum(sweep.errors.values()) == 1
        # Per-zone attribution: the failure names zone 0, and only it —
        # a multi-tenant SLO report resolves the zone to its owner.
        assert list(sweep.errors_by_zone) == [0]
        assert sum(sweep.errors_by_zone[0].values()) == 1


class TestRunnerResetFailure:
    """Dead (retired) zones and failed resets in the runner.

    The write/append cursors skip READ_ONLY/OFFLINE zones outright (a
    retired zone can neither be written nor reset), so a job whose every
    target zone is dead terminates cleanly with zero I/O. A reset that
    *does* fail — the zone was retired after the cursor asked for the
    reset but before it was issued — must count as an error, not a
    reset; that path is driven directly.
    """

    def _run_on_stuck_zones(self, op):
        from repro.zns import ZoneState

        sim, dev = make_device()
        for z in (0, 1):
            dev.force_fill(z, dev.zones.zones[z].cap_lbas)
            dev.inject_zone_failure(z, ZoneState.READ_ONLY)
        job = JobSpec(op=op, block_size=64 * KIB, runtime_ns=ms(5),
                      zones=[0, 1])
        return JobRunner(dev, SpdkStack(dev), job).run()

    def test_write_job_on_dead_zones_terminates_cleanly(self):
        result = self._run_on_stuck_zones(IoKind.WRITE)
        assert result.ops == 0
        assert result.resets == 0 and result.reset_latency.count == 0
        assert not result.errors  # skipped, never issued

    def test_append_job_on_dead_zones_terminates_cleanly(self):
        result = self._run_on_stuck_zones(IoKind.APPEND)
        assert result.ops == 0
        assert result.resets == 0 and result.reset_latency.count == 0
        assert not result.errors

    def test_failed_reset_counted_as_error(self):
        from repro.hostif import Status
        from repro.zns import ZoneState

        sim, dev = make_device()
        dev.force_fill(0, dev.zones.zones[0].cap_lbas)
        dev.inject_zone_failure(0, ZoneState.READ_ONLY)
        job = JobSpec(op=IoKind.WRITE, block_size=64 * KIB, runtime_ns=ms(5),
                      zones=[0])
        runner = JobRunner(dev, SpdkStack(dev), job)
        runner._ramp_end_ns = 0  # _reset_zone reads it for latency gating
        sim.run(until=sim.process(runner._reset_zone(object(), 0)))
        assert runner.result.errors == {Status.INVALID_ZONE_STATE_TRANSITION: 1}
        assert runner.result.resets == 0 and runner.result.reset_latency.count == 0

class TestBackoffSurvival:
    def test_high_qd_append_slots_survive_zone_boundaries(self):
        """Regression for the slot-death bug: at high QD every slot used
        to see (None, None) at a zone boundary (reservations still in
        flight) and retire, collapsing measured concurrency. With the
        BACKOFF protocol the full queue depth survives multiple
        fill/reset cycles and holds the ~132 KIOPS append cap."""
        sim, dev = make_device()
        job = JobSpec(op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=ms(40),
                      ramp_ns=ms(5), zones=[0], iodepth=16)
        result = JobRunner(dev, SpdkStack(dev), job,
                           ts_interval_ns=ms(2)).run()
        # 6 MiB zone at ~132 KIOPS x 4 KiB fills in ~11.6 ms: the run
        # crosses several fill/reset cycles.
        assert result.resets >= 2
        assert not result.errors
        # After the first boundary the refill must still saturate the
        # QD-cap (~132 KIOPS = 516 MiB/s); a lone surviving QD1 slot
        # would top out near 250 MiB/s.
        values = [v for _, v in result.timeseries.bandwidth_series()]
        assert max(values[len(values) // 2:]) > 450
