"""Observation #9: zone open/close costs and implicit-open penalties."""

import pytest

from repro.core.observations import check_obs9

from conftest import emit, run_once


def test_obs9_transition_costs(benchmark, results):
    result = run_once(benchmark, lambda: results.get("obs9"))
    emit(result)
    check = check_obs9(result)
    assert check.passed, check.details
    # Paper: open 9.56 us, close 11.01 us, implicit-open penalties
    # 2.02 us (write) and 2.83 us (append).
    assert result.value("latency_us", quantity="explicit open") == pytest.approx(9.56, rel=0.1)
    assert result.value("latency_us", quantity="close") == pytest.approx(11.01, rel=0.1)
    assert result.value(
        "latency_us", quantity="implicit-open write penalty") == pytest.approx(2.02, rel=0.25)
    assert result.value(
        "latency_us", quantity="implicit-open append penalty") == pytest.approx(2.83, rel=0.25)
