"""Fig. 2b: latencies at the optimal request sizes (4 KiB write / 8 KiB append)."""

import pytest

from repro.core.observations import check_obs2, check_obs4

from conftest import emit, run_once


def test_fig2b_optimal_request_latency(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig2b"))
    emit(result)
    for check in (check_obs2(result), check_obs4(result)):
        assert check.passed, check.details
    # Paper anchors: 11.36 us SPDK write, 14.02 us SPDK append,
    # 12.62 us kernel/none, 14.47 us mq-deadline.
    anchors = {
        ("spdk", "write"): 11.36,
        ("spdk", "append"): 14.02,
        ("iouring-none", "write"): 12.62,
        ("iouring-mq-deadline", "write"): 14.47,
    }
    for (stack, op), paper_us in anchors.items():
        measured = result.value("latency_us", lba_format="4KiB", stack=stack, op=op)
        assert measured == pytest.approx(paper_us, rel=0.03), (stack, op)
