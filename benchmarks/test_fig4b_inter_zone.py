"""Fig. 4b: inter-zone scalability (4 KiB, QD1 per zone, variable zones)."""

import pytest

from repro.core.observations import check_obs5, check_obs6

from conftest import emit, run_once


def test_fig4b_inter_zone_scalability(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig4b"))
    emit(result)
    fig4a = results.get("fig4a")
    for check in (check_obs5(fig4a, result), check_obs6(fig4a, result)):
        assert check.passed, check.details
    # Paper: inter-zone writes saturate at ~186 KIOPS; appends at ~132 K.
    assert result.value("kiops", op="write", zones=14) == pytest.approx(186, rel=0.05)
    assert result.value("kiops", op="append", zones=14) == pytest.approx(132, rel=0.05)
