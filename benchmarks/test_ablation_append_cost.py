"""Ablation: the append command cost carries Obs #4 and Obs #6."""

import pytest

from conftest import emit, run_once


def test_ablation_append_cost(benchmark, results):
    result = run_once(benchmark, lambda: results.get("ablation-append-cost"))
    emit(result)
    rows = result.rows
    # With append == write cost (the NVMeVirt assumption), the plateau
    # rises to the write cap — the paper's §IV failure mode.
    assert rows[0]["plateau_kiops"] == pytest.approx(186, rel=0.05)
    # The calibrated cost reproduces the 132 KIOPS plateau.
    assert rows[1]["plateau_kiops"] == pytest.approx(132, rel=0.05)
    # The latency gap grows monotonically with the cost.
    gaps = [r["gap_pct"] for r in rows]
    assert gaps == sorted(gaps)
