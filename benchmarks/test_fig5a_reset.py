"""Fig. 5a: reset latency vs zone occupancy (finished and unfinished)."""

import pytest

from conftest import emit, run_once


def test_fig5a_reset_occupancy(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig5a"))
    emit(result)
    # Paper: 11.60 ms at 50%, 16.19 ms at 100%; a finished half-full zone
    # takes ~3.08 ms longer to reset than an unfinished one.
    half = result.value("reset_ms", occupancy="50%", finished_first=False)
    full = result.value("reset_ms", occupancy="100%", finished_first=False)
    finished_half = result.value("reset_ms", occupancy="50%", finished_first=True)
    assert half == pytest.approx(11.60, rel=0.06)
    assert full == pytest.approx(16.19, rel=0.06)
    assert finished_half - half == pytest.approx(3.08, rel=0.25)
    resets = [r["reset_ms"] for r in result.rows if not r["finished_first"]]
    # Monotone in occupancy. "0%" vs "1page" is a physical near-tie
    # (one page of mapping work on a ~7 ms base, well below jitter),
    # so allow 2% slack on each step rather than strict ordering.
    for prev, nxt in zip(resets, resets[1:]):
        assert nxt > prev * 0.98, resets
