"""Fig. 4c: bandwidth vs concurrency, intra-zone append vs inter-zone write."""

import pytest

from repro.core.observations import check_obs8

from conftest import emit, run_once


def test_fig4c_bandwidth_scaling(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig4c"))
    emit(result)
    check = check_obs8(result)
    assert check.passed, check.details
    # Paper: 4 KiB writes cap at 726.74 MiB/s; >= 8 KiB requests reach
    # the ~1,155 MiB/s device limit with 2-4 concurrent units.
    cap_4k = max(v for _, v in result.series["write-4k"])
    assert cap_4k == pytest.approx(726.74, rel=0.05)
    for key in ("write-8k", "append-8k", "write-16k", "append-16k"):
        plateau = dict(result.series[key])[4]
        assert plateau == pytest.approx(1_155, rel=0.05), key
