"""§IV: emulator fidelity matrix (FEMU / NVMeVirt / ConfZNS / this work)."""

from repro.emulators import run_fidelity_matrix

from conftest import emit, run_once


def test_sec4_emulator_fidelity_matrix(benchmark, results):
    result = run_once(benchmark, run_fidelity_matrix)
    emit(result)
    verdicts = result.meta["verdicts"]
    # Paper: FEMU "cannot accurately reproduce any of our observations".
    assert not any(verdicts["femu"].values())
    # NVMeVirt/ConfZNS: read/write accurate, append and transitions not.
    for model in ("nvmevirt", "confzns"):
        assert verdicts[model][3] and verdicts[model][7] and verdicts[model][8]
        for obs in (4, 9, 10, 12, 13):
            assert not verdicts[model][obs], (model, obs)
    # The calibrated model reproduces everything probed.
    assert all(verdicts["this-work"].values())
