"""Fig. 3: SPDK write/append throughput vs request size (QD1)."""

import pytest

from repro.core.observations import check_obs3

from conftest import emit, run_once


def test_fig3_request_size_sweep(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig3"))
    emit(result)
    check = check_obs3(result)
    assert check.passed, check.details
    # Paper: writes peak ~85 KIOPS at 4 KiB; appends improve 66 -> 69 K
    # from 4 to 8 KiB; large requests approach the device byte limit.
    assert result.value("kiops", op="write", request_kib=4) == pytest.approx(88, rel=0.08)
    assert result.value("kiops", op="append", request_kib=4) == pytest.approx(66, rel=0.08)
    assert result.value("kiops", op="append", request_kib=8) == pytest.approx(69, rel=0.08)
    big_bw = result.value("bandwidth_mibs", op="write", request_kib=128)
    assert big_bw == pytest.approx(1_155, rel=0.05)
