"""Appendix Fig. 8: throughput/latency at various queue depths."""

from conftest import emit, run_once


def test_fig8_qd_throughput_latency(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig8"))
    emit(result)
    # Shape: latency and throughput both grow with QD; past the
    # saturation threshold latency doubles per QD step for both ops.
    for op in ("write", "append"):
        rows = [r for r in result.rows if r["op"] == op and r["request_kib"] == 32]
        latencies = [r["latency_us"] for r in rows]
        assert latencies == sorted(latencies)
        assert latencies[-1] > 8 * latencies[0]
    # At 4 KiB, appends plateau below writes (which merge via
    # mq-deadline and reach the device bandwidth).
    a4 = max(r["bandwidth_mibs"] for r in result.rows
             if r["op"] == "append" and r["request_kib"] == 4)
    w4 = max(r["bandwidth_mibs"] for r in result.rows
             if r["op"] == "write" and r["request_kib"] == 4)
    assert w4 > 1.5 * a4
