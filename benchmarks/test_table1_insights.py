"""Table I: the key insights, validated against the measured results."""

from repro.core import check_all, table1
from repro.core.recommendations import validate

from conftest import run_once


def test_table1_key_insights(benchmark, results):
    # Reuses every experiment the earlier benchmarks produced; any that
    # did not run yet (e.g. when filtering) are produced on demand.
    needed = ["fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c",
              "obs9", "fig5a", "fig5b", "fig6", "fig7"]

    def build():
        collected = results.get_many(needed)
        return check_all(collected)

    checks = run_once(benchmark, build)
    print()
    print(table1(checks))
    for check in checks:
        print(check)
    failed = [c.obs_id for c in checks if not c.passed]
    assert not failed, f"observations not reproduced: {failed}"
    assert all(ok for _, ok in validate(checks))
