"""Fig. 2a: append/write latency vs storage stack and LBA format (QD1)."""

from repro.core.observations import check_obs1

from conftest import emit, run_once


def test_fig2a_lba_format(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig2a"))
    emit(result)
    # Paper: 4 KiB LBA format consistently outperforms 512 B, up to ~2x.
    check = check_obs1(result)
    assert check.passed, check.details
    ratio = result.value(
        "latency_us", lba_format="512B", stack="spdk", op="write"
    ) / result.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
    assert 1.2 < ratio < 2.2
