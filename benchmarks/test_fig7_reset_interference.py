"""Fig. 7: p95 reset latency under concurrent read/write/append."""

import pytest

from repro.core.observations import check_obs12, check_obs13

from conftest import emit, run_once


def test_fig7_reset_interference(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig7"))
    emit(result)
    for check in (check_obs12(result), check_obs13(result)):
        assert check.passed, check.details
    # Paper: 17.94 ms isolated -> 28.00 (read, +56%), 32.00 (write,
    # +78%), 31.48 ms (append, +76%).
    assert result.value("reset_p95_ms", concurrent_op="none") == pytest.approx(17.94, rel=0.08)
    assert result.value("reset_p95_ms", concurrent_op="read") == pytest.approx(28.00, rel=0.12)
    assert result.value("reset_p95_ms", concurrent_op="write") == pytest.approx(32.00, rel=0.12)
    assert result.value("reset_p95_ms", concurrent_op="append") == pytest.approx(31.48, rel=0.12)
