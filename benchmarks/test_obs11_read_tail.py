"""Observation #11 tails: read p95 idle vs under the write flood."""

from conftest import emit, run_once


def test_obs11_read_tail_latencies(benchmark, results):
    result = run_once(benchmark, lambda: results.get("obs11"))
    emit(result)
    # Paper: idle p95 81.41 us on both devices; under the flood 98.04 ms
    # (ZNS) vs 299.89 ms (conventional) — three orders of magnitude.
    for device in ("zns", "conv"):
        idle = result.value("read_p95", device=device, condition="idle")
        assert idle < 500  # microseconds
    zns = result.value("read_p95", device="zns", condition="write-flood")
    conv = result.value("read_p95", device="conv", condition="write-flood")
    assert 80 < zns < 120  # ms; paper: 98.04
    assert conv > 2 * zns  # paper: 299.89 (ours overshoots; EXPERIMENTS.md)
