"""Ablation: the write buffer drives the ZNS read tail (Obs #11 mechanism)."""

import pytest

from conftest import emit, run_once


def test_ablation_write_buffer_sets_read_tail(benchmark, results):
    result = run_once(benchmark, lambda: results.get("ablation-buffer"))
    emit(result)
    # p95 tracks buffer_bytes / program_bandwidth across a 8x sweep.
    for row in result.rows:
        assert row["read_p95_ms"] == pytest.approx(row["predicted_ms"], rel=0.15)
    tails = result.column("read_p95_ms")
    assert tails == sorted(tails)
