"""Shared infrastructure for the paper-reproduction benchmark harness.

Each benchmark file regenerates one table/figure of the paper at full
experiment scale, prints the resulting table (run pytest with ``-s`` to
see them; they are also written to ``benchmarks/output/``), and asserts
the observation predicates that the paper derives from it.

The pytest-benchmark timing measures the wall-clock cost of regenerating
the artifact (one round — these are simulations, not microbenchmarks).
Experiments shared between benchmarks (e.g. Fig. 6a/6b) run once per
session via the ``results`` cache.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import ExperimentConfig
from repro.core.report import EXPERIMENT_RUNNERS

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


class ResultsCache:
    """Session-level store of experiment results keyed by experiment id."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._results: dict[str, object] = {}

    def get(self, exp_id: str, runner=None):
        if exp_id not in self._results:
            runner = runner or EXPERIMENT_RUNNERS()[exp_id]
            self._results[exp_id] = runner(self.config)
        return self._results[exp_id]

    def peek(self, exp_id: str):
        return self._results.get(exp_id)


@pytest.fixture(scope="session")
def results() -> ResultsCache:
    return ResultsCache(ExperimentConfig())


def emit(result) -> None:
    """Print a result (table + chart) and persist under benchmarks/output/."""
    from repro.core.figures import render_figure

    text = result.table()
    if result.series:
        text += "\n\n" + render_figure(result)
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
