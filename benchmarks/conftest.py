"""Shared infrastructure for the paper-reproduction benchmark harness.

Each benchmark file regenerates one table/figure of the paper at full
experiment scale, prints the resulting table (run pytest with ``-s`` to
see them; they are also written to ``benchmarks/output/``), and asserts
the observation predicates that the paper derives from it.

The pytest-benchmark timing measures the wall-clock cost of regenerating
the artifact (one round — these are simulations, not microbenchmarks).

Experiments run through the :mod:`repro.exec` engine, so the suite is

* **parallel** — sweep points fan out over ``REPRO_BENCH_JOBS`` worker
  processes (default: the CPU count; output stays byte-identical at any
  job count),
* **cached** — finished points are served from ``REPRO_BENCH_CACHE``
  (default ``.repro_cache`` at the repo root, shared with the CLI; set
  it to the empty string to benchmark everything fresh), and
* **longest-first** — cache misses are scheduled by recorded duration
  hints so the slowest points start first and the pool drains level.

Experiments shared between benchmarks (e.g. Fig. 6a/6b) additionally
run once per session via the ``results`` fixture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core import ExperimentConfig
from repro.core.experiments.points import experiment_plans
from repro.core.report import EXPERIMENT_RUNNERS
from repro.exec import execute_experiments

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Worker processes for sweep-point fan-out (0/unset → CPU count).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or (os.cpu_count() or 1)

#: Point-result cache directory; empty string disables caching.
CACHE_DIR: str | None = os.environ.get(
    "REPRO_BENCH_CACHE", str(pathlib.Path(__file__).parent.parent / ".repro_cache")
) or None


class ResultsCache:
    """Session-level store of experiment results keyed by experiment id."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._results: dict[str, object] = {}

    def get(self, exp_id: str, runner=None):
        if exp_id not in self._results:
            if runner is None and exp_id in experiment_plans():
                self.get_many([exp_id])
            else:
                runner = runner or EXPERIMENT_RUNNERS()[exp_id]
                self._results[exp_id] = runner(self.config)
        return self._results[exp_id]

    def get_many(self, exp_ids: list[str]) -> dict[str, object]:
        """Produce several experiments in one engine invocation.

        Batching lets the longest-first scheduler interleave points
        *across* experiments, so one slow sweep cannot serialize the
        tail of the run.
        """
        missing = [e for e in exp_ids if e not in self._results]
        if missing:
            produced, _report = execute_experiments(
                missing, self.config, jobs=JOBS, cache_dir=CACHE_DIR,
            )
            self._results.update(produced)
        return {e: self._results[e] for e in exp_ids}

    def peek(self, exp_id: str):
        return self._results.get(exp_id)


@pytest.fixture(scope="session")
def results() -> ResultsCache:
    return ResultsCache(ExperimentConfig())


def emit(result) -> None:
    """Print a result (table + chart) and persist under benchmarks/output/."""
    from repro.core.figures import render_figure

    text = result.table()
    if result.series:
        text += "\n\n" + render_figure(result)
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
