"""Fig. 4a: intra-zone scalability (4 KiB, one zone, variable QD)."""

import pytest

from repro.core.observations import check_obs7

from conftest import emit, run_once


def test_fig4a_intra_zone_scalability(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig4a"))
    emit(result)
    check = check_obs7(result)
    assert check.passed, check.details
    # Paper: appends saturate ~132 KIOPS at QD4; merged writes reach
    # 293 KIOPS at QD32; reads reach 424 KIOPS at high QD.
    assert result.value("kiops", op="append", qd=4) == pytest.approx(132, rel=0.05)
    assert result.value("kiops", op="write", qd=32) == pytest.approx(293, rel=0.05)
    read_peak = max(v for _, v in result.series["read"])
    assert read_peak == pytest.approx(424, rel=0.12)
