"""Fig. 6a: write throughput over time under GC, ZNS vs conventional."""

from conftest import emit, run_once


def test_fig6a_write_stability(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig6"))
    emit(result)
    # Paper: ZNS write throughput is stable; the conventional SSD
    # fluctuates between a few MiB/s and ~1,200 MiB/s under FTL GC.
    zns_cov = result.value("cov", device="zns", metric="write")
    conv_cov = result.value("cov", device="conv", metric="write")
    assert zns_cov < 0.05
    assert conv_cov > 0.3
    assert result.value("min_mibs", device="conv", metric="write") < 300
    assert result.value("max_mibs", device="conv", metric="write") > 900
