"""Fig. 6 rate-limited configurations (paper: "stable in all", unplotted)."""

from conftest import emit, run_once


def test_fig6_rate_limited_stability(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig6rates"))
    emit(result)
    # ZNS: write throughput matches the configured rate and stays stable
    # at every limit (paper §III-F).
    for rate in (250, 750, 1_155):
        cov = result.value("write_cov", device="zns", rate_limit_mibs=rate)
        assert cov < 0.05, rate
    # Conventional: GC-driven fluctuation appears as the rate approaches
    # the device limit.
    assert result.value("write_cov", device="conv", rate_limit_mibs=1_155) > 0.3
