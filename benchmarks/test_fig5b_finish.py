"""Fig. 5b: finish latency vs zone occupancy."""

import pytest

from conftest import emit, run_once


def test_fig5b_finish_occupancy(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig5b"))
    emit(result)
    # Paper: 907.51 ms at <0.1% occupancy down to 3.07 ms at ~100% —
    # a ~295x decrease, linear from <0.1% to 25%.
    low = result.value("finish_ms", occupancy="<0.1%")
    high = result.value("finish_ms", occupancy="~100%")
    assert low == pytest.approx(907.51, rel=0.06)
    assert high == pytest.approx(3.07, rel=0.1)
    assert low / high == pytest.approx(295, rel=0.15)
    finishes = result.column("finish_ms")
    assert finishes == sorted(finishes, reverse=True)
