"""Table II: the benchmarking environment (simulated testbed)."""

from repro.core import table2
from repro.zns.profiles import zn540


def test_table2_environment(benchmark):
    text = benchmark.pedantic(table2, rounds=1, iterations=1)
    print()
    print(text)
    profile = zn540()
    # Table II anchors: zone size 2,048 MiB, capacity 1,077 MiB,
    # 904 zones, 14 max active zones.
    assert profile.zone_size_bytes == 2048 * 1024 * 1024
    assert profile.zone_cap_bytes == 1077 * 1024 * 1024
    assert profile.num_zones == 904
    assert profile.max_active_zones == 14
    assert "904" in text
