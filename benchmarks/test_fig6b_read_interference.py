"""Fig. 6b: read throughput under a concurrent write flood, ZNS vs NVMe."""

from repro.core.observations import check_obs11

from conftest import emit, run_once


def test_fig6b_read_throughput_under_flood(benchmark, results):
    result = run_once(benchmark, lambda: results.get("fig6"))
    emit(result)
    check = check_obs11(result)
    assert check.passed, check.details
    # Paper Table I: ZNS offers ~3x higher read throughput than NVMe
    # under concurrent I/O; Fig. 6b shows conventional reads below
    # ~3 MiB/s.
    zns_read = result.value("mean_mibs", device="zns", metric="read")
    conv_read = result.value("mean_mibs", device="conv", metric="read")
    assert conv_read < 3.0
    assert 2.0 < zns_read / conv_read < 6.0
