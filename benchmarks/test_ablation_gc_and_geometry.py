"""Ablations: GC die priority (conv) and flash parallelism sweep."""

from conftest import emit, run_once


def test_ablation_gc_priority(benchmark, results):
    result = run_once(benchmark, lambda: results.get("ablation-gc-priority"))
    emit(result)
    urgent = result.find(gc_priority="urgent")
    plain = result.find(gc_priority="plain-io")
    # Without urgency GC starves behind the buffered backlog and the FTL
    # wedges at its reserve; with urgency it sustains collection.
    assert plain["ftl_stalls"] == "yes"
    assert urgent["ftl_stalls"] == "no"
    assert urgent["gc_pages_copied"] > 2 * plain["gc_pages_copied"]


def test_ablation_geometry(benchmark, results):
    result = run_once(benchmark, lambda: results.get("ablation-geometry"))
    emit(result)
    bws = result.column("write_bw_mibs")
    reads = result.column("read_qd32_kiops")
    # More channels x dies -> more bandwidth and read parallelism
    # (the design-space exploration ConfZNS-style emulators target).
    assert bws == sorted(bws)
    assert reads == sorted(reads)
    # Doubling dies at fixed channels doubles program bandwidth.
    assert 1.8 < bws[2] / bws[1] < 2.2


def test_ablation_zone_size(benchmark, results):
    result = run_once(benchmark, lambda: results.get("ablation-zone-size"))
    emit(result)
    # The large-zone device cannot open 28 zones; the small-zone device
    # can, and still plateaus at the per-command append cap.
    assert result.value("kiops", device="large-zone (ZN540)", zones=28) == "exceeds-open-limit"
    small28 = result.value("kiops", device="small-zone", zones=28)
    assert isinstance(small28, float) and 120 < small28 < 140
