"""Tenant/namespace session tier: many independent hosts, one device.

The paper characterizes a device driven by a single benchmark process;
the production scenario its interference observations (#10-#13) matter
for is many independent hosts — tenants — sharing one ZNS device or a
striped array, each with its own host stack, zone partition, workload,
and latency SLO. This package owns that tier:

* :class:`HostSession` / :class:`Tenant` — one host's view of a shared
  device: its own stack instance, seeded RNG sub-stream, per-tenant
  counters/latency stats, SLO-violation accounting, and per-zone error
  attribution.
* :class:`TenantScheduler` — runs concurrent tenants against one
  device inside one simulation, maps zones back to their owning tenant,
  and folds each tenant's accounting into a :class:`TenantResult`.
* :class:`ResetStorm` — the fig7-style antagonist as a tenant workload
  (back-to-back resets of refilled zones inside the tenant's partition).

Workloads run *within* a tenant context: :class:`~repro.workload.runner
.JobRunner` accepts ``tenant=`` and the LSM serving workload
(:mod:`repro.apps.lsm`) threads every command through the tenant's
stack, so completions, errors, and SLO violations are attributed to the
issuing tenant all the way down to telemetry columns.
"""

from .scheduler import ResetStorm, TenantResult, TenantScheduler, partition_zones
from .session import HostSession, Tenant

__all__ = [
    "HostSession",
    "ResetStorm",
    "Tenant",
    "TenantResult",
    "TenantScheduler",
    "partition_zones",
]
