"""Scheduling concurrent tenants against one shared device.

The :class:`TenantScheduler` is the fleet's control plane: it checks
that tenant zone partitions are disjoint, starts every tenant's
workloads inside the one shared simulation, and folds each tenant's
accounting into a :class:`TenantResult` row — per-tenant p99, SLO
violations, reset counts, and per-zone error attribution resolved to
the *owning* tenant's name (so a report can say "tenant A's read failed
in tenant B's zone").

Workloads are anything with ``start() -> Event`` (the event fires when
the workload is done): :class:`~repro.workload.runner.JobRunner` in a
tenant context, :class:`~repro.apps.lsm.LsmWorkload`, or the
:class:`ResetStorm` antagonist below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..hostif.commands import Command, Opcode, ZoneAction
from ..hostif.status import Status
from ..sim.engine import Event, Simulator, us
from ..zns.spec import ZoneState
from .session import Tenant

__all__ = ["ResetStorm", "TenantResult", "TenantScheduler", "partition_zones"]


def partition_zones(num_zones: int, counts: list[int],
                    start: int = 0) -> list[list[int]]:
    """Split ``[start, num_zones)`` into consecutive partitions.

    ``counts`` gives each partition's size; raises if they don't fit.
    Deterministic and order-preserving — partition *i* always gets the
    same zones regardless of how many other partitions follow.
    """
    partitions: list[list[int]] = []
    cursor = start
    for count in counts:
        if count <= 0:
            raise ValueError(f"partition sizes must be positive, got {count}")
        end = cursor + count
        if end > num_zones:
            raise ValueError(
                f"partitions need {end - start} zones but only "
                f"{num_zones - start} are available from {start}"
            )
        partitions.append(list(range(cursor, end)))
        cursor = end
    return partitions


@dataclass
class TenantResult:
    """One tenant's fleet-run outcome (a table row, essentially)."""

    tenant: str
    workload: str
    ops: int
    p50_us: float
    p99_us: float
    slo_p99_us: Optional[float]
    slo_violations: int
    resets: int
    reset_p95_ms: float
    errors: dict[Status, int] = field(default_factory=dict)
    #: zone id -> status -> count, same shape as ``Tenant.errors_by_zone``.
    errors_by_zone: dict[int, dict[Status, int]] = field(default_factory=dict)
    #: ``errors_by_zone`` re-keyed by the *owning* tenant's name — the
    #: attribution a fleet SLO report actually wants.
    errors_by_owner: dict[str, int] = field(default_factory=dict)


class TenantScheduler:
    """Runs concurrent tenants sharing one device in one simulation."""

    def __init__(self, device):
        self.device = device
        self.sim: Simulator = device.sim
        self._tenants: list[Tenant] = []
        self._workloads: list[tuple[Tenant, object, str]] = []
        self._zone_owner: dict[int, str] = {}

    @property
    def tenants(self) -> list[Tenant]:
        return list(self._tenants)

    def add_tenant(self, tenant: Tenant) -> Tenant:
        """Register a tenant, enforcing disjoint zone partitions."""
        if any(t.name == tenant.name for t in self._tenants):
            raise ValueError(f"duplicate tenant name {tenant.name!r}")
        if tenant.zones is not None:
            for zone_id in tenant.zones:
                owner = self._zone_owner.get(zone_id)
                if owner is not None:
                    raise ValueError(
                        f"zone {zone_id} already owned by tenant {owner!r}"
                    )
            for zone_id in tenant.zones:
                self._zone_owner[zone_id] = tenant.name
        self._tenants.append(tenant)
        return tenant

    def add_workload(self, tenant: Tenant, workload, kind: str = "") -> None:
        """Attach a workload (``start() -> Event``) to a tenant."""
        if tenant not in self._tenants:
            self.add_tenant(tenant)
        name = kind or type(workload).__name__.lower()
        self._workloads.append((tenant, workload, name))

    def owner_of_zone(self, zone_id: int) -> Optional[str]:
        return self._zone_owner.get(zone_id)

    def start(self) -> Event:
        """Launch every workload; fires when all of them finish.

        Workloads start in registration order — the deterministic
        ordering contract the bit-reproducibility tests pin down.
        """
        if not self._workloads:
            raise ValueError("no tenant workloads registered")
        return self.sim.all_of([w.start() for _, w, _ in self._workloads])

    def run(self) -> list[TenantResult]:
        """Start all tenants, run the simulation to completion, and
        return one result per tenant (registration order)."""
        self.sim.run(until=self.start())
        return self.results()

    def results(self) -> list[TenantResult]:
        workload_names: dict[str, list[str]] = {}
        for tenant, _, name in self._workloads:
            kinds = workload_names.setdefault(tenant.name, [])
            if name not in kinds:
                kinds.append(name)
        out = []
        for tenant in self._tenants:
            by_owner: dict[str, int] = {}
            for zone_id, statuses in sorted(tenant.errors_by_zone.items()):
                owner = self._zone_owner.get(zone_id, "?")
                by_owner[owner] = by_owner.get(owner, 0) + sum(statuses.values())
            out.append(TenantResult(
                tenant=tenant.name,
                workload="+".join(workload_names.get(tenant.name, [])) or "-",
                ops=tenant.ops,
                p50_us=tenant.latency.percentile_us(50),
                p99_us=tenant.latency.percentile_us(99),
                slo_p99_us=(
                    tenant.slo_p99_ns / 1_000
                    if tenant.slo_p99_ns is not None else None
                ),
                slo_violations=tenant.slo_violations,
                resets=tenant.resets,
                reset_p95_ms=tenant.reset_latency.percentile_ns(95) / 1e6,
                errors=dict(tenant.errors),
                errors_by_zone={
                    z: dict(s) for z, s in tenant.errors_by_zone.items()
                },
                errors_by_owner=by_owner,
            ))
        return out


class ResetStorm:
    """The fig7 antagonist as a tenant workload: fill, reset, repeat.

    Cycles through the tenant's zone partition until ``until_ns``,
    refilling each zone and resetting it through the tenant's stack.
    Two refill modes:

    * ``refill="force"`` — metadata-only occupancy (the microbenchmark
      shortcut fig7 uses: the paper pre-fills its 400 sweep zones out of
      band). The storm is then *pure* resets, which the calibrated model
      keeps off the I/O path (Obs #12: I/O latency is unaffected).
    * ``refill="write"`` — the fleet-realistic mode: the tenant refills
      with real appends through its own stack, like a WAL/ring-buffer
      tenant that burns and reclaims zones. Those writes program the
      shared die stripe, so co-located serving tenants' read tails
      inflate (the Obs #11 die-backlog mechanism) while this tenant's
      resets inflate under their I/O (Obs #12/#13) — both directions of
      the paper's interference story, now attributed per tenant.

    Reset latencies and failures land in the tenant's accounting with
    per-zone attribution.
    """

    def __init__(self, tenant: Tenant, until_ns: int,
                 zone_pool: Optional[list[int]] = None,
                 refill: str = "force", append_chunk: int = 128 * 1024,
                 pace_ns: int = 0):
        if tenant.zones is None and zone_pool is None:
            raise ValueError("ResetStorm needs a zone partition")
        if refill not in ("force", "write"):
            raise ValueError(f"refill must be 'force' or 'write', got {refill!r}")
        self.tenant = tenant
        self.device = tenant.device
        self.sim = tenant.sim
        self.until_ns = until_ns
        self.refill = refill
        self.append_chunk = append_chunk
        #: Gap between refill appends (write mode): paces the tenant's
        #: write bandwidth at ``append_chunk / pace_ns`` instead of
        #: letting QD1 admission saturate the device outright.
        self.pace_ns = pace_ns
        self.zone_pool = list(zone_pool if zone_pool is not None
                              else tenant.zones)
        self._filled: list[int] = []

    def start(self) -> Event:
        if self.refill == "write":
            # Decoupled producer/consumer: resets serialize on the
            # firmware engine and stall under co-tenant I/O (Obs #13),
            # so a fill-then-await-reset loop would spend the whole run
            # inside one reset and generate no write pressure at all.
            # A real log tenant keeps writing while reclaim trails.
            return self.sim.all_of([
                self.sim.process(self._writer()),
                self.sim.process(self._resetter()),
            ])
        return self.sim.process(self._run())

    # -- classic microbenchmark mode (fig7): fill is metadata-only --------
    def _run(self) -> Generator:
        device = self.device
        tenant = self.tenant
        index = 0
        while self.sim.now < self.until_ns:
            zone_id = self.zone_pool[index % len(self.zone_pool)]
            index += 1
            zone = device.zones.zones[zone_id]
            status = device.force_fill(zone_id, zone.cap_lbas)
            if not status.ok:
                # A retired zone (fault injection) cannot be refilled;
                # skip it but yield so a fully-retired pool still makes
                # progress toward the deadline instead of spinning.
                tenant.record_error(status, zone.zslba)
                yield self.sim.timeout(us(10))
                continue
            completion = yield tenant.submit(
                Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                        action=ZoneAction.RESET)
            )
            if completion.ok:
                tenant.record_reset(completion.latency_ns)
            else:
                tenant.record_error(completion.status, zone.zslba)

    # -- fleet mode: real writes, reclaim trailing ------------------------
    def _writer(self) -> Generator:
        device = self.device
        tenant = self.tenant
        block = device.namespace.block_size
        chunk_nlb = max(1, self.append_chunk // block)
        index = 0
        while self.sim.now < self.until_ns:
            zone_id = self.zone_pool[index % len(self.zone_pool)]
            index += 1
            zone = device.zones.zones[zone_id]
            if zone.state is not ZoneState.EMPTY:
                if index % len(self.zone_pool) == 0:
                    # Whole pool awaiting reclaim; wait for the resetter.
                    yield self.sim.timeout(us(50))
                continue
            failed = False
            remaining = zone.cap_lbas
            while remaining > 0 and self.sim.now < self.until_ns:
                nlb = min(chunk_nlb, remaining)
                completion = yield tenant.submit(
                    Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb))
                if not completion.ok:
                    tenant.record_error(completion.status, zone.zslba)
                    failed = True
                    break
                remaining -= nlb
                if self.pace_ns:
                    yield self.sim.timeout(self.pace_ns)
            if not failed and remaining == 0:
                self._filled.append(zone_id)

    def _resetter(self) -> Generator:
        device = self.device
        tenant = self.tenant
        while self.sim.now < self.until_ns:
            if not self._filled:
                yield self.sim.timeout(us(50))
                continue
            zone = device.zones.zones[self._filled.pop(0)]
            completion = yield tenant.submit(
                Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                        action=ZoneAction.RESET)
            )
            if completion.ok:
                tenant.record_reset(completion.latency_ns)
            else:
                tenant.record_error(completion.status, zone.zslba)
