"""Host sessions and tenants: one host's independent view of a device.

A :class:`HostSession` binds a host stack instance to a (possibly
shared) device — the thing the workload layer submits through. A
:class:`Tenant` is a session with an identity: a name, a zone
partition, a seeded RNG sub-stream, per-tenant counters and latency
statistics, a latency SLO with live violation accounting, and per-zone
error attribution. Everything a multi-tenant SLO report needs to say
*which* tenant suffered and *which* zone (hence which co-tenant) was
involved lives here.

Determinism: a tenant never draws from a shared RNG — its sub-streams
are derived from ``tenant/<index>/<stream>`` under the root seed so
adding or reordering tenants cannot shift another tenant's draws, and
its accounting is plain arithmetic on simulated-time observations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hostif.commands import Command, Completion
from ..hostif.status import Status
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_NS
from ..sim.engine import Event
from ..workload.stats import LatencyStats

__all__ = ["HostSession", "Tenant"]


class HostSession:
    """One host's submission path to a device: its own stack instance.

    The session owns no device state — many sessions share one device —
    but every command a session issues pays that session's host-stack
    overhead, exactly like independent hosts each running their own
    driver stack against a shared namespace. ``stack=None`` builds a
    private SPDK-like stack (the lowest-overhead configuration, and the
    paper's reference stack for interference runs).
    """

    def __init__(self, device, stack=None):
        if stack is None:
            from ..stacks.spdk import SpdkStack

            stack = SpdkStack(device)
        self.device = device
        self.sim = device.sim
        self.stack = stack

    def submit(self, command: Command) -> Event:
        """Issue a command through this session's stack."""
        return self.stack.submit(command)


class Tenant(HostSession):
    """A named session with a zone partition, RNG sub-stream, and SLO.

    Workloads running in a tenant context report completions through
    :meth:`record` / :meth:`record_error` / :meth:`record_reset`; the
    tenant stamps its name onto every command it submits so device-side
    tracing and failure reports can attribute work to it.
    """

    def __init__(self, device, name: str, zones=None, stack=None,
                 index: int = 0, seed: int = 0,
                 slo_p99_ns: Optional[int] = None):
        super().__init__(device, stack)
        if not name:
            raise ValueError("a tenant needs a non-empty name")
        self.name = name
        self.index = index
        self.seed = seed
        #: The zone partition this tenant owns (``None`` for namespace /
        #: address-range tenants on a conventional device).
        self.zones: Optional[tuple[int, ...]] = (
            tuple(zones) if zones is not None else None
        )
        if self.zones is not None and len(set(self.zones)) != len(self.zones):
            raise ValueError(f"tenant {name!r} has duplicate zones")
        #: p99 latency SLO target for the serving (read) path, or None.
        self.slo_p99_ns = slo_p99_ns
        # -- per-tenant accounting (the "DeviceCounters of this tenant") --
        self.latency = LatencyStats()
        self.reset_latency = LatencyStats()
        self.ops = 0
        self.bytes = 0
        self.resets = 0
        self.slo_violations = 0
        self.errors: dict[Status, int] = {}
        #: Per-zone error attribution: zone id -> status -> count. This
        #: is what lets a fleet report name the offending zone (and via
        #: the scheduler's ownership map, the offending tenant).
        self.errors_by_zone: dict[int, dict[Status, int]] = {}
        # Published into the device registry only when observability is
        # on — the same contract as the workload runner's job metrics,
        # so default runs pay nothing and telemetry runs get per-tenant
        # columns (``tenant.<name>.*``) for free.
        metrics = (
            getattr(device, "metrics", None)
            if getattr(device, "observing", False)
            else None
        )
        if metrics is not None:
            prefix = f"tenant.{name}"
            self._ops_counter = metrics.counter(f"{prefix}.ops")
            self._bytes_counter = metrics.counter(f"{prefix}.bytes")
            self._error_counter = metrics.counter(f"{prefix}.errors")
            self._violation_counter = metrics.counter(
                f"{prefix}.slo_violations")
            self._latency_hist = metrics.histogram(
                f"{prefix}.latency_ns", DEFAULT_LATENCY_BUCKETS_NS)
        else:
            self._ops_counter = None
            self._bytes_counter = None
            self._error_counter = None
            self._violation_counter = None
            self._latency_hist = None

    # -- identity --------------------------------------------------------
    def rng(self, stream) -> np.random.Generator:
        """A named RNG sub-stream private to this tenant.

        Streams are namespaced by ``tenant/<index>/<stream>`` under the
        root seed (same derivation as :class:`repro.sim.rng
        .StreamFactory`), so two tenants — or two streams of one tenant
        — never share draws, and adding a tenant cannot shift another
        tenant's sequence.
        """
        name = f"tenant/{self.index}/{stream}"
        child = np.random.SeedSequence(
            entropy=self.seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(child)

    def owns_zone(self, zone_id: int) -> bool:
        return self.zones is not None and zone_id in self.zones

    # -- submission ------------------------------------------------------
    def submit(self, command: Command) -> Event:
        """Stamp the tenant label and issue through the tenant's stack."""
        command.tenant = self.name
        return self.stack.submit(command)

    # -- accounting ------------------------------------------------------
    def record(self, completion: Completion, nbytes: int = 0) -> None:
        """Account one successful serving-path completion.

        Callers must not rely on the completion being retained — the
        tenant reads the latency and drops the reference, preserving the
        runner's completion-recycling contract.
        """
        latency_ns = completion.latency_ns
        self.ops += 1
        self.bytes += nbytes
        self.latency.record(latency_ns)
        if self.slo_p99_ns is not None and latency_ns > self.slo_p99_ns:
            self.slo_violations += 1
            if self._violation_counter is not None:
                self._violation_counter.inc()
        if self._ops_counter is not None:
            self._ops_counter.inc()
            self._bytes_counter.inc(nbytes)
            self._latency_hist.observe(latency_ns)

    def record_error(self, status: Status, slba: Optional[int] = None) -> None:
        """Account a failed command, attributing it to a zone if possible."""
        self.errors[status] = self.errors.get(status, 0) + 1
        if self._error_counter is not None:
            self._error_counter.inc()
        if slba is None:
            return
        zones = getattr(self.device, "zones", None)
        if zones is None:
            return
        zone = zones.zone_containing(slba)
        if zone is None:
            return
        per_zone = self.errors_by_zone.setdefault(zone.index, {})
        per_zone[status] = per_zone.get(status, 0) + 1

    def record_reset(self, latency_ns: Optional[int] = None) -> None:
        """Account one successful zone reset issued by this tenant."""
        self.resets += 1
        if latency_ns is not None:
            self.reset_latency.record(latency_ns)

    # -- summary ---------------------------------------------------------
    @property
    def p99_ns(self) -> float:
        return self.latency.percentile_ns(99)

    @property
    def slo_met(self) -> Optional[bool]:
        """Whether the measured p99 met the SLO (None without a target
        or without samples)."""
        if self.slo_p99_ns is None or not self.latency.count:
            return None
        return self.p99_ns <= self.slo_p99_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        zones = f"{len(self.zones)} zones" if self.zones is not None else "ns"
        return f"Tenant({self.name!r}, {zones}, ops={self.ops})"
