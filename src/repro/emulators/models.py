"""The four latency models compared in §IV.

* **FEMU** — "currently makes no attempt at emulating ZNS SSD request
  latency, and requests are as fast as the underlying hardware (CPU and
  DRAM) permits": every cost shrinks to sub-microsecond host speed, and
  zone transitions are DRAM metadata updates.
* **NVMeVirt** — "a latency model that is shown to be reasonably accurate
  for ZNS devices ... [but] uses the same latency model for both append
  and write operations", sets reset latency "static and equal to NAND
  erasure latency", and "does not emulate timing for the other zone
  management operations at all".
* **ConfZNS** — accurate channel/die timing for reads and writes
  (inter- and intra-zone), but — like NVMeVirt — no append
  differentiation and no zone-transition model.
* **this-work** — the paper-calibrated ZN540 model from
  :mod:`repro.zns.profiles` (what the paper recommends emulators adopt).
"""

from __future__ import annotations

from ..flash.geometry import GIB, MIB
from ..flash.nand import NandTiming
from ..sim.engine import ms, us
from ..zns.profiles import zn540
from .base import EmulatorModel

__all__ = ["FEMU", "NVMEVIRT", "CONFZNS", "THIS_WORK", "ALL_MODELS"]

#: Zones kept on fidelity-probe devices (latency-irrelevant).
_PROBE_ZONES = 32


def _femu_profile():
    base = zn540(num_zones=_PROBE_ZONES)
    return base.scaled(
        name="FEMU (no ZNS latency model)",
        nand=NandTiming(read_ns=1_000, program_ns=1_000, erase_ns=1_000),
        channel_bandwidth=64 * GIB,
        cmd_read_ns=200,
        cmd_write_ns=200,
        cmd_append_small_ns=200,
        cmd_append_large_ns=200,
        per_lba_ns_4k=0,
        per_lba_ns_512=0,
        subpage_penalty_ns=0,
        dma_bandwidth=64 * GIB,
        write_admit_ns=200,
        append_alloc_ns=0,
        implicit_open_write_ns=0,
        implicit_open_append_ns=0,
        zone_open_ns=300,
        zone_close_ns=300,
        reset_base_ns=us(20),     # DRAM metadata update
        reset_span_ns=0,
        reset_pad_span_ns=0,
        finish_floor_ns=us(20),   # "unrealistically fast ... in DRAM"
        finish_pad_bandwidth=1 << 50,  # metadata-only: no pad time
        fw_read_ns=0,
        fw_write_ns=0,
        fw_append_ns=0,
        jitter_sigma=0.0,
        mgmt_jitter_sigma=0.0,
    )


def _nvmevirt_profile():
    base = zn540(num_zones=_PROBE_ZONES)
    return base.scaled(
        name="NVMeVirt (append==write, static reset)",
        # append uses the write latency model verbatim.
        cmd_append_small_ns=base.cmd_write_ns,
        cmd_append_large_ns=base.cmd_write_ns,
        append_alloc_ns=0,
        implicit_open_write_ns=0,
        implicit_open_append_ns=0,
        # Zone management: reset is a static NAND-erase latency; the
        # other transitions are not emulated at all.
        zone_open_ns=1_000,
        zone_close_ns=1_000,
        reset_base_ns=ms(3.5),
        reset_span_ns=0,
        reset_pad_span_ns=0,
        finish_floor_ns=1_000,
        finish_pad_bandwidth=1 << 50,  # finish timing not emulated
        # No firmware-contention model: I/O cannot perturb management.
        fw_read_ns=0,
        fw_write_ns=0,
        fw_append_ns=0,
    )


def _confzns_profile():
    base = zn540(num_zones=_PROBE_ZONES)
    return base.scaled(
        name="ConfZNS (accurate read/write parallelism)",
        cmd_append_small_ns=base.cmd_write_ns,
        cmd_append_large_ns=base.cmd_write_ns,
        append_alloc_ns=0,
        implicit_open_write_ns=0,
        implicit_open_append_ns=0,
        zone_open_ns=1_000,
        zone_close_ns=1_000,
        reset_base_ns=ms(3.5),
        reset_span_ns=0,
        reset_pad_span_ns=0,
        finish_floor_ns=1_000,
        finish_pad_bandwidth=1 << 50,  # finish timing not emulated
        fw_read_ns=0,
        fw_write_ns=0,
        fw_append_ns=0,
    )


def _this_work_profile():
    return zn540(num_zones=_PROBE_ZONES)


FEMU = EmulatorModel(
    name="femu",
    description="no latency emulation; host-speed completions",
    profile_factory=_femu_profile,
    paper_expected=frozenset(),  # §IV: "cannot accurately reproduce any"
)

NVMEVIRT = EmulatorModel(
    name="nvmevirt",
    description="read/write timing model; append==write; static reset",
    profile_factory=_nvmevirt_profile,
    paper_expected=frozenset({3, 7, 8}),  # accurate for read/write only
)

CONFZNS = EmulatorModel(
    name="confzns",
    description="accurate read/write parallelism; no append/transition model",
    profile_factory=_confzns_profile,
    paper_expected=frozenset({3, 5, 7, 8}),
)

THIS_WORK = EmulatorModel(
    name="this-work",
    description="paper-calibrated ZN540 model (reference)",
    profile_factory=_this_work_profile,
    paper_expected=frozenset(range(3, 14)) - {11},
)

ALL_MODELS = (FEMU, NVMEVIRT, CONFZNS, THIS_WORK)
