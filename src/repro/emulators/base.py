"""Emulator latency models (§IV), expressed in the shared device skeleton.

The paper analyses which of its observations the public ZNS emulators can
reproduce, as a function of their *latency models* — not their QEMU/
kernel plumbing. We therefore re-implement each emulator's latency model
as a :class:`repro.zns.profiles.DeviceProfile` transformation plugged
into the same device skeleton, and measure which observations survive.

Each model is an :class:`EmulatorModel` with a profile factory; the
fidelity harness (:mod:`repro.emulators.fidelity`) instantiates a device
per model and probes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..hostif.namespace import LBA_4K
from ..sim.engine import Simulator
from ..sim.rng import StreamFactory
from ..zns.device import ZnsDevice
from ..zns.profiles import DeviceProfile

__all__ = ["EmulatorModel"]


@dataclass(frozen=True)
class EmulatorModel:
    """One emulator's latency model."""

    name: str
    description: str
    profile_factory: Callable[[], DeviceProfile]
    #: Observations §IV expects this model to reproduce (used in reports
    #: to compare our measured matrix against the paper's claims).
    paper_expected: frozenset[int]

    def build(self, seed: int = 0x5EED) -> tuple[Simulator, ZnsDevice]:
        """A fresh simulator + device running this latency model."""
        sim = Simulator()
        device = ZnsDevice(
            sim, self.profile_factory(), lba_format=LBA_4K,
            streams=StreamFactory(seed),
        )
        return sim, device
