"""§IV fidelity harness: which observations can each emulator reproduce?

For every emulator latency model we probe the observation-relevant
quantities (QD1 latencies, scaling plateaus, transition costs,
interference) and compare them against the calibrated reference model
(standing in for the real ZN540, which it matches — see EXPERIMENTS.md).
An observation "reproduces" on an emulator when its quantities land
within tolerance of the reference, or — for ordering observations — when
the ordering matches.

Observations #1 (LBA format), #2 (stack overheads) and #11 (ZNS vs
conventional stability) are excluded, as in the paper: "they do not
represent essential behavior to emulate".
"""

from __future__ import annotations

from typing import Optional

from ..core.experiments.points import ExperimentPlan, run_via_points
from ..hostif.commands import Command, Opcode, ZoneAction
from ..sim.engine import ms
from ..stacks.iouring import IoUringStack
from ..stacks.spdk import SpdkStack
from ..workload.job import IoKind, JobSpec, Pattern
from ..workload.runner import JobRunner
from ..workload.stats import LatencyStats
from ..core.results import ExperimentResult
from .base import EmulatorModel
from .models import ALL_MODELS, THIS_WORK

__all__ = [
    "FIDELITY_PLAN",
    "PROBED_OBSERVATIONS",
    "probe_model",
    "run_fidelity_matrix",
]

KIB = 1024
PROBED_OBSERVATIONS = (3, 4, 5, 6, 7, 8, 9, 10, 12, 13)


# --------------------------------------------------------------------------
# probes: extract observation-relevant quantities from one model's device
# --------------------------------------------------------------------------

def _qd1_latency_us(model: EmulatorModel, op: Opcode, nbytes: int, reps: int = 20) -> float:
    sim, device = model.build()
    zone = device.zones.zones[0]
    nlb = device.namespace.lbas(nbytes)
    stats = LatencyStats()
    for i in range(reps + 1):
        if op is Opcode.WRITE:
            cmd = Command(op, slba=zone.wp, nlb=nlb)
        else:
            cmd = Command(op, slba=zone.zslba, nlb=nlb)
        completion = sim.run(until=device.submit(cmd))
        assert completion.ok, completion.status
        if i > 0:  # skip the implicit-open first op
            stats.record(completion.latency_ns)
    return stats.mean_us


def _run_job(model: EmulatorModel, job: JobSpec, stack: str = "spdk",
               prefill: bool = False) -> float:
    sim, device = model.build()
    if prefill:
        device.debug_prefill_buffer(zone_index=max(job.zones) + 1)
    if job.op == IoKind.READ:
        for z in job.zones:
            device.force_fill(z, device.zones.zones[z].cap_lbas)
    host = SpdkStack(device) if stack == "spdk" else IoUringStack(device, "mq-deadline")
    return JobRunner(device, host, job).run()


def _mgmt_latency_ms(model: EmulatorModel, action: ZoneAction, fill_fraction: float,
                     reps: int = 6) -> float:
    sim, device = model.build()
    stats = LatencyStats()
    zone = device.zones.zones[0]
    for _ in range(reps):
        nlb = round(zone.cap_lbas * fill_fraction)
        if nlb:
            assert device.force_fill(0, nlb).ok
        cpl = sim.run(until=device.submit(
            Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=action)))
        assert cpl.ok, cpl.status
        stats.record(cpl.latency_ns)
        if action is not ZoneAction.RESET:
            sim.run(until=device.submit(
                Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
    return stats.mean_ns / 1e6


def _open_and_penalty_us(model: EmulatorModel) -> tuple[float, float]:
    sim, device = model.build()
    zone = device.zones.zones[0]
    open_cpl = sim.run(until=device.submit(
        Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.OPEN)))
    nlb = device.namespace.lbas(4 * KIB)
    zone2 = device.zones.zones[1]
    first = sim.run(until=device.submit(Command(Opcode.WRITE, slba=zone2.wp, nlb=nlb)))
    later = sim.run(until=device.submit(Command(Opcode.WRITE, slba=zone2.wp, nlb=nlb)))
    return open_cpl.latency_ns / 1e3, (first.latency_ns - later.latency_ns) / 1e3


def _reset_under_write_p95_ms(model: EmulatorModel, resets: int = 14) -> tuple[float, float, float]:
    """(isolated reset mean ms, loaded reset p95 ms, write drift fraction)."""
    sim, device = model.build()
    zone_pool = list(range(0, 4))
    isolated = LatencyStats()
    for i in range(resets):
        z = zone_pool[i % 4]
        device.force_fill(z, device.zones.zones[z].cap_lbas)
        cpl = sim.run(until=device.submit(Command(
            Opcode.ZONE_MGMT, slba=device.zones.zones[z].zslba, action=ZoneAction.RESET)))
        isolated.record(cpl.latency_ns)
    # Baseline write latency.
    wzone = device.zones.zones[8]
    nlb = device.namespace.lbas(4 * KIB)
    sim.run(until=device.submit(Command(Opcode.WRITE, slba=wzone.wp, nlb=nlb)))
    base = sim.run(until=device.submit(Command(Opcode.WRITE, slba=wzone.wp, nlb=nlb)))
    # Concurrent writer + reset sweep.
    stop = []

    def writer():
        stats = LatencyStats()
        while not stop:
            cpl = yield device.submit(Command(Opcode.WRITE, slba=wzone.wp, nlb=nlb))
            if cpl.ok:
                stats.record(cpl.latency_ns)
        return stats

    writer_proc = sim.process(writer())
    loaded = LatencyStats()

    def sweeper():
        for i in range(resets):
            z = zone_pool[i % 4]
            device.force_fill(z, device.zones.zones[z].cap_lbas)
            cpl = yield device.submit(Command(
                Opcode.ZONE_MGMT, slba=device.zones.zones[z].zslba,
                action=ZoneAction.RESET))
            loaded.record(cpl.latency_ns)

    sim.run(until=sim.process(sweeper()))
    stop.append(True)
    writer_stats = sim.run(until=writer_proc)
    drift = abs(writer_stats.mean_ns - base.latency_ns) / base.latency_ns
    return isolated.mean_ns / 1e6, loaded.percentile_ns(95) / 1e6, drift


def probe_model(model: EmulatorModel) -> dict:
    """All observation-relevant quantities for one latency model."""
    q: dict = {"name": model.name}
    # Obs 3/4: QD1 latencies across sizes and ops.
    q["lat_w4"] = _qd1_latency_us(model, Opcode.WRITE, 4 * KIB)
    q["lat_w32"] = _qd1_latency_us(model, Opcode.WRITE, 32 * KIB)
    q["lat_a4"] = _qd1_latency_us(model, Opcode.APPEND, 4 * KIB)
    q["lat_a8"] = _qd1_latency_us(model, Opcode.APPEND, 8 * KIB)
    # Obs 5/6/7: scaling plateaus (KIOPS).
    runtime = ms(4)
    # Merged intra-zone writes overdrive the flash drain rate: warm-start
    # the buffer so the probe sees the steady-state plateau.
    q["write_intra_qd8"] = _run_job(model, JobSpec(
        op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=ms(12), ramp_ns=ms(2),
        iodepth=8, zones=[0]), stack="mq-deadline", prefill=True).kiops
    q["write_inter_8z"] = _run_job(model, JobSpec(
        op=IoKind.WRITE, block_size=4 * KIB, runtime_ns=runtime, numjobs=8,
        zones=list(range(8)), zone_per_thread=True)).kiops
    q["append_intra_qd4"] = _run_job(model, JobSpec(
        op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=runtime, iodepth=4,
        zones=[0])).kiops
    q["append_inter_4z"] = _run_job(model, JobSpec(
        op=IoKind.APPEND, block_size=4 * KIB, runtime_ns=runtime, numjobs=4,
        zones=list(range(4)), zone_per_thread=True)).kiops
    q["read_intra_qd64"] = _run_job(model, JobSpec(
        op=IoKind.READ, block_size=4 * KIB, runtime_ns=runtime, iodepth=64,
        pattern=Pattern.RANDOM, zones=[0])).kiops
    # Obs 8: 8 KiB append bandwidth at concurrency 4 (steady state).
    q["append8k_qd4_mibs"] = _run_job(model, JobSpec(
        op=IoKind.APPEND, block_size=8 * KIB, runtime_ns=ms(40), ramp_ns=ms(8),
        iodepth=4, zones=[0]), prefill=True).bandwidth_mibs
    # Obs 9: transitions.
    q["open_us"], q["implicit_penalty_us"] = _open_and_penalty_us(model)
    # Obs 10: occupancy dependence.
    q["reset_empty_ms"] = _mgmt_latency_ms(model, ZoneAction.RESET, 0.0)
    q["reset_full_ms"] = _mgmt_latency_ms(model, ZoneAction.RESET, 1.0)
    q["finish_low_ms"] = _mgmt_latency_ms(model, ZoneAction.FINISH, 0.01)
    q["finish_high_ms"] = _mgmt_latency_ms(model, ZoneAction.FINISH, 0.99)
    # Obs 12/13: reset interference.
    q["reset_iso_ms"], q["reset_loaded_p95_ms"], q["write_drift"] = (
        _reset_under_write_p95_ms(model)
    )
    return q


# --------------------------------------------------------------------------
# verdicts: compare a model's quantities against the reference
# --------------------------------------------------------------------------

def _close(value: float, reference: float, tolerance: float) -> bool:
    if reference == 0:
        return value == 0
    return abs(value - reference) / abs(reference) <= tolerance


def _verdicts(q: dict, ref: dict) -> dict[int, bool]:
    v: dict[int, bool] = {}
    # 3: request size changes latency/throughput the way the device does.
    v[3] = _close(q["lat_w32"] / q["lat_w4"], ref["lat_w32"] / ref["lat_w4"], 0.25) and _close(
        q["lat_a8"] / q["lat_a4"], ref["lat_a8"] / ref["lat_a4"], 0.25
    )
    # 4: append slower than write by a device-like margin.
    v[4] = _close(q["lat_a4"] / q["lat_w4"], ref["lat_a4"] / ref["lat_w4"], 0.12)
    # 5: intra-zone beats inter-zone by the device-like ratio.
    v[5] = q["write_intra_qd8"] > q["write_inter_8z"] and _close(
        q["write_intra_qd8"] / q["write_inter_8z"],
        ref["write_intra_qd8"] / ref["write_inter_8z"], 0.3,
    )
    # 6: append plateau is scaling-strategy agnostic AND device-like.
    v[6] = _close(q["append_intra_qd4"], q["append_inter_4z"], 0.15) and _close(
        q["append_intra_qd4"], ref["append_intra_qd4"], 0.25
    )
    # 7: read > write > append peaks, at device-like magnitudes.
    v[7] = (
        q["read_intra_qd64"] > q["write_intra_qd8"] > q["append_intra_qd4"]
        and _close(q["read_intra_qd64"], ref["read_intra_qd64"], 0.3)
    )
    # 8: large requests reach the device bandwidth limit.
    v[8] = _close(q["append8k_qd4_mibs"], ref["append8k_qd4_mibs"], 0.2)
    # 9: open cost and implicit-open penalty are device-like.
    v[9] = _close(q["open_us"], ref["open_us"], 0.35) and _close(
        q["implicit_penalty_us"], ref["implicit_penalty_us"], 0.35
    )
    # 10: reset grows with occupancy; finish shrinks, both device-like.
    v[10] = (
        _close(q["reset_full_ms"] / max(q["reset_empty_ms"], 1e-9),
               ref["reset_full_ms"] / ref["reset_empty_ms"], 0.3)
        and q["finish_low_ms"] > 20 * q["finish_high_ms"]
    )
    # 12: I/O latency unaffected by resets AND resets realistically long.
    v[12] = q["write_drift"] < 0.08 and _close(q["reset_iso_ms"], ref["reset_iso_ms"], 0.4)
    # 13: concurrent writes inflate reset p95 (with realistic resets).
    v[13] = (
        _close(q["reset_iso_ms"], ref["reset_iso_ms"], 0.4)
        and q["reset_loaded_p95_ms"] > 1.3 * q["reset_iso_ms"]
    )
    return v


# --------------------------------------------------------------------------
# the §IV matrix as an ExperimentPlan (one point per latency model)
# --------------------------------------------------------------------------

def _matrix_skeleton(models: tuple[EmulatorModel, ...]) -> dict:
    return {
        "experiment_id": "sec4",
        "title": "Emulator fidelity: which observations does each latency model reproduce?",
        "columns": ["observation"] + [m.name for m in models],
        "notes": [
            "verdict = quantities within tolerance of the calibrated reference model",
            "paper §IV: FEMU reproduces none; NVMeVirt/ConfZNS miss append "
            "(#4-#6) and zone transitions (#9, #10, #12, #13)",
        ],
    }


def _fold_matrix(
    result: ExperimentResult,
    models: tuple[EmulatorModel, ...],
    quantities: dict[str, dict],
    ref: dict,
) -> None:
    """Verdict rows + meta from per-model quantities (cross-point, so it
    always runs in the assembling process: the verdict dicts are keyed
    by *int* observation ids, which a JSON round-trip would stringify)."""
    verdicts = {}
    for model in models:
        verdicts[model.name] = _verdicts(quantities[model.name], ref)
        result.meta[model.name] = quantities[model.name]
    for obs in PROBED_OBSERVATIONS:
        row = {"observation": f"#{obs}"}
        for model in models:
            row[model.name] = "yes" if verdicts[model.name].get(obs) else "no"
        result.add_row(**row)
    result.meta["verdicts"] = verdicts


def _plan_points(config) -> list:
    return [{"model": model.name} for model in ALL_MODELS]


def _run_point(config, params: dict) -> dict:
    """Probe one latency model; the probes are config-independent (the
    §IV matrix is a fixed-seed comparison, not a config sweep)."""
    model = {m.name: m for m in ALL_MODELS}[params["model"]]
    return {"quantities": probe_model(model)}


def _describe(config) -> dict:
    return _matrix_skeleton(ALL_MODELS)


def _fold(result: ExperimentResult, config, payloads: list) -> None:
    quantities = {p["quantities"]["name"]: p["quantities"] for p in payloads}
    _fold_matrix(result, ALL_MODELS, quantities,
                 ref=quantities[THIS_WORK.name])


#: Registered as an *auxiliary* experiment ("sec4"): resolvable by the
#: execution engine (``repro fidelity --jobs/--cache``) without joining
#: the default ``repro run`` suite.
FIDELITY_PLAN = ExperimentPlan("sec4", _plan_points, _run_point, _describe,
                               fold=_fold)


def run_fidelity_matrix(models: Optional[tuple[EmulatorModel, ...]] = None) -> ExperimentResult:
    """The §IV matrix: observation × emulator reproduction verdicts.

    With the default model set this is the serial reference path over
    :data:`FIDELITY_PLAN` — exactly what ``repro fidelity`` computes
    through the execution engine. A ``models`` subset (tests, notebooks)
    probes only those models against the calibrated reference.
    """
    if models is None:
        return run_via_points(FIDELITY_PLAN)
    ref = probe_model(THIS_WORK)
    quantities = {
        model.name: (ref if model is THIS_WORK else probe_model(model))
        for model in models
    }
    result = ExperimentResult(**_matrix_skeleton(models))
    _fold_matrix(result, models, quantities, ref)
    return result
