"""Emulator latency models (FEMU, NVMeVirt, ConfZNS) and fidelity harness."""

from .base import EmulatorModel
from .fidelity import PROBED_OBSERVATIONS, probe_model, run_fidelity_matrix
from .models import ALL_MODELS, CONFZNS, FEMU, NVMEVIRT, THIS_WORK

__all__ = [
    "ALL_MODELS",
    "CONFZNS",
    "EmulatorModel",
    "FEMU",
    "NVMEVIRT",
    "PROBED_OBSERVATIONS",
    "THIS_WORK",
    "probe_model",
    "run_fidelity_matrix",
]
