"""The shared device core under both SSD models.

The paper's central comparison runs a ZNS device (ZN540) and a
conventional device (SN640) with *the same hardware* under identical
host stacks; the simulated models mirror that by sharing one controller
pipeline. :class:`DeviceCore` owns everything the two models used to
duplicate:

* the **controller front-end** (single-server resource + per-command
  service time + jitter) and its trace spans,
* the **completion path** — :meth:`_complete` stamps the completion,
  feeds :class:`DeviceCounters`, the latency histograms, and the
  command trace span,
* the capacitor-backed **write buffer** and the per-die flush tail
  (:meth:`_flush_page_to_die`: program the page, drain the buffer),
* the :class:`~repro.device.planner.RequestPlanner` that memoizes
  per-request-shape plans, and the ``reformat`` hook that invalidates
  them when the namespace LBA format changes.

:class:`~repro.zns.device.ZnsDevice` and
:class:`~repro.conv.device.ConvDevice` are specializations holding only
what genuinely differs: the zone state machine + firmware management
engine on one side, the page-mapped FTL + garbage collector on the
other. ``DeviceCounters`` (and the priority constants) continue to be
re-exported from both historical module paths.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hostif.commands import Command, Completion, Opcode, make_completion
from ..hostif.namespace import LbaFormat, Namespace
from ..hostif.status import Status
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_NS, Counter, MetricsRegistry
from ..obs.tracer import Tracer, resolve_tracer
from ..sim.engine import Event, Simulator
from ..sim.resources import Container, Resource, ServiceLine
from ..sim.rng import LatencySampler, StreamFactory
from ..zns.profiles import DeviceProfile
from .planner import RequestPlanner

__all__ = ["DeviceCore", "DeviceCounters", "PRIO_IO", "PRIO_MGMT", "PRIO_PANIC"]

#: Firmware/flash scheduling priorities (lower value served first).
PRIO_IO = 0
PRIO_MGMT = 10
#: Power-loss handling preempts everything else queued at the controller.
PRIO_PANIC = -100


class DeviceCounters:
    """Completion accounting, backed by a :class:`MetricsRegistry`.

    Historically this held plain dicts; the registry is now the single
    source of truth and the dict-style attributes (``completed``,
    ``errors``, ``bytes_written``, ``bytes_read``) are read-only views
    kept for the existing callers and tests.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._completed = {
            op: self.metrics.counter(f"device.completed.{op.value}")
            for op in Opcode
        }
        self._bytes_written = self.metrics.counter("device.bytes_written")
        self._bytes_read = self.metrics.counter("device.bytes_read")
        self._errors: dict[Status, Counter] = {}

    def record(self, completion: Completion, nbytes: int) -> None:
        if completion.ok:
            # Direct ``.value`` bumps (amounts are known non-negative):
            # this runs once per completed command even with observability
            # disabled, so it must stay as close to a plain ``+=`` as the
            # registry backing allows.
            opcode = completion.command.opcode
            self._completed[opcode].value += 1
            if opcode in (Opcode.WRITE, Opcode.APPEND):
                self._bytes_written.value += nbytes
            elif opcode is Opcode.READ:
                self._bytes_read.value += nbytes
        else:
            counter = self._errors.get(completion.status)
            if counter is None:
                counter = self.metrics.counter(
                    f"device.errors.{completion.status.value}"
                )
                self._errors[completion.status] = counter
            counter.inc()

    @property
    def completed(self) -> dict[Opcode, int]:
        return {op: counter.value for op, counter in self._completed.items()}

    @property
    def errors(self) -> dict[Status, int]:
        return {status: c.value for status, c in self._errors.items() if c.value}

    @property
    def bytes_written(self) -> int:
        return self._bytes_written.value

    @property
    def bytes_read(self) -> int:
        return self._bytes_read.value


class DeviceCore:
    """Shared controller pipeline; subclasses add the media-side model."""

    #: Trace-process name prefix; subclasses override ("zns" / "conv").
    kind = "device"

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        capacity_bytes: int,
        lba_format: LbaFormat,
        streams: StreamFactory,
        tracer: Optional[Tracer],
        metrics: Optional[MetricsRegistry],
        io_stream: str,
        faults=None,
        telemetry=None,
    ):
        self.sim = sim
        self.profile = profile
        #: Retained for fault-adjacent streams created after construction
        #: (the ``"aging"`` stream behind :meth:`age`, DESIGN.md §17).
        self._streams = streams
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: True when the caller asked for observability. Hot paths gate
        #: per-command histogram/gauge updates on this so default runs
        #: pay only the always-on DeviceCounters facade. A telemetry
        #: collector implies observability: the sampler reads this
        #: device's registry, so the instrumented paths must feed it even
        #: when the caller never asked for aggregate ``--metrics`` output
        #: (the private registry created above absorbs them).
        self.observing = (
            metrics is not None or self.tracer.enabled or telemetry is not None
        )
        self.tracer.register_process(f"{self.kind}:{profile.name}")
        self.namespace = Namespace(capacity_bytes, lba_format)
        # Every controller acquisition is PRIO_IO except the power-cut
        # panic grab, so unless a power cut is armed the priority heap
        # degenerates to FIFO and the cheaper ServiceLine is
        # grant-order-identical (DESIGN.md §15).
        power_cut_armed = (
            faults is not None
            and faults.enabled
            and faults.power_cut_at_ns is not None
        )
        self.controller = (
            Resource(sim, capacity=1, name="controller")
            if power_cut_armed
            else ServiceLine(sim, name="controller")
        )
        self.buffer = Container(sim, capacity=profile.write_buffer_bytes, name="wbuf")
        self._io_jitter = LatencySampler(streams.stream(io_stream), profile.jitter_sigma)
        self.counters = DeviceCounters(self.metrics)
        self._latency_hist = {
            op: self.metrics.histogram(
                f"device.latency_ns.{op.value}", DEFAULT_LATENCY_BUCKETS_NS
            )
            for op in Opcode
        }
        self._wbuf_gauge = self.metrics.gauge("device.wbuf.level_bytes")
        #: Optional FaultInjector (DESIGN.md §12), built by the caller
        #: from a FaultPlan against this device's "faults" RNG stream.
        #: ``None`` (the default) must leave every path byte-identical.
        if faults is not None and faults.enabled:
            from ..faults.plan import FaultInjector

            self.faults = FaultInjector(faults, streams.stream("faults"),
                                        self.metrics)
            if faults.power_cut_at_ns is not None:
                sim.process(self._power_cut_process(), name="power-cut")
        else:
            self.faults = None
        #: Command id of the most recent ``submit`` (host stacks read it
        #: to tie their own spans to the device-assigned trace id).
        self.last_cid = 0
        self._page_size = profile.geometry.page_size
        self.planner = RequestPlanner(profile, self.namespace)
        #: Live ``nlb -> IoShape`` maps (one dict per opcode) for the
        #: generator hot paths; re-fetched by :meth:`_bind_plan_caches`
        #: whenever the planner invalidates.
        self._read_shapes: dict = {}
        self._write_shapes: dict = {}
        self._bind_plan_caches()
        #: Windowed timeseries sampler (DESIGN.md §13), attached to this
        #: device's simulator tick hook. ``None`` (the default) leaves
        #: the simulator hook-free and every path byte-identical. The
        #: subclass-populated hooks it reads (``backend``, zone tables,
        #: FTL) are only touched at window boundaries during the run,
        #: after construction completes.
        self.telemetry = telemetry.attach(self) if telemetry is not None else None

    # --------------------------------------------------------------- planner
    def _bind_plan_caches(self) -> None:
        """(Re)fetch the planner's live lookup tables after (re)binding."""
        self._read_shapes = self.planner.shape_map(Opcode.READ)
        self._write_shapes = self.planner.shape_map(Opcode.WRITE)
        self._block_size = self.namespace.block_size
        self._capacity_lbas = self.namespace.capacity_lbas

    def reformat(self, lba_format: LbaFormat) -> None:
        """NVMe ``Format NVM``: swap the LBA format and drop all plans.

        Requires a quiescent, logically-empty device — reformatting
        destroys the data anyway, so the models only support it as a
        between-experiments fixture. Every cached request plan keys on
        the LBA size and is invalidated.
        """
        self._require_reformattable()
        self.namespace = Namespace(self.namespace.capacity_bytes, lba_format)
        self.planner.invalidate(self.namespace)
        self._after_reformat()
        self._bind_plan_caches()

    def _require_reformattable(self) -> None:
        """Subclass veto hook (in-flight commands, non-empty zones...)."""

    def _after_reformat(self) -> None:
        """Subclass hook: rebuild LBA-denominated state (zone tables...)."""

    # ------------------------------------------------------------------ api
    def submit(self, command: Command) -> Event:
        """Begin executing a command; the event fires with a Completion."""
        if command.submitted_at < 0:
            command.submitted_at = self.sim.now
        cid = (
            self.tracer.begin_command(command.opcode.value)
            if self.tracer.enabled
            else 0
        )
        self.last_cid = cid
        # The process event itself is the completion event (the generator
        # returns the Completion): one event instead of a done-event plus
        # a never-watched process event per command.
        return self.sim.process(self._dispatch(command, cid))

    def _dispatch(self, command: Command, cid: int) -> Generator:
        """Map an opcode to its executor generator (model-specific)."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def _complete(self, command: Command, status: Status,
                  nbytes: int = 0, assigned_lba: Optional[int] = None,
                  cid: int = 0) -> Completion:
        completion = make_completion(command, status, self.sim.now, assigned_lba)
        self.counters.record(completion, nbytes)
        if self.observing and status.ok and command.submitted_at >= 0:
            self._latency_hist[command.opcode].observe(
                self.sim.now - command.submitted_at
            )
        if self.tracer.enabled:
            self.tracer.span(
                "command", command.opcode.value,
                command.submitted_at if command.submitted_at >= 0 else self.sim.now,
                self.sim.now, track="commands", cid=cid,
                opcode=command.opcode.value, status=status.value,
                slba=command.slba, nlb=command.nlb,
            )
        return completion

    def _controller_service(self, service_ns: int, cid: int = 0) -> Generator:
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = self.controller.request(PRIO_IO)
        yield req
        granted_at = self.sim.now if traced else 0
        yield self.sim.timeout(self._io_jitter.jitter(service_ns))
        self.controller.release(req)
        if traced:
            if granted_at > queued_at:
                self.tracer.span("queue", "controller.wait", queued_at,
                                 granted_at, track="controller", cid=cid)
            self.tracer.span("controller", "controller.service", granted_at,
                             self.sim.now, track="controller", cid=cid)

    # -------------------------------------------------------------- flushing
    def _flush_page_to_die(self, die: int, cancel: list | None = None,
                           wear=None) -> Generator:
        """Program one buffered page to a die, then drain the buffer.

        Returns the backend's injected-program-failure count, or ``-1``
        when a power cut cancelled the page before it reached the media
        (the power-cut handler already drained its bytes). ``wear`` is
        the touched unit's odometer for wear-dependent failure rates.
        """
        failures = yield from self.backend.program_page(
            die, priority=PRIO_IO, label="flush", cancel=cancel, wear=wear)
        if failures < 0:
            return failures
        yield self.buffer.get(self._page_size)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        return failures

    def _flush_page_to_die_fast(self, die: int) -> Generator:
        """Probe-free :meth:`_flush_page_to_die` for the fast dispatch
        table (tracer off, no observability, no faults): same events in
        the same order, no cancel token, no gauge update."""
        yield from self.backend.program_page_fast(die)
        yield self.buffer.get(self._page_size)

    # ------------------------------------------------------------ power loss
    def _power_cut_process(self) -> Generator:
        """Scheduled power-cut + recovery replay (DESIGN.md §12).

        At the cut instant the controller is seized at ``PRIO_PANIC``,
        the queued-but-unprogrammed write-buffer tail beyond the PLP
        capacitor budget is dropped (in-flight NAND programs complete on
        capacitor energy), model-specific state is rolled back
        (:meth:`_power_loss_drop`), and the firmware "boot" cost is paid
        while the controller is held — every command queued behind the
        panic request observes the recovery latency.
        """
        plan = self.faults.plan
        yield self.sim.timeout(plan.power_cut_at_ns)
        req = self.controller.request(PRIO_PANIC)
        yield req
        target = self.buffer.level - plan.plp_budget_bytes
        target -= target % self._block_size
        dropped, recovery_units = (
            self._power_loss_drop(target) if target > 0 else (0, 0)
        )
        if dropped:
            self.buffer.drain(dropped)
            if self.observing:
                self._wbuf_gauge.set(self.buffer.level)
        recovery = plan.recovery_base_ns + self._recovery_ns(recovery_units)
        self.faults.power_cuts.inc()
        self.faults.bytes_lost.inc(dropped)
        self.faults.recovery_ns.inc(recovery)
        if self.tracer.enabled:
            start = self.sim.now
            self.tracer.instant("fault", "power_cut", start,
                                track="controller", bytes_lost=dropped)
        yield self.sim.timeout(recovery)
        if self.tracer.enabled:
            self.tracer.span("fault", "power_loss_recovery", start,
                             self.sim.now, track="controller")
        self.controller.release(req)

    # ------------------------------------------------------------ telemetry
    def _telemetry_levels(self) -> dict:
        """Instantaneous levels sampled per telemetry window (model hook).

        Keys are column names; values are point-in-time numbers the
        registry does not carry. Subclasses extend with their media-side
        state (zone census, FTL free space, GC occupancy).
        """
        controller = self.controller
        return {
            "ctrl.queue": controller.queue_length + controller.in_use,
            "wbuf.level_bytes": self.buffer.level,
        }

    def _telemetry_cumulative(self) -> dict:
        """Monotonic totals sampled per window; the sampler emits deltas
        (``*.busy_ns`` keys become busy fractions of the window)."""
        backend = getattr(self, "backend", None)
        if backend is None:
            return {}
        return {
            f"nand.die{i}.busy_ns": busy
            for i, busy in enumerate(backend._die_busy_ns)
        }

    def _power_loss_drop(self, target: int) -> tuple[int, int]:
        """Drop up to ``target`` unpersisted buffered bytes (model hook).

        Returns ``(bytes_dropped, recovery_units)`` where the units feed
        :meth:`_recovery_ns` (rolled-back zones for ZNS, mapped pages
        for the conventional FTL).
        """
        return 0, 0

    def _recovery_ns(self, units: int) -> int:
        """Model-specific boot-replay cost beyond the fixed base."""
        return 0
