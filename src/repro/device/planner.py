"""Precomputed request plans: the device hot paths as table lookups.

Both SSD models execute millions of commands whose *shape* — opcode,
block count, alignment within the stripe — repeats endlessly while the
per-command arithmetic (service-time formula, DMA cost, die-span
derivation) was recomputed from scratch inside every generator body.
The :class:`RequestPlanner` memoizes that arithmetic into immutable
plans so the generator bodies shrink to dictionary lookups plus yields:

* :class:`IoShape` — per-``(opcode, nlb)`` costs: request bytes, nominal
  controller service time, buffer-admission time (DMA + admit [+ append
  allocation]), and the post-completion firmware mapping-update debt.
* :meth:`RequestPlanner.read_spans` — the ZNS read fan-out set
  ``((die, bytes), ...)`` keyed by ``(zone stripe class, offset mod
  stripe period, nbytes)``. Zone striping is periodic: two zones with
  the same die group and rotation serve byte-identical spans, and a
  span's die list repeats every ``stripe_width`` pages — so a handful
  of cached plans cover every read a workload can issue.
* :meth:`RequestPlanner.die_for_page` — O(1) flush-target lookup from a
  per-zone stripe table (replacing the modular arithmetic chain in
  :meth:`~repro.zns.ftl.ZoneStriping.die_for_page`).
* :meth:`RequestPlanner.page_plan` — the conventional model's page-span
  geometry ``(start page, page count, per-page transfer)`` keyed by
  ``(offset in page, nbytes)``.

Plans depend only on the device profile, the stripe layout, and the
namespace LBA format; all are fixed for a device's lifetime **except**
the LBA format, which an NVMe ``Format NVM`` may change. Reformatting
(:meth:`~repro.device.core.DeviceCore.reformat`) therefore calls
:meth:`invalidate`, which drops every cached plan. ``plans_built`` /
``invalidations`` expose the cache dynamics to tests and the profiler.

Every plan value is computed by exactly the expressions the generator
bodies used inline, so planned execution is byte-identical to the
pre-planner device models (enforced by the determinism suite and the
golden tables under ``tests/golden/``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..hostif.commands import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hostif.namespace import Namespace
    from ..zns.ftl import ZoneStriping
    from ..zns.profiles import DeviceProfile

__all__ = ["IoShape", "RequestPlanner"]


class IoShape:
    """Immutable per-request-shape cost vector (one per ``(opcode, nlb)``)."""

    __slots__ = ("opcode", "nlb", "nbytes", "service_ns", "admit_ns", "fw_ns")

    def __init__(self, opcode: Opcode, nlb: int, nbytes: int,
                 service_ns: int, admit_ns: int, fw_ns: int):
        self.opcode = opcode
        self.nlb = nlb
        #: Host-visible transfer size (``nlb`` × LBA size).
        self.nbytes = nbytes
        #: Nominal controller service time (pre-jitter).
        self.service_ns = service_ns
        #: DMA + buffer-admission time (writes/appends; 0 for reads).
        self.admit_ns = admit_ns
        #: Firmware mapping-update debt one completion generates.
        self.fw_ns = fw_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IoShape({self.opcode.value}, nlb={self.nlb}, "
                f"nbytes={self.nbytes}, service_ns={self.service_ns})")


class RequestPlanner:
    """Memoizes immutable request plans for one device instance."""

    __slots__ = (
        "profile", "namespace", "striping", "plans_built", "invalidations",
        "_shapes", "_spans", "_zone_tables", "_tables_by_key",
        "_page_size", "_stripe_width", "_period", "_block_size",
    )

    def __init__(self, profile: "DeviceProfile", namespace: "Namespace",
                 striping: Optional["ZoneStriping"] = None):
        self.profile = profile
        self.striping = None
        self._page_size = profile.geometry.page_size
        self._stripe_width = 0
        self._period = 0
        #: Plans computed (cache misses) / cache wipes, cumulative.
        self.plans_built = 0
        self.invalidations = 0
        self._shapes: dict[Opcode, dict[int, IoShape]] = {}
        self._spans: dict = {}
        self._zone_tables: dict[int, tuple] = {}
        self._tables_by_key: dict[int, tuple] = {}
        if striping is not None:
            self.bind_striping(striping)
        self.rebind(namespace)

    # ------------------------------------------------------------- lifecycle
    def bind_striping(self, striping: "ZoneStriping") -> None:
        """Attach the zone stripe layout (ZNS devices only)."""
        self.striping = striping
        self._stripe_width = striping.stripe_width
        self._period = striping.stripe_width * self._page_size
        self._spans.clear()
        self._zone_tables.clear()
        self._tables_by_key.clear()

    def rebind(self, namespace: "Namespace") -> None:
        """Point the planner at a (possibly reformatted) namespace."""
        self.namespace = namespace
        self._block_size = namespace.block_size
        self._shapes = {op: {} for op in Opcode}

    def invalidate(self, namespace: Optional["Namespace"] = None) -> None:
        """Drop every cached plan (namespace reformat, layout change)."""
        self.invalidations += 1
        self._spans.clear()
        self._zone_tables.clear()
        self._tables_by_key.clear()
        self.rebind(namespace if namespace is not None else self.namespace)

    @property
    def cached_plans(self) -> int:
        """Plans currently held (shapes + spans + stripe tables)."""
        return (sum(len(d) for d in self._shapes.values())
                + len(self._spans) + len(self._tables_by_key))

    # ---------------------------------------------------------------- shapes
    def shape_map(self, opcode: Opcode) -> dict[int, "IoShape"]:
        """The live ``nlb -> IoShape`` dict for one opcode.

        Hot paths hold this dict directly and fall back to
        :meth:`io_shape` on a miss; the planner never replaces the dict
        in place except through :meth:`invalidate`/:meth:`rebind` (after
        which callers must re-fetch it).
        """
        return self._shapes[opcode]

    def io_shape(self, opcode: Opcode, nlb: int) -> IoShape:
        """The cost vector for an ``(opcode, nlb)`` request shape."""
        by_nlb = self._shapes[opcode]
        shape = by_nlb.get(nlb)
        if shape is None:
            shape = self._build_shape(opcode, nlb)
            by_nlb[nlb] = shape
            self.plans_built += 1
        return shape

    def _build_shape(self, opcode: Opcode, nlb: int) -> IoShape:
        profile = self.profile
        nbytes = self.namespace.bytes_of(nlb)
        service_ns = profile.cmd_service_ns(opcode, nbytes, nlb, self._block_size)
        if opcode is Opcode.WRITE:
            admit_ns = profile.dma_ns(nbytes) + profile.write_admit_ns
        elif opcode is Opcode.APPEND:
            admit_ns = (profile.dma_ns(nbytes) + profile.write_admit_ns
                        + profile.append_alloc_ns)
        else:
            admit_ns = 0
        if opcode in (Opcode.READ, Opcode.WRITE, Opcode.APPEND):
            fw_ns = profile.fw_io_ns(opcode)
        else:
            fw_ns = 0
        return IoShape(opcode, nlb, nbytes, service_ns, admit_ns, fw_ns)

    # ----------------------------------------------------------- ZNS striping
    def zone_table(self, zone_index: int) -> tuple:
        """Per-zone stripe table: ``table[page % len(table)]`` is the die."""
        table = self._zone_tables.get(zone_index)
        if table is None:
            die0 = self.striping.die_for_page(zone_index, 0)
            # Zones with the same first die share the whole table (the
            # first die encodes both the die group and the rotation).
            table = self._tables_by_key.get(die0)
            if table is None:
                table = tuple(
                    self.striping.die_for_page(zone_index, page)
                    for page in range(self._stripe_width)
                )
                self._tables_by_key[die0] = table
                self.plans_built += 1
            self._zone_tables[zone_index] = table
        return table

    def die_for_page(self, zone_index: int, zone_page: int) -> int:
        """Flush-target die for the ``zone_page``-th page of a zone."""
        table = self._zone_tables.get(zone_index)
        if table is None:
            table = self.zone_table(zone_index)
        return table[zone_page % self._stripe_width]

    def read_spans(self, zone_index: int, offset_bytes: int,
                   nbytes: int) -> tuple:
        """The read fan-out set ``((die, bytes), ...)`` for a zone span.

        Identical to :meth:`ZoneStriping.dies_for_span` output (tuples,
        not lists), memoized on ``(stripe class, offset mod stripe
        period, nbytes)`` — striping is periodic, so the canonical
        offset's span list is exact for every member of the class.
        """
        table = self._zone_tables.get(zone_index)
        if table is None:
            table = self.zone_table(zone_index)
        key = (table[0], offset_bytes % self._period, nbytes)
        spans = self._spans.get(key)
        if spans is None:
            page_size = self._page_size
            width = self._stripe_width
            parts = []
            cursor = key[1]
            end = cursor + nbytes
            while cursor < end:
                page = cursor // page_size
                take = min(end, (page + 1) * page_size) - cursor
                parts.append((table[page % width], take))
                cursor += take
            spans = tuple(parts)
            self._spans[key] = spans
            self.plans_built += 1
        return spans

    # --------------------------------------------------------- conv geometry
    def page_plan(self, slba: int, nlb: int) -> tuple:
        """``(start_page, page_count, per_page_take)`` for a flat span.

        The conventional model resolves pages through its FTL at
        execution time (the mapping is dynamic), so only the geometry —
        how many flash pages a request touches and how many bytes each
        contributes to the bus transfer — is precomputable.
        """
        start = slba * self._block_size
        nbytes = nlb * self._block_size
        key = (start % self._page_size, nbytes)
        plan = self._spans.get(key)
        if plan is None:
            page_size = self._page_size
            n_pages = -(-(key[0] + nbytes) // page_size)
            plan = (n_pages, min(page_size, nbytes))
            self._spans[key] = plan
            self.plans_built += 1
        return (start // self._page_size, plan[0], plan[1])
