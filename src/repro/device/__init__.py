"""Shared device core: controller pipeline + precomputed request plans.

:class:`DeviceCore` (``core``) owns the pipeline both SSD models share —
controller front-end, completion path, counters, write buffer and flush
tail — and :class:`RequestPlanner` (``planner``) memoizes the per-request
arithmetic. The concrete models live in :mod:`repro.zns.device` and
:mod:`repro.conv.device`.
"""

from .core import PRIO_IO, PRIO_MGMT, DeviceCore, DeviceCounters
from .planner import IoShape, RequestPlanner

__all__ = [
    "DeviceCore",
    "DeviceCounters",
    "IoShape",
    "RequestPlanner",
    "PRIO_IO",
    "PRIO_MGMT",
]
