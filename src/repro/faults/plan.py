"""Deterministic fault plans and the seed-driven fault injector.

A :class:`FaultPlan` is a frozen, JSON-serializable description of *what
can go wrong* during a run: NAND media error rates (read disturb,
program failures, erase failures), firmware retirement thresholds, an
optional scheduled power cut against the capacitor-backed write buffer,
and host-side resilience policy (command timeout, bounded retry).

A :class:`FaultInjector` binds a plan to one device's named RNG stream
(``streams.stream("faults")``) and to the device's metrics registry.
Because every device already owns a per-point-salted
:class:`~repro.sim.rng.StreamFactory`, fault draws are independent of
worker count and scheduling order: a fault run is bit-reproducible at
any ``--jobs`` value.

The disabled case is load-bearing: ``resolve(None)`` / ``resolve("none")``
return ``None``, devices skip every hook, and **zero extra events and
zero RNG draws** are added — output stays byte-identical to a build
without this module (DESIGN.md §12).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Optional

from ..sim.engine import ms, us
from .wear import WearCurve, WearTracker

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultPlanError",
    "NULL_FAULT_PLAN",
    "FAULT_PRESETS",
    "WearCurve",
    "resolve",
    "describe_presets",
]

KIB = 1024


class FaultPlanError(ValueError):
    """Raised for unknown presets, bad JSON profiles, or invalid fields."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of injected faults for one run.

    All probabilities are per-operation. Rates of 0 (the default) mean
    the corresponding hook is never armed; a plan whose every knob is
    inert reports ``enabled == False`` and behaves exactly like no plan
    at all (the ``NullFaultPlan`` of DESIGN.md §12).
    """

    name: str = "none"

    # -- media: reads ----------------------------------------------------
    #: Probability a page read hits a read-disturb soft error and enters
    #: the firmware read-retry ladder.
    read_disturb_prob: float = 0.0
    #: Maximum ladder depth: each retry re-senses the page (one extra
    #: ``read_ns`` with the die held, or ``read_retry_step_ns`` if set).
    read_retry_max: int = 3
    #: Optional override for the per-retry latency step (0 = ``read_ns``).
    read_retry_step_ns: int = 0
    #: Fraction of disturbed reads that exhaust the full ladder and stay
    #: uncorrectable — the host sees ``MEDIA_UNRECOVERED_READ`` (DNR).
    read_uncorrectable_frac: float = 0.0

    # -- media: programs -------------------------------------------------
    #: Probability a page program fails; the firmware remaps and retries
    #: on the same die (each failure costs one extra ``program_ns``).
    program_fail_prob: float = 0.0
    #: Cap on consecutive program failures absorbed per page.
    program_retry_max: int = 3

    # -- media: erases ---------------------------------------------------
    #: Probability a block erase attempt fails (retried in firmware).
    erase_fail_prob: float = 0.0
    #: Extra erase attempts before the block is declared bad.
    erase_retry_max: int = 2

    # -- wear curves (DESIGN.md §17) -------------------------------------
    #: Optional wear-dependent overrides for the static probabilities
    #: above: when set, the per-op probability is ``curve.value(wear)``
    #: of the touched unit's erase count instead of the flat field. A
    #: flat curve (slope 0) reproduces the static plan byte-for-byte.
    read_disturb_curve: Optional[WearCurve] = None
    program_fail_curve: Optional[WearCurve] = None
    erase_fail_curve: Optional[WearCurve] = None
    #: Read-disturb exposure: every N reads of a unit since its last
    #: erase add one effective erase of wear to the read curve's input
    #: (0 = reads don't disturb). The exposure counter resets on erase.
    read_disturb_exposure_reads: int = 0

    # -- firmware retirement (ZNS) ---------------------------------------
    #: Cumulative program failures in a zone after which the firmware
    #: retires it to ``READ_ONLY`` (0 = never).
    retire_read_only_after: int = 0
    #: ... and after which it goes ``OFFLINE`` (0 = never).
    retire_offline_after: int = 0
    #: Wear-threshold retirement: zone erase counts at which the
    #: firmware retires the zone to ``READ_ONLY`` / ``OFFLINE``
    #: regardless of observed failures (0 = never). This is how an aged
    #: device sheds capacity even before programs start failing.
    retire_read_only_erases: int = 0
    retire_offline_erases: int = 0
    #: Per-access indirection penalty (ns) for reads/programs that land
    #: on a conventional-FTL block remapped from the spare pool after a
    #: bad-block erase failure.
    bad_block_remap_ns: int = us(25)

    # -- power loss ------------------------------------------------------
    #: Simulated time (ns) of a single power-cut event (None = never).
    power_cut_at_ns: Optional[int] = None
    #: Capacitor energy budget: bytes of queued-but-unprogrammed buffer
    #: the PLP capacitors can still flush; the rest of the tail is lost.
    #: (In-flight NAND programs always complete on capacitor energy.)
    plp_budget_bytes: int = 0
    #: Fixed firmware boot cost paid while the controller is seized.
    recovery_base_ns: int = ms(2)
    #: Per-rolled-back-zone recovery cost (ZNS write-pointer rebuild).
    recovery_per_zone_ns: int = us(150)
    #: Per-mapped-page L2P scan cost (conventional FTL rebuild).
    recovery_per_page_ns: int = 40

    # -- host resilience policy ------------------------------------------
    #: Host-side command timeout (None = wait forever, today's behavior).
    command_timeout_ns: Optional[int] = None
    #: Bounded retries for completions with a retryable status.
    max_retries: int = 3
    #: Base backoff before a retry; doubles per attempt.
    retry_backoff_ns: int = us(50)

    def __post_init__(self):
        for field in ("read_disturb_prob", "read_uncorrectable_frac",
                      "program_fail_prob", "erase_fail_prob"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(f"{field} must be in [0, 1], got {value!r}")
        for field in ("read_retry_max", "program_retry_max", "erase_retry_max",
                      "max_retries", "read_disturb_exposure_reads",
                      "bad_block_remap_ns"):
            if getattr(self, field) < 0:
                raise FaultPlanError(f"{field} must be >= 0")
        for field in ("read_disturb_curve", "program_fail_curve",
                      "erase_fail_curve"):
            curve = getattr(self, field)
            if curve is not None and not isinstance(curve, WearCurve):
                raise FaultPlanError(
                    f"{field} must be a WearCurve, got {type(curve).__name__}")
        for low, high in (("retire_read_only_after", "retire_offline_after"),
                          ("retire_read_only_erases", "retire_offline_erases")):
            lo, hi = getattr(self, low), getattr(self, high)
            if lo < 0 or hi < 0:
                raise FaultPlanError(f"{low}/{high} must be >= 0")
            if 0 < hi <= lo:
                raise FaultPlanError(
                    f"{high} ({hi}) must exceed {low} ({lo}): zones would "
                    "skip READ_ONLY and go straight OFFLINE")
        if self.power_cut_at_ns is not None and self.power_cut_at_ns < 0:
            raise FaultPlanError("power_cut_at_ns must be >= 0")

    @staticmethod
    def _armed(prob: float, curve: Optional[WearCurve]) -> bool:
        return curve.armed if curve is not None else prob > 0.0

    @property
    def enabled(self) -> bool:
        """True if any fault source or host policy is armed."""
        return (
            self.media_enabled
            or self.power_cut_at_ns is not None
            or self.command_timeout_ns is not None
            or self.retire_read_only_erases > 0
            or self.retire_offline_erases > 0
        )

    @property
    def erase_faults_enabled(self) -> bool:
        """True if block erases can fail (static prob or armed curve) —
        the conventional FTL reserves its bad-block spare pool iff so."""
        return self._armed(self.erase_fail_prob, self.erase_fail_curve)

    @property
    def media_enabled(self) -> bool:
        return (self._armed(self.read_disturb_prob, self.read_disturb_curve)
                or self._armed(self.program_fail_prob, self.program_fail_curve)
                or self._armed(self.erase_fail_prob, self.erase_fail_curve))

    @property
    def wear_enabled(self) -> bool:
        """True if any wear curve or wear threshold can change behavior."""
        return (
            any(curve is not None and not curve.flat
                for curve in (self.read_disturb_curve, self.program_fail_curve,
                              self.erase_fail_curve))
            or self.read_disturb_exposure_reads > 0
            or self.retire_read_only_erases > 0
            or self.retire_offline_erases > 0
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


#: The canonical disabled plan (every hook inert).
NULL_FAULT_PLAN = FaultPlan()

#: Named presets selectable via ``repro run --faults <name>``.
FAULT_PRESETS: dict[str, FaultPlan] = {
    "none": NULL_FAULT_PLAN,
    # Aging NAND: frequent read-disturb retries, a small uncorrectable
    # residue — the latency-tail profile of Tehrany et al.'s worn drives.
    # The disturb rate is wear-dependent: it climbs with erase count and
    # with read exposure since the last erase (DESIGN.md §17).
    "read-disturb": FaultPlan(
        name="read-disturb",
        read_retry_max=4,
        read_uncorrectable_frac=0.02,
        read_disturb_curve=WearCurve(base=0.05, knee=4, slope=0.01, cap=0.5),
        read_disturb_exposure_reads=64,
    ),
    # End-of-life media: program/erase failures drive remaps and, on the
    # ZNS side, zone retirement to READ_ONLY and then OFFLINE. The
    # failure rates climb with erase count past the knee, and heavily
    # cycled zones retire on erase-count thresholds alone.
    "wearout": FaultPlan(
        name="wearout",
        program_retry_max=2,
        erase_retry_max=2,
        retire_read_only_after=6,
        retire_offline_after=12,
        program_fail_curve=WearCurve(base=0.02, knee=8, slope=0.004, cap=0.30),
        erase_fail_curve=WearCurve(base=0.01, knee=8, slope=0.002, cap=0.20),
        retire_read_only_erases=48,
        retire_offline_erases=96,
    ),
    # A single mid-run power cut with a small PLP budget: the queued
    # write-buffer tail is dropped and recovery is replayed on boot.
    "power-cut": FaultPlan(
        name="power-cut",
        power_cut_at_ns=ms(2),
        plp_budget_bytes=256 * KIB,
    ),
    # Everything at once, plus an aggressive host timeout: the sweep
    # must still terminate with degraded-mode accounting.
    "chaos": FaultPlan(
        name="chaos",
        read_disturb_prob=0.10,
        read_retry_max=4,
        read_uncorrectable_frac=0.05,
        program_fail_prob=0.05,
        program_retry_max=2,
        erase_fail_prob=0.02,
        retire_read_only_after=16,
        retire_offline_after=40,
        power_cut_at_ns=ms(2),
        plp_budget_bytes=128 * KIB,
        command_timeout_ns=ms(2),
        max_retries=2,
        retry_backoff_ns=us(20),
    ),
}

_PRESET_NOTES = {
    "none": "no faults (byte-identical to running without --faults)",
    "read-disturb": "wear-rising read-retry ladders + a 2% uncorrectable residue",
    "wearout": "wear-rising program/erase failures with zone retirement",
    "power-cut": "one power cut at t=2ms, 256 KiB PLP budget",
    "chaos": "all media faults + power cut + 2ms host command timeout",
}

_PLAN_FIELDS = {f.name for f in dataclasses.fields(FaultPlan)}
_CURVE_FIELDS = ("read_disturb_curve", "program_fail_curve",
                 "erase_fail_curve")


def _load_profile(path: str) -> FaultPlan:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        raise FaultPlanError(f"cannot read fault profile {path!r}: {error}") from error
    if not isinstance(data, dict):
        raise FaultPlanError(f"fault profile {path!r} must be a JSON object")
    unknown = sorted(set(data) - _PLAN_FIELDS)
    if unknown:
        raise FaultPlanError(
            f"fault profile {path!r} has unknown fields: {', '.join(unknown)}")
    for field in _CURVE_FIELDS:
        if data.get(field) is not None:
            try:
                data[field] = WearCurve.from_dict(data[field])
            except (TypeError, ValueError) as error:
                raise FaultPlanError(
                    f"fault profile {path!r} field {field}: {error}"
                ) from error
    data.setdefault("name", os.path.splitext(os.path.basename(path))[0])
    return FaultPlan(**data)


def resolve(spec: Optional[str]) -> Optional[FaultPlan]:
    """Map a ``--faults`` value (preset name or JSON path) to a plan.

    Returns ``None`` when the spec selects no faults, so callers can use
    plain ``is None`` checks on their hot paths.
    """
    if spec is None or spec == "":
        return None
    plan = FAULT_PRESETS.get(spec)
    if plan is None:
        if spec.endswith(".json") or os.path.sep in spec or os.path.exists(spec):
            plan = _load_profile(spec)
        else:
            known = ", ".join(sorted(FAULT_PRESETS))
            raise FaultPlanError(
                f"unknown fault preset {spec!r} (known: {known}; "
                "or pass a path to a JSON profile)")
    return plan if plan.enabled else None


def describe_presets() -> list[tuple[str, str]]:
    """(name, description) pairs for ``repro faults list``."""
    return [(name, _PRESET_NOTES.get(name, "")) for name in FAULT_PRESETS]


class FaultInjector:
    """Binds a :class:`FaultPlan` to a device's RNG stream and metrics.

    One injector per device instance. All draws come from the device's
    ``"faults"`` stream (per-point salted by the execution engine), in a
    fixed per-operation order, so outcomes depend only on (seed, salt,
    operation sequence) — never on worker count or wall-clock timing.
    Uniform variates are drawn in batches (like
    :class:`~repro.sim.rng.LatencySampler`) to keep the per-op cost to a
    list index; batching does not change the draw sequence.
    """

    _BATCH = 256

    def __init__(self, plan: FaultPlan, rng, metrics):
        self.plan = plan
        self._rng = rng
        self._batch: list[float] = []
        self._cursor = 0
        #: Per-unit lifetime state (ZNS zones / conv blocks). Owned here
        #: so the flash backend and both FTLs share one odometer per
        #: device, and devices can snapshot/restore it (DESIGN.md §17).
        self.wear = WearTracker()
        counter = metrics.counter
        self.injected = counter("faults.injected")
        self.read_disturbs = counter("faults.read_disturbs")
        self.read_retries = counter("faults.read_retries")
        self.read_uncorrectable = counter("faults.read_uncorrectable")
        self.program_failures = counter("faults.program_failures")
        self.erase_retries = counter("faults.erase_retries")
        self.erase_failures = counter("faults.erase_failures")
        self.zones_read_only = counter("faults.zones_read_only")
        self.zones_offlined = counter("faults.zones_offlined")
        self.bad_blocks_remapped = counter("faults.bad_blocks_remapped")
        self.power_cuts = counter("faults.power_cuts")
        self.bytes_lost = counter("faults.bytes_lost")
        self.recovery_ns = counter("faults.recovery_ns")
        self.max_erase_count = metrics.gauge("faults.max_erase_count")

    def _u(self) -> float:
        cursor = self._cursor
        if cursor == len(self._batch):
            self._batch = self._rng.random(self._BATCH).tolist()
            cursor = 0
        self._cursor = cursor + 1
        return self._batch[cursor]

    # -- wear bookkeeping ------------------------------------------------
    def note_erase(self, wear) -> None:
        """Record one successful erase of a unit: odometer up, read
        exposure back to zero, high-watermark gauge refreshed."""
        wear.erase_count += 1
        wear.reads_since_erase = 0
        if wear.erase_count > self.max_erase_count.value:
            self.max_erase_count.set(wear.erase_count)

    def _read_prob(self, wear) -> float:
        plan = self.plan
        curve = plan.read_disturb_curve
        if curve is None:
            return plan.read_disturb_prob
        if wear is None:
            return curve.value(0)
        exposure = wear.erase_count
        window = plan.read_disturb_exposure_reads
        if window > 0:
            exposure += wear.reads_since_erase // window
        return curve.value(exposure)

    def _program_prob(self, wear) -> float:
        curve = self.plan.program_fail_curve
        if curve is None:
            return self.plan.program_fail_prob
        return curve.value(wear.erase_count if wear is not None else 0)

    def _erase_prob(self, wear) -> float:
        curve = self.plan.erase_fail_curve
        if curve is None:
            return self.plan.erase_fail_prob
        return curve.value(wear.erase_count if wear is not None else 0)

    # -- per-operation outcomes ------------------------------------------
    def read_outcome(self, wear=None) -> tuple[int, bool]:
        """(extra retry senses, uncorrectable?) for one page read.

        ``wear`` is the touched unit's odometer: its erase count (plus
        read exposure) selects the disturb probability, and the read
        itself bumps the exposure counter.
        """
        plan = self.plan
        prob = self._read_prob(wear)
        if wear is not None:
            wear.reads_since_erase += 1
        if prob <= 0.0 or self._u() >= prob:
            return 0, False
        self.injected.inc()
        self.read_disturbs.inc()
        if (plan.read_uncorrectable_frac > 0.0
                and self._u() < plan.read_uncorrectable_frac):
            # The ladder runs to exhaustion and still fails.
            self.read_retries.inc(plan.read_retry_max)
            self.read_uncorrectable.inc()
            return plan.read_retry_max, True
        if plan.read_retry_max <= 0:
            return 0, False
        retries = 1 + int(self._u() * plan.read_retry_max)
        retries = min(retries, plan.read_retry_max)
        self.read_retries.inc(retries)
        return retries, False

    def program_outcome(self, wear=None) -> int:
        """Number of failed program attempts before one page sticks.

        ``wear`` only *selects* the probability here; the caller folds
        the returned failures into the odometer at completion time so
        accumulation and retirement checks stay atomic per flush.
        """
        plan = self.plan
        prob = self._program_prob(wear)
        if prob <= 0.0:
            return 0
        failures = 0
        while failures < plan.program_retry_max and self._u() < prob:
            failures += 1
        if failures:
            self.injected.inc(failures)
            self.program_failures.inc(failures)
        return failures

    def erase_outcome(self, wear=None) -> tuple[int, bool]:
        """(extra erase attempts, block went bad?) for one block erase."""
        plan = self.plan
        prob = self._erase_prob(wear)
        if prob <= 0.0:
            return 0, False
        retries = 0
        while retries < plan.erase_retry_max and self._u() < prob:
            retries += 1
        if retries:
            self.injected.inc(retries)
            self.erase_retries.inc(retries)
        failed = retries >= plan.erase_retry_max > 0
        if failed:
            self.erase_failures.inc()
        return retries, failed
