"""Deterministic fault plans and the seed-driven fault injector.

A :class:`FaultPlan` is a frozen, JSON-serializable description of *what
can go wrong* during a run: NAND media error rates (read disturb,
program failures, erase failures), firmware retirement thresholds, an
optional scheduled power cut against the capacitor-backed write buffer,
and host-side resilience policy (command timeout, bounded retry).

A :class:`FaultInjector` binds a plan to one device's named RNG stream
(``streams.stream("faults")``) and to the device's metrics registry.
Because every device already owns a per-point-salted
:class:`~repro.sim.rng.StreamFactory`, fault draws are independent of
worker count and scheduling order: a fault run is bit-reproducible at
any ``--jobs`` value.

The disabled case is load-bearing: ``resolve(None)`` / ``resolve("none")``
return ``None``, devices skip every hook, and **zero extra events and
zero RNG draws** are added — output stays byte-identical to a build
without this module (DESIGN.md §12).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Optional

from ..sim.engine import ms, us

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultPlanError",
    "NULL_FAULT_PLAN",
    "FAULT_PRESETS",
    "resolve",
    "describe_presets",
]

KIB = 1024


class FaultPlanError(ValueError):
    """Raised for unknown presets, bad JSON profiles, or invalid fields."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of injected faults for one run.

    All probabilities are per-operation. Rates of 0 (the default) mean
    the corresponding hook is never armed; a plan whose every knob is
    inert reports ``enabled == False`` and behaves exactly like no plan
    at all (the ``NullFaultPlan`` of DESIGN.md §12).
    """

    name: str = "none"

    # -- media: reads ----------------------------------------------------
    #: Probability a page read hits a read-disturb soft error and enters
    #: the firmware read-retry ladder.
    read_disturb_prob: float = 0.0
    #: Maximum ladder depth: each retry re-senses the page (one extra
    #: ``read_ns`` with the die held, or ``read_retry_step_ns`` if set).
    read_retry_max: int = 3
    #: Optional override for the per-retry latency step (0 = ``read_ns``).
    read_retry_step_ns: int = 0
    #: Fraction of disturbed reads that exhaust the full ladder and stay
    #: uncorrectable — the host sees ``MEDIA_UNRECOVERED_READ`` (DNR).
    read_uncorrectable_frac: float = 0.0

    # -- media: programs -------------------------------------------------
    #: Probability a page program fails; the firmware remaps and retries
    #: on the same die (each failure costs one extra ``program_ns``).
    program_fail_prob: float = 0.0
    #: Cap on consecutive program failures absorbed per page.
    program_retry_max: int = 3

    # -- media: erases ---------------------------------------------------
    #: Probability a block erase attempt fails (retried in firmware).
    erase_fail_prob: float = 0.0
    #: Extra erase attempts before the block is declared bad.
    erase_retry_max: int = 2

    # -- firmware retirement (ZNS) ---------------------------------------
    #: Cumulative program failures in a zone after which the firmware
    #: retires it to ``READ_ONLY`` (0 = never).
    retire_read_only_after: int = 0
    #: ... and after which it goes ``OFFLINE`` (0 = never).
    retire_offline_after: int = 0

    # -- power loss ------------------------------------------------------
    #: Simulated time (ns) of a single power-cut event (None = never).
    power_cut_at_ns: Optional[int] = None
    #: Capacitor energy budget: bytes of queued-but-unprogrammed buffer
    #: the PLP capacitors can still flush; the rest of the tail is lost.
    #: (In-flight NAND programs always complete on capacitor energy.)
    plp_budget_bytes: int = 0
    #: Fixed firmware boot cost paid while the controller is seized.
    recovery_base_ns: int = ms(2)
    #: Per-rolled-back-zone recovery cost (ZNS write-pointer rebuild).
    recovery_per_zone_ns: int = us(150)
    #: Per-mapped-page L2P scan cost (conventional FTL rebuild).
    recovery_per_page_ns: int = 40

    # -- host resilience policy ------------------------------------------
    #: Host-side command timeout (None = wait forever, today's behavior).
    command_timeout_ns: Optional[int] = None
    #: Bounded retries for completions with a retryable status.
    max_retries: int = 3
    #: Base backoff before a retry; doubles per attempt.
    retry_backoff_ns: int = us(50)

    def __post_init__(self):
        for field in ("read_disturb_prob", "read_uncorrectable_frac",
                      "program_fail_prob", "erase_fail_prob"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(f"{field} must be in [0, 1], got {value!r}")
        for field in ("read_retry_max", "program_retry_max", "erase_retry_max",
                      "max_retries"):
            if getattr(self, field) < 0:
                raise FaultPlanError(f"{field} must be >= 0")
        if self.power_cut_at_ns is not None and self.power_cut_at_ns < 0:
            raise FaultPlanError("power_cut_at_ns must be >= 0")

    @property
    def enabled(self) -> bool:
        """True if any fault source or host policy is armed."""
        return (
            self.read_disturb_prob > 0.0
            or self.program_fail_prob > 0.0
            or self.erase_fail_prob > 0.0
            or self.power_cut_at_ns is not None
            or self.command_timeout_ns is not None
        )

    @property
    def media_enabled(self) -> bool:
        return (self.read_disturb_prob > 0.0 or self.program_fail_prob > 0.0
                or self.erase_fail_prob > 0.0)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


#: The canonical disabled plan (every hook inert).
NULL_FAULT_PLAN = FaultPlan()

#: Named presets selectable via ``repro run --faults <name>``.
FAULT_PRESETS: dict[str, FaultPlan] = {
    "none": NULL_FAULT_PLAN,
    # Aging NAND: frequent read-disturb retries, a small uncorrectable
    # residue — the latency-tail profile of Tehrany et al.'s worn drives.
    "read-disturb": FaultPlan(
        name="read-disturb",
        read_disturb_prob=0.05,
        read_retry_max=4,
        read_uncorrectable_frac=0.02,
    ),
    # End-of-life media: program/erase failures drive remaps and, on the
    # ZNS side, zone retirement to READ_ONLY and then OFFLINE.
    "wearout": FaultPlan(
        name="wearout",
        program_fail_prob=0.02,
        program_retry_max=2,
        erase_fail_prob=0.01,
        erase_retry_max=2,
        retire_read_only_after=6,
        retire_offline_after=12,
    ),
    # A single mid-run power cut with a small PLP budget: the queued
    # write-buffer tail is dropped and recovery is replayed on boot.
    "power-cut": FaultPlan(
        name="power-cut",
        power_cut_at_ns=ms(2),
        plp_budget_bytes=256 * KIB,
    ),
    # Everything at once, plus an aggressive host timeout: the sweep
    # must still terminate with degraded-mode accounting.
    "chaos": FaultPlan(
        name="chaos",
        read_disturb_prob=0.10,
        read_retry_max=4,
        read_uncorrectable_frac=0.05,
        program_fail_prob=0.05,
        program_retry_max=2,
        erase_fail_prob=0.02,
        retire_read_only_after=16,
        retire_offline_after=40,
        power_cut_at_ns=ms(2),
        plp_budget_bytes=128 * KIB,
        command_timeout_ns=ms(2),
        max_retries=2,
        retry_backoff_ns=us(20),
    ),
}

_PRESET_NOTES = {
    "none": "no faults (byte-identical to running without --faults)",
    "read-disturb": "read-retry ladders + a 2% uncorrectable residue",
    "wearout": "program/erase failures with zone retirement thresholds",
    "power-cut": "one power cut at t=2ms, 256 KiB PLP budget",
    "chaos": "all media faults + power cut + 2ms host command timeout",
}

_PLAN_FIELDS = {f.name for f in dataclasses.fields(FaultPlan)}


def _load_profile(path: str) -> FaultPlan:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        raise FaultPlanError(f"cannot read fault profile {path!r}: {error}") from error
    if not isinstance(data, dict):
        raise FaultPlanError(f"fault profile {path!r} must be a JSON object")
    unknown = sorted(set(data) - _PLAN_FIELDS)
    if unknown:
        raise FaultPlanError(
            f"fault profile {path!r} has unknown fields: {', '.join(unknown)}")
    data.setdefault("name", os.path.splitext(os.path.basename(path))[0])
    return FaultPlan(**data)


def resolve(spec: Optional[str]) -> Optional[FaultPlan]:
    """Map a ``--faults`` value (preset name or JSON path) to a plan.

    Returns ``None`` when the spec selects no faults, so callers can use
    plain ``is None`` checks on their hot paths.
    """
    if spec is None or spec == "":
        return None
    plan = FAULT_PRESETS.get(spec)
    if plan is None:
        if spec.endswith(".json") or os.path.sep in spec or os.path.exists(spec):
            plan = _load_profile(spec)
        else:
            known = ", ".join(sorted(FAULT_PRESETS))
            raise FaultPlanError(
                f"unknown fault preset {spec!r} (known: {known}; "
                "or pass a path to a JSON profile)")
    return plan if plan.enabled else None


def describe_presets() -> list[tuple[str, str]]:
    """(name, description) pairs for ``repro faults list``."""
    return [(name, _PRESET_NOTES.get(name, "")) for name in FAULT_PRESETS]


class FaultInjector:
    """Binds a :class:`FaultPlan` to a device's RNG stream and metrics.

    One injector per device instance. All draws come from the device's
    ``"faults"`` stream (per-point salted by the execution engine), in a
    fixed per-operation order, so outcomes depend only on (seed, salt,
    operation sequence) — never on worker count or wall-clock timing.
    Uniform variates are drawn in batches (like
    :class:`~repro.sim.rng.LatencySampler`) to keep the per-op cost to a
    list index; batching does not change the draw sequence.
    """

    _BATCH = 256

    def __init__(self, plan: FaultPlan, rng, metrics):
        self.plan = plan
        self._rng = rng
        self._batch: list[float] = []
        self._cursor = 0
        counter = metrics.counter
        self.injected = counter("faults.injected")
        self.read_disturbs = counter("faults.read_disturbs")
        self.read_retries = counter("faults.read_retries")
        self.read_uncorrectable = counter("faults.read_uncorrectable")
        self.program_failures = counter("faults.program_failures")
        self.erase_retries = counter("faults.erase_retries")
        self.erase_failures = counter("faults.erase_failures")
        self.zones_read_only = counter("faults.zones_read_only")
        self.zones_offlined = counter("faults.zones_offlined")
        self.power_cuts = counter("faults.power_cuts")
        self.bytes_lost = counter("faults.bytes_lost")
        self.recovery_ns = counter("faults.recovery_ns")

    def _u(self) -> float:
        cursor = self._cursor
        if cursor == len(self._batch):
            self._batch = self._rng.random(self._BATCH).tolist()
            cursor = 0
        self._cursor = cursor + 1
        return self._batch[cursor]

    # -- per-operation outcomes ------------------------------------------
    def read_outcome(self) -> tuple[int, bool]:
        """(extra retry senses, uncorrectable?) for one page read."""
        plan = self.plan
        if plan.read_disturb_prob <= 0.0 or self._u() >= plan.read_disturb_prob:
            return 0, False
        self.injected.inc()
        self.read_disturbs.inc()
        if (plan.read_uncorrectable_frac > 0.0
                and self._u() < plan.read_uncorrectable_frac):
            # The ladder runs to exhaustion and still fails.
            self.read_retries.inc(plan.read_retry_max)
            self.read_uncorrectable.inc()
            return plan.read_retry_max, True
        if plan.read_retry_max <= 0:
            return 0, False
        retries = 1 + int(self._u() * plan.read_retry_max)
        retries = min(retries, plan.read_retry_max)
        self.read_retries.inc(retries)
        return retries, False

    def program_outcome(self) -> int:
        """Number of failed program attempts before one page sticks."""
        plan = self.plan
        prob = plan.program_fail_prob
        if prob <= 0.0:
            return 0
        failures = 0
        while failures < plan.program_retry_max and self._u() < prob:
            failures += 1
        if failures:
            self.injected.inc(failures)
            self.program_failures.inc(failures)
        return failures

    def erase_outcome(self) -> tuple[int, bool]:
        """(extra erase attempts, block went bad?) for one block erase."""
        plan = self.plan
        prob = plan.erase_fail_prob
        if prob <= 0.0:
            return 0, False
        retries = 0
        while retries < plan.erase_retry_max and self._u() < prob:
            retries += 1
        if retries:
            self.injected.inc(retries)
            self.erase_retries.inc(retries)
        failed = retries >= plan.erase_retry_max > 0
        if failed:
            self.erase_failures.inc()
        return retries, failed
