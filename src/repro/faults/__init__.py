"""Deterministic fault injection and recovery (DESIGN.md §12)."""

from .plan import (
    FAULT_PRESETS,
    NULL_FAULT_PLAN,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    describe_presets,
    resolve,
)

__all__ = [
    "FAULT_PRESETS",
    "NULL_FAULT_PLAN",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "describe_presets",
    "resolve",
]
