"""Deterministic fault injection and recovery (DESIGN.md §12, §17)."""

from .plan import (
    FAULT_PRESETS,
    NULL_FAULT_PLAN,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    describe_presets,
    resolve,
)
from .wear import UnitWear, WearCurve, WearTracker

__all__ = [
    "FAULT_PRESETS",
    "NULL_FAULT_PLAN",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "UnitWear",
    "WearCurve",
    "WearTracker",
    "describe_presets",
    "resolve",
]
