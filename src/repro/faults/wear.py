"""Wear-dependent lifetime model: curves, per-unit wear state, tracking.

A fresh device and a five-year-old device fail differently. This module
gives :mod:`repro.faults` the state to tell them apart:

* :class:`WearCurve` — a tiny parametric map from a wear measure
  (erase count) to a probability: flat at ``base`` until ``knee``
  erases, then rising by ``slope`` per erase, clamped to ``cap``. A
  curve with ``slope == 0`` evaluates to ``base`` everywhere, so a plan
  whose curves are flat draws *exactly* the same variates as the static
  plan it generalizes — the byte-identity contract of DESIGN.md §12
  extends to §17.
* :class:`UnitWear` — one erase unit's lifetime odometer (a zone on the
  ZNS device, a block on the conventional FTL): erase count, cumulative
  program failures, and reads since the last erase (the read-disturb
  exposure counter, reset by erase).
* :class:`WearTracker` — lazy unit-keyed store with snapshot/restore,
  so multi-point plans that roll a device back also roll its age back.

Everything here is plain arithmetic on integers the device feeds in;
nothing touches the RNG or the event heap.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WearCurve", "UnitWear", "WearTracker"]


@dataclass(frozen=True)
class WearCurve:
    """Piecewise-linear probability-vs-wear curve: base / knee / slope.

    ``value(w)`` is ``base`` for ``w <= knee`` and grows linearly at
    ``slope`` per unit of wear beyond the knee, clamped to ``cap``.
    JSON-round-trippable via :meth:`to_dict` / :meth:`from_dict`, so it
    flows through fault profiles and experiment cache keys unchanged.
    """

    base: float = 0.0
    knee: int = 0
    slope: float = 0.0
    cap: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.base <= 1.0:
            raise ValueError(f"curve base must be in [0, 1], got {self.base!r}")
        if not 0.0 <= self.cap <= 1.0:
            raise ValueError(f"curve cap must be in [0, 1], got {self.cap!r}")
        if self.base > self.cap:
            raise ValueError(
                f"curve base {self.base!r} exceeds cap {self.cap!r}")
        if self.knee < 0:
            raise ValueError(f"curve knee must be >= 0, got {self.knee!r}")
        if self.slope < 0.0:
            raise ValueError(f"curve slope must be >= 0, got {self.slope!r}")

    @property
    def flat(self) -> bool:
        """True if wear never changes the probability."""
        return self.slope == 0.0

    @property
    def armed(self) -> bool:
        """True if the curve can ever produce a nonzero probability."""
        return self.base > 0.0 or (self.slope > 0.0 and self.cap > 0.0)

    def value(self, wear: int) -> float:
        """Probability at ``wear`` erases (monotone nondecreasing)."""
        if wear <= self.knee or self.slope == 0.0:
            return self.base
        return min(self.cap, self.base + self.slope * (wear - self.knee))

    def to_dict(self) -> dict:
        return {"base": self.base, "knee": self.knee,
                "slope": self.slope, "cap": self.cap}

    @classmethod
    def from_dict(cls, data: dict) -> "WearCurve":
        if not isinstance(data, dict):
            raise ValueError(f"wear curve must be a JSON object, got {data!r}")
        unknown = sorted(set(data) - {"base", "knee", "slope", "cap"})
        if unknown:
            raise ValueError(
                f"wear curve has unknown fields: {', '.join(unknown)}")
        return cls(**data)


class UnitWear:
    """Lifetime odometer for one erase unit (ZNS zone / FTL block)."""

    __slots__ = ("erase_count", "program_failures", "reads_since_erase")

    def __init__(self, erase_count: int = 0, program_failures: int = 0,
                 reads_since_erase: int = 0):
        self.erase_count = erase_count
        self.program_failures = program_failures
        self.reads_since_erase = reads_since_erase

    def snapshot(self) -> list:
        return [self.erase_count, self.program_failures,
                self.reads_since_erase]

    def __repr__(self) -> str:  # debugging aid
        return (f"UnitWear(erase_count={self.erase_count}, "
                f"program_failures={self.program_failures}, "
                f"reads_since_erase={self.reads_since_erase})")


class WearTracker:
    """Unit-keyed wear store (zone index on ZNS, block id on conv).

    Units materialize lazily on first touch so a fault run that never
    erases pays nothing. :meth:`snapshot` / :meth:`restore` mirror the
    device ``state_snapshot`` protocol: snapshots are plain JSON-able
    lists and restoring replaces the whole store.
    """

    __slots__ = ("_units",)

    def __init__(self) -> None:
        self._units: dict[int, UnitWear] = {}

    def unit(self, key: int) -> UnitWear:
        wear = self._units.get(key)
        if wear is None:
            wear = UnitWear()
            self._units[key] = wear
        return wear

    def peek(self, key: int) -> UnitWear | None:
        """The unit's wear if it has any, without materializing it."""
        return self._units.get(key)

    def __len__(self) -> int:
        return len(self._units)

    def items(self):
        return self._units.items()

    def max_erase_count(self) -> int:
        if not self._units:
            return 0
        return max(w.erase_count for w in self._units.values())

    def total_program_failures(self) -> int:
        return sum(w.program_failures for w in self._units.values())

    def snapshot(self) -> dict:
        return {str(key): wear.snapshot() for key, wear in self._units.items()}

    def restore(self, snapshot: dict) -> None:
        self._units = {
            int(key): UnitWear(*values) for key, values in snapshot.items()
        }
