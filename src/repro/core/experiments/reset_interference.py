"""§III-G Fig. 7: interference between reset and I/O operations.

Two concurrent threads, as in the paper's custom SPDK benchmark: one
issues back-to-back resets of 100 %-occupied zones in the first half of
the device; the other issues 4 KiB I/O (sequential writes or appends at
QD1, random reads) to the second half. We report the p95 reset latency
per concurrent-op configuration (Fig. 7 / Observation #13) and the I/O
latency with and without resets (Observation #12).

The paper does not state the read thread's queue depth; we use QD32,
matching the §III-F read configuration.
"""

from __future__ import annotations

from typing import Generator, Optional

from ...hostif.commands import Command, Opcode, ZoneAction
from ...workload.job import IoKind, JobSpec, Pattern
from ...workload.runner import JobRunner
from ...workload.stats import LatencyStats
from ...stacks.spdk import SpdkStack
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device
from .points import ExperimentPlan, run_via_points

__all__ = ["run_fig7", "CONCURRENT_OPS", "FIG7_PLAN"]

CONCURRENT_OPS = ("none", "read", "write", "append")


def _sweep_with_refill(device, zone_pool, count: int, latency: LatencyStats) -> Generator:
    """Reset ``count`` fully-occupied zones, refilling pool zones between
    resets (the paper sweeps 400 distinct pre-filled zones; refilling a
    smaller pool is metadata-equivalent)."""
    for i in range(count):
        zone_index = zone_pool[i % len(zone_pool)]
        zone = device.zones.zones[zone_index]
        status = device.force_fill(zone_index, zone.cap_lbas)
        assert status.ok, status
        zslba = zone.zslba
        completion = yield device.submit(
            Command(Opcode.ZONE_MGMT, slba=zslba, action=ZoneAction.RESET)
        )
        assert completion.ok, completion.status
        latency.record(completion.latency_ns)


def _one_config(config: ExperimentConfig, concurrent_op: str):
    """Run one Fig. 7 configuration; returns (reset stats, io stats|None)."""
    sim, device = build_device(config)
    half = device.zones.num_zones // 2
    reset_pool = list(range(0, min(8, half)))

    reset_stats = LatencyStats()
    sweep = sim.process(
        _sweep_with_refill(device, reset_pool, config.interference_reset_zones, reset_stats)
    )

    io_result = None
    if concurrent_op != "none":
        io_zones = list(range(half, half + 8))
        if concurrent_op == "read":
            for z in io_zones:
                device.force_fill(z, device.zones.zones[z].cap_lbas)
            job = JobSpec(op=IoKind.READ, block_size=4 * KIB, iodepth=32,
                          pattern=Pattern.RANDOM, zones=io_zones,
                          runtime_ns=config.interference_runtime_ns,
                          seed=config.seed)
        else:
            job = JobSpec(op=concurrent_op, block_size=4 * KIB, iodepth=1,
                          zones=io_zones,
                          runtime_ns=config.interference_runtime_ns,
                          seed=config.seed)
        runner = JobRunner(device, SpdkStack(device), job)
        runner.start()
        io_result = runner.result
    sim.run(until=sweep)
    return reset_stats, io_result


def _fig7_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "p95 reset latency vs concurrent operation (full zones)",
        "columns": ["concurrent_op", "reset_p95_ms", "reset_mean_ms",
                    "io_mean_latency_us", "resets"],
        "notes": ["read thread runs at QD32 (paper leaves the read QD unstated)"],
    }


def _fig7_plan(config: ExperimentConfig) -> list:
    return [{"concurrent_op": op} for op in CONCURRENT_OPS]


def _fig7_point(config: ExperimentConfig, params: dict) -> dict:
    op = params["concurrent_op"]
    reset_stats, io_result = _one_config(config, op)
    io_lat = (
        io_result.latency.mean_us
        if io_result is not None and io_result.latency.count
        else None
    )
    return {"rows": [{
        "concurrent_op": op,
        "reset_p95_ms": reset_stats.percentile_ns(95) / 1e6,
        "reset_mean_ms": reset_stats.mean_ns / 1e6,
        "io_mean_latency_us": io_lat if io_lat is not None else "-",
        "resets": reset_stats.count,
    }]}


FIG7_PLAN = ExperimentPlan("fig7", _fig7_plan, _fig7_point, _fig7_describe)


def run_fig7(config: ExperimentConfig | None = None) -> ExperimentResult:
    """p95 reset latency under concurrent I/O of each type."""
    return run_via_points(FIG7_PLAN, config)
