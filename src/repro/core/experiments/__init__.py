"""Experiment drivers, one module per paper table/figure."""
