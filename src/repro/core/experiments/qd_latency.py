"""Appendix Fig. 8: throughput/latency trade-off at varying queue depth.

Intra-zone append (SPDK) vs intra-zone write (io_uring + mq-deadline) at
4/16/32 KiB request sizes across queue depths. The paper's appendix
observes that write latency grows faster with QD than append latency up
to a threshold (~QD4), recommending appends at low queue depths.
"""

from __future__ import annotations

from ...sim.engine import ms
from ...workload.job import IoKind, JobSpec
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device, measure_job
from .points import ExperimentPlan, run_via_points

__all__ = ["run_fig8", "QD_LEVELS", "FIG8_PLAN"]

QD_LEVELS = (1, 2, 4, 8, 16, 32)

#: (op, stack) pairs compared at every request size.
_OP_STACKS = ((IoKind.APPEND, "spdk"), (IoKind.WRITE, "iouring-mq-deadline"))


def _fig8_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "append/write throughput vs latency across queue depths",
        "columns": ["op", "request_kib", "qd", "bandwidth_mibs", "latency_us"],
        "notes": ["write = io_uring + mq-deadline intra-zone; append = SPDK intra-zone"],
    }


def _fig8_params(sizes_kib: tuple[int, ...]) -> list:
    return [
        {"block_kib": block_kib, "op": op, "stack": stack, "qd": qd}
        for block_kib in sizes_kib
        for op, stack in _OP_STACKS
        for qd in QD_LEVELS
    ]


def _fig8_plan(config: ExperimentConfig) -> list:
    return _fig8_params((4, 16, 32))


def _fig8_point(config: ExperimentConfig, params: dict) -> dict:
    block_kib, op, stack, qd = (
        params["block_kib"], params["op"], params["stack"], params["qd"]
    )
    sim, device = build_device(config)
    # Bandwidth-saturating points need backpressure steady
    # state from the start (see DESIGN.md §7). A point
    # saturates when its controller-capped ingest exceeds the
    # ~1.13 GiB/s flash drain rate.
    if op == IoKind.APPEND:
        saturating = (block_kib >= 8 and qd >= 2) or block_kib >= 32
    else:
        saturating = (block_kib == 4 and qd >= 8) or block_kib >= 16
    if saturating:
        device.debug_prefill_buffer(zone_index=1)
    job = JobSpec(
        op=op,
        block_size=block_kib * KIB,
        runtime_ns=ms(90) if saturating else config.point_runtime_ns,
        ramp_ns=ms(20) if saturating else config.ramp_ns,
        iodepth=qd,
        zones=[0],
        seed=config.seed,
    )
    job_result = measure_job(device, stack, job)
    return {
        "rows": [{
            "op": op, "request_kib": block_kib, "qd": qd,
            "bandwidth_mibs": job_result.bandwidth_mibs,
            "latency_us": job_result.latency.mean_us,
        }],
        "series": [[
            f"{op}-{block_kib}k",
            [[job_result.bandwidth_mibs, job_result.latency.mean_us]],
        ]],
    }


FIG8_PLAN = ExperimentPlan("fig8", _fig8_plan, _fig8_point, _fig8_describe)


def run_fig8(config: ExperimentConfig | None = None,
             sizes_kib: tuple[int, ...] = (4, 16, 32)) -> ExperimentResult:
    """Throughput (x) vs mean latency (y) per QD, write vs append."""
    return run_via_points(FIG8_PLAN, config, params_list=_fig8_params(sizes_kib))
