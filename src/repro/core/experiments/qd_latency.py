"""Appendix Fig. 8: throughput/latency trade-off at varying queue depth.

Intra-zone append (SPDK) vs intra-zone write (io_uring + mq-deadline) at
4/16/32 KiB request sizes across queue depths. The paper's appendix
observes that write latency grows faster with QD than append latency up
to a threshold (~QD4), recommending appends at low queue depths.
"""

from __future__ import annotations

from ...sim.engine import ms
from ...workload.job import IoKind, JobSpec
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device, measure_job

__all__ = ["run_fig8", "QD_LEVELS"]

QD_LEVELS = (1, 2, 4, 8, 16, 32)


def run_fig8(config: ExperimentConfig | None = None,
             sizes_kib: tuple[int, ...] = (4, 16, 32)) -> ExperimentResult:
    """Throughput (x) vs mean latency (y) per QD, write vs append."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        experiment_id="fig8",
        title="append/write throughput vs latency across queue depths",
        columns=["op", "request_kib", "qd", "bandwidth_mibs", "latency_us"],
        notes=["write = io_uring + mq-deadline intra-zone; append = SPDK intra-zone"],
    )
    for block_kib in sizes_kib:
        for op, stack in ((IoKind.APPEND, "spdk"), (IoKind.WRITE, "iouring-mq-deadline")):
            series = []
            for qd in QD_LEVELS:
                sim, device = build_device(config)
                # Bandwidth-saturating points need backpressure steady
                # state from the start (see DESIGN.md §7). A point
                # saturates when its controller-capped ingest exceeds the
                # ~1.13 GiB/s flash drain rate.
                if op == IoKind.APPEND:
                    saturating = (block_kib >= 8 and qd >= 2) or block_kib >= 32
                else:
                    saturating = (block_kib == 4 and qd >= 8) or block_kib >= 16
                if saturating:
                    device.debug_prefill_buffer(zone_index=1)
                job = JobSpec(
                    op=op,
                    block_size=block_kib * KIB,
                    runtime_ns=ms(90) if saturating else config.point_runtime_ns,
                    ramp_ns=ms(20) if saturating else config.ramp_ns,
                    iodepth=qd,
                    zones=[0],
                    seed=config.seed,
                )
                job_result = measure_job(device, stack, job)
                result.add_row(
                    op=op, request_kib=block_kib, qd=qd,
                    bandwidth_mibs=job_result.bandwidth_mibs,
                    latency_us=job_result.latency.mean_us,
                )
                series.append((job_result.bandwidth_mibs, job_result.latency.mean_us))
            result.series[f"{op}-{block_kib}k"] = series
    return result
