"""§III-D Fig. 4: intra-zone vs inter-zone scalability.

* **Fig. 4a** — intra-zone: one zone, concurrency = queue depth.
  Reads/appends via SPDK; writes via io_uring + mq-deadline (the only
  way to put multiple writes in flight against one zone, §III-A).
* **Fig. 4b** — inter-zone: QD1 per zone, concurrency = number of zones
  (one thread each), all via SPDK. Capped by the max-open-zones limit
  (14 on the ZN540).
* **Fig. 4c** — bandwidth at 4/8/16 KiB: intra-zone append vs inter-zone
  write across concurrency levels.
"""

from __future__ import annotations

from ...sim.engine import ms
from ...workload.job import IoKind, JobSpec, Pattern
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device, measure_job
from .points import ExperimentPlan, run_via_points

__all__ = [
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "INTRA_LEVELS",
    "INTER_LEVELS",
    "READ_LEVELS",
    "FIG4A_PLAN",
    "FIG4B_PLAN",
    "FIG4C_PLAN",
]

INTRA_LEVELS = (1, 2, 4, 8, 16, 32)
READ_LEVELS = (1, 2, 4, 8, 16, 32, 64, 128)
INTER_LEVELS = (1, 2, 4, 8, 14)  # 14 = the device's max-open-zones limit


def _fill_zones(device, zone_ids) -> None:
    for z in zone_ids:
        device.force_fill(z, device.zones.zones[z].cap_lbas)


def _intra_point(config: ExperimentConfig, op: str, qd: int,
                 block_size: int = 4 * KIB, runtime_ns=None, ramp_ns=None,
                 warm_start: bool = False):
    """One intra-zone measurement: a single zone at queue depth ``qd``."""
    sim, device = build_device(config)
    if warm_start:
        # Steady-state bandwidth point: skip the buffer-fill transient.
        device.debug_prefill_buffer(zone_index=1)
    if op == IoKind.READ:
        _fill_zones(device, [0])
        stack_name, pattern = "spdk", Pattern.RANDOM
    elif op == IoKind.APPEND:
        stack_name, pattern = "spdk", Pattern.SEQUENTIAL
    else:
        stack_name, pattern = "iouring-mq-deadline", Pattern.SEQUENTIAL
    job = JobSpec(
        op=op,
        block_size=block_size,
        runtime_ns=runtime_ns or config.point_runtime_ns,
        ramp_ns=ramp_ns if ramp_ns is not None else config.ramp_ns,
        iodepth=qd,
        pattern=pattern,
        zones=[0],
        seed=config.seed,
    )
    return measure_job(device, stack_name, job)


def _inter_point(config: ExperimentConfig, op: str, zones: int,
                 block_size: int = 4 * KIB, runtime_ns=None, ramp_ns=None,
                 warm_start: bool = False):
    """One inter-zone measurement: QD1 per zone, one thread per zone."""
    sim, device = build_device(config)
    zone_ids = list(range(zones))
    if warm_start:
        device.debug_prefill_buffer(zone_index=zones)
    if op == IoKind.READ:
        _fill_zones(device, zone_ids)
    job = JobSpec(
        op=op,
        block_size=block_size,
        runtime_ns=runtime_ns or config.point_runtime_ns,
        ramp_ns=ramp_ns if ramp_ns is not None else config.ramp_ns,
        iodepth=1,
        numjobs=zones,
        pattern=Pattern.RANDOM if op == IoKind.READ else Pattern.SEQUENTIAL,
        zones=zone_ids,
        zone_per_thread=True,
        seed=config.seed,
    )
    return measure_job(device, "spdk", job)


def _fig4a_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Intra-zone scalability, 4 KiB (1 zone, variable QD)",
        "columns": ["op", "qd", "kiops", "mean_latency_us"],
        "notes": [
            "write = io_uring + mq-deadline (merging); read/append = SPDK",
        ],
    }


def _fig4a_plan(config: ExperimentConfig) -> list:
    return [
        {"op": op, "qd": qd}
        for op, levels in (
            (IoKind.READ, READ_LEVELS),
            (IoKind.WRITE, INTRA_LEVELS),
            (IoKind.APPEND, INTRA_LEVELS),
        )
        for qd in levels
    ]


def _fig4a_point(config: ExperimentConfig, params: dict) -> dict:
    op, qd = params["op"], params["qd"]
    # mq-deadline merged writes at QD >= 8 overdrive the flash
    # program rate: warm-start the buffer for steady state.
    warm = op == IoKind.WRITE and qd >= 8
    runtime = ms(120) if warm else None
    ramp = ms(25) if warm else None
    job_result = _intra_point(config, op, qd, runtime_ns=runtime,
                              ramp_ns=ramp, warm_start=warm)
    return {
        "rows": [{
            "op": op, "qd": qd, "kiops": job_result.kiops,
            "mean_latency_us": job_result.latency.mean_us,
        }],
        "series": [[op, [[qd, job_result.kiops]]]],
    }


def _fig4b_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Inter-zone scalability, 4 KiB (QD1, variable zones, SPDK)",
        "columns": ["op", "zones", "kiops", "mean_latency_us"],
        "notes": ["zone count capped at 14 = the ZN540 max-open-zones limit"],
    }


def _fig4b_plan(config: ExperimentConfig) -> list:
    return [
        {"op": op, "zones": zones}
        for op in (IoKind.READ, IoKind.WRITE, IoKind.APPEND)
        for zones in INTER_LEVELS
    ]


def _fig4b_point(config: ExperimentConfig, params: dict) -> dict:
    op, zones = params["op"], params["zones"]
    job_result = _inter_point(config, op, zones)
    return {
        "rows": [{
            "op": op, "zones": zones, "kiops": job_result.kiops,
            "mean_latency_us": job_result.latency.mean_us,
        }],
        "series": [[op, [[zones, job_result.kiops]]]],
    }


def _fig4c_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Bandwidth vs concurrency (intra-zone append / inter-zone write)",
        "columns": ["mode", "request_kib", "concurrency", "bandwidth_mibs"],
        "notes": [
            "concurrency = QD for appends, concurrent zones for writes",
            "bandwidth-capped points are warm-started past the "
            "buffer-fill transient (DESIGN.md §7)",
        ],
    }


def _fig4c_plan(config: ExperimentConfig) -> list:
    return [
        {"block_kib": block_kib, "level": level}
        for block_kib in (4, 8, 16)
        for level in INTER_LEVELS
    ]


def _fig4c_point(config: ExperimentConfig, params: dict) -> dict:
    block_kib, level = params["block_kib"], params["level"]
    block_size = block_kib * KIB
    # Points that can exceed the flash drain rate are warm-started
    # to measure backpressure steady state directly.
    saturating = (block_kib >= 8 and level >= 2) or block_kib >= 16
    runtime = ms(140) if saturating else None
    ramp = ms(25) if saturating else None
    append_res = _intra_point(
        config, IoKind.APPEND, level, block_size,
        runtime_ns=runtime, ramp_ns=ramp, warm_start=saturating,
    )
    write_res = _inter_point(
        config, IoKind.WRITE, level, block_size,
        runtime_ns=runtime, ramp_ns=ramp, warm_start=saturating,
    )
    return {
        "rows": [
            {"mode": "append-intra", "request_kib": block_kib,
             "concurrency": level, "bandwidth_mibs": append_res.bandwidth_mibs},
            {"mode": "write-inter", "request_kib": block_kib,
             "concurrency": level, "bandwidth_mibs": write_res.bandwidth_mibs},
        ],
        "series": [
            [f"append-{block_kib}k", [[level, append_res.bandwidth_mibs]]],
            [f"write-{block_kib}k", [[level, write_res.bandwidth_mibs]]],
        ],
    }


FIG4A_PLAN = ExperimentPlan("fig4a", _fig4a_plan, _fig4a_point, _fig4a_describe)
FIG4B_PLAN = ExperimentPlan("fig4b", _fig4b_plan, _fig4b_point, _fig4b_describe)
FIG4C_PLAN = ExperimentPlan("fig4c", _fig4c_plan, _fig4c_point, _fig4c_describe)


def run_fig4a(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Intra-zone scalability in KIOPS, 4 KiB requests."""
    return run_via_points(FIG4A_PLAN, config)


def run_fig4b(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Inter-zone scalability in KIOPS, 4 KiB requests, QD1 per zone."""
    return run_via_points(FIG4B_PLAN, config)


def run_fig4c(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Bandwidth: intra-zone append vs inter-zone write at 4/8/16 KiB."""
    return run_via_points(FIG4C_PLAN, config)
