"""Point-level decomposition of the paper experiments.

Every experiment is a sweep over independent *points* (one measurement
configuration each — a fresh simulator, deterministically seeded from
the :class:`ExperimentConfig`). This module gives that structure a
first-class API so the execution engine (:mod:`repro.exec`) can fan
points out over worker processes and cache them individually:

* :class:`ExperimentPlan` — an experiment's decomposition:
  ``plan(config)`` lists the point parameter dicts, ``point(config,
  params)`` runs one point and returns a JSON-able payload, and
  ``describe(config)`` gives the table skeleton the payloads are
  assembled into.
* :func:`assemble` — folds point payloads (in plan order) back into the
  :class:`~repro.core.results.ExperimentResult` the serial drivers
  always produced.
* :func:`run_via_points` — the serial driver: plan → points → assemble.
  The public ``run_<experiment>`` functions are now thin wrappers over
  this, so the serial path and the parallel path execute *exactly* the
  same per-point code and emit byte-identical tables.

Every registered experiment is now a genuine multi-point plan. The zone
state-machine sweeps (obs9, fig5a, fig5b) historically shared one device
across occupancy levels; they were decomposed into per-level points
using device state snapshot/restore and per-point seed salts (see
:mod:`.state_machine`). :func:`single_point_plan` remains available for
wrapping monolithic drivers that cannot be decomposed.

Payload protocol (everything JSON-able, so payloads can be cached and
shipped across process boundaries losslessly):

``{"rows": [...], "series": [[key, [[x, y], ...]], ...]}``
    rows/series fragments appended in plan order, or
``{"result": <serialized ExperimentResult>}``
    a whole-experiment payload from a single-point plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..results import ExperimentResult
from .common import ExperimentConfig

__all__ = [
    "ExperimentPlan",
    "assemble",
    "deserialize_result",
    "experiment_plans",
    "point_label",
    "run_via_points",
    "serialize_result",
    "single_point_plan",
]


@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment's decomposition into independent sweep points."""

    experiment_id: str
    #: config → ordered list of JSON-able point parameter dicts.
    plan: Callable[[ExperimentConfig], list]
    #: (config, params) → JSON-able payload for one point.
    point: Callable[[ExperimentConfig, dict], dict]
    #: config → ExperimentResult skeleton fields (id/title/columns/
    #: notes/meta). ``None`` marks a single-point plan whose payload
    #: carries the whole serialized result.
    describe: Optional[Callable[[ExperimentConfig], dict]] = None
    #: Optional in-process post-assembly hook: ``fold(result, config,
    #: payloads)`` runs after the rows/series fold, always in the
    #: assembling process. Cross-point derivations (verdicts comparing
    #: every point against a reference point) and non-JSON-able values
    #: (int-keyed dicts, which a JSON round-trip would stringify)
    #: belong here rather than in the point payloads.
    fold: Optional[
        Callable[[ExperimentResult, ExperimentConfig, list], None]
    ] = None


def point_label(params: dict) -> str:
    """Human-readable identity of one point (profiles, error reports)."""
    if not params:
        return "(whole experiment)"
    return ",".join(f"{k}={v}" for k, v in sorted(params.items()))


def serialize_result(result: ExperimentResult) -> dict:
    """A JSON-able image of an ExperimentResult (exact round-trip)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [dict(row) for row in result.rows],
        "series": {k: [list(p) for p in v] for k, v in result.series.items()},
        "notes": list(result.notes),
        "meta": dict(result.meta),
    }


def deserialize_result(data: dict) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        columns=list(data["columns"]),
        rows=[dict(row) for row in data["rows"]],
        series={k: [tuple(p) for p in v] for k, v in data["series"].items()},
        notes=list(data["notes"]),
        meta=dict(data["meta"]),
    )


def assemble(
    plan: ExperimentPlan, config: ExperimentConfig, payloads: list[dict]
) -> ExperimentResult:
    """Fold point payloads (in plan order) into the final result."""
    if plan.describe is None:
        if len(payloads) != 1:
            raise ValueError(
                f"single-point experiment {plan.experiment_id!r} got "
                f"{len(payloads)} payloads"
            )
        return deserialize_result(payloads[0]["result"])
    skeleton = plan.describe(config)
    result = ExperimentResult(
        experiment_id=skeleton.get("experiment_id", plan.experiment_id),
        title=skeleton["title"],
        columns=list(skeleton["columns"]),
        notes=list(skeleton.get("notes", [])),
        meta=dict(skeleton.get("meta", {})),
    )
    for payload in payloads:
        for row in payload.get("rows", []):
            result.rows.append(dict(row))
        for key, pairs in payload.get("series", []):
            result.series.setdefault(key, []).extend(
                tuple(pair) for pair in pairs
            )
    if plan.fold is not None:
        plan.fold(result, config, payloads)
    return result


def run_via_points(
    plan: ExperimentPlan,
    config: Optional[ExperimentConfig] = None,
    params_list: Optional[list] = None,
) -> ExperimentResult:
    """Serial reference path: run every point in order and assemble."""
    config = config or ExperimentConfig()
    if params_list is None:
        params_list = plan.plan(config)
    return assemble(plan, config, [plan.point(config, p) for p in params_list])


def single_point_plan(
    experiment_id: str, runner: Callable[[ExperimentConfig], ExperimentResult]
) -> ExperimentPlan:
    """Wrap a monolithic driver as a one-point plan (stateful sweeps)."""

    def _plan(config: ExperimentConfig) -> list:
        return [{}]

    def _point(config: ExperimentConfig, params: dict) -> dict:
        return {"result": serialize_result(runner(config))}

    return ExperimentPlan(experiment_id, _plan, _point, None)


def experiment_plans(auxiliary: bool = False) -> dict[str, ExperimentPlan]:
    """Experiment id → plan, in paper order (lazy imports, like the
    legacy runner registry in :mod:`repro.core.report`).

    ``auxiliary=True`` appends the plans that are not part of the
    default ``repro run`` suite — today the §IV emulator-fidelity
    matrix (``sec4``), which sweeps latency *models* rather than device
    workloads. The execution engine resolves ids against the auxiliary
    registry so ``repro fidelity`` shares the cache/worker machinery,
    while the default id list (and default ``repro run`` output) stays
    the 19 paper experiments.
    """
    from .ablations import (
        ABLATION_APPEND_COST_PLAN,
        ABLATION_BUFFER_PLAN,
        ABLATION_GC_PRIORITY_PLAN,
        ABLATION_GEOMETRY_PLAN,
        ABLATION_ZONE_SIZE_PLAN,
    )
    from .aging import FIG8_AGING_PLAN
    from .fleet import FIG7_FLEET_PLAN
    from .io_interference import FIG6_PLAN, FIG6_RATES_PLAN, OBS11_PLAN
    from .lba_format import FIG2A_PLAN, FIG2B_PLAN
    from .qd_latency import FIG8_PLAN
    from .request_size import FIG3_PLAN
    from .reset_interference import FIG7_PLAN
    from .scalability import FIG4A_PLAN, FIG4B_PLAN, FIG4C_PLAN
    from .state_machine import FIG5A_PLAN, FIG5B_PLAN, OBS9_PLAN

    plans = [
        FIG2A_PLAN,
        FIG2B_PLAN,
        FIG3_PLAN,
        FIG4A_PLAN,
        FIG4B_PLAN,
        FIG4C_PLAN,
        OBS9_PLAN,
        FIG5A_PLAN,
        FIG5B_PLAN,
        FIG6_PLAN,
        OBS11_PLAN,
        FIG7_PLAN,
        FIG7_FLEET_PLAN,
        FIG8_PLAN,
        FIG8_AGING_PLAN,
        FIG6_RATES_PLAN,
        ABLATION_BUFFER_PLAN,
        ABLATION_APPEND_COST_PLAN,
        ABLATION_GC_PRIORITY_PLAN,
        ABLATION_GEOMETRY_PLAN,
        ABLATION_ZONE_SIZE_PLAN,
    ]
    if auxiliary:
        from ...emulators.fidelity import FIDELITY_PLAN

        plans.append(FIDELITY_PLAN)
    return {plan.experiment_id: plan for plan in plans}
