"""Shared scaffolding for the paper-experiment drivers.

Each driver builds fresh simulated devices per measured point (fio also
restarts between points), runs the workload for a configurable simulated
duration, and reports the same quantities the paper plots.

``ExperimentConfig`` centralizes the scale knobs. The defaults are the
"fast" settings used by the test suite and benchmark harness; passing
``duration_scale > 1`` tightens statistics at proportional wall-clock
cost. The paper's 20-minute wall-clock runs are replaced by much shorter
*simulated* windows — the simulated device is stationary, so statistics
converge quickly (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ...faults.plan import resolve
from ...hostif.namespace import LBA_4K, LBA_512, LbaFormat
from ...obs.metrics import MetricsRegistry
from ...obs.tracer import Tracer
from ...sim.engine import Simulator, ms
from ...sim.rng import StreamFactory
from ...stacks.iouring import IoUringStack
from ...stacks.spdk import SpdkStack
from ...stacks.thrpool import ThreadPoolStack
from ...workload.job import JobSpec
from ...workload.runner import JobResult, JobRunner
from ...zns.device import ZnsDevice
from ...zns.profiles import DeviceProfile, zn540

__all__ = [
    "ExperimentConfig",
    "STACKS",
    "build_device",
    "build_stack",
    "measure_job",
    "sweep_stacks",
    "KIB",
    "MIB",
]

KIB = 1024
MIB = 1024 * 1024

#: Storage-stack configurations compared in §III, in ascending order of
#: host overhead. The paper measures SPDK and the two io_uring setups;
#: "thrpool" is the xNVMe-style thread-pool async backend sitting
#: between them (DESIGN.md §14.2).
STACKS = ("spdk", "thrpool", "iouring-none", "iouring-mq-deadline")


def sweep_stacks(config: "ExperimentConfig") -> tuple[str, ...]:
    """The stacks a sweep should cover: ``config.stacks`` or all of them."""
    if config.stacks is None:
        return STACKS
    chosen = tuple(config.stacks)
    unknown = [name for name in chosen if name not in STACKS]
    if unknown:
        raise ValueError(
            f"unknown stack(s) {unknown!r} (choose from {STACKS})"
        )
    return chosen


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale/seed knobs shared by all experiment drivers."""

    seed: int = 0x5EED
    #: Simulated duration of one measured point.
    point_runtime_ns: int = ms(6)
    ramp_ns: int = ms(1)
    #: Zones per occupancy level in the reset/finish sweeps (§III-E).
    zones_per_level: int = 12
    #: Zones swept by each reset-interference configuration (§III-G).
    interference_reset_zones: int = 40
    #: Simulated duration of the Fig. 6 interference timelines.
    interference_runtime_ns: int = ms(1_800)
    #: Zones kept on the simulated ZNS device (latency-irrelevant).
    num_zones: int = 64
    #: Restrict the stack-comparison sweeps (fig2a/fig2b) to a subset of
    #: :data:`STACKS`, or ``None`` for all of them. Stored as the plain
    #: name tuple so it participates in the cache key and ships to
    #: workers (``repro run --stack``). Experiments pinned to a specific
    #: stack (scalability, QD sweeps) ignore it.
    stacks: Optional[tuple] = None
    #: Optional observability hooks threaded into every device the
    #: experiment builds. Excluded from repr/compare so configs stay
    #: hashable-by-value and byte-identical output is easy to verify.
    tracer: Optional[Tracer] = field(default=None, repr=False, compare=False)
    metrics: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )
    #: Fault-injection spec: a preset name or profile path understood by
    #: :func:`repro.faults.resolve`. Kept as the *spec string* (not the
    #: resolved plan) so configs stay JSON-serializable for the result
    #: cache key — two runs with the same spec share cache entries.
    faults: Optional[str] = None
    #: Serving tenants sharing the fleet device (``fig7_fleet``); the
    #: reclaim antagonist is an extra tenant on top of these.
    fleet_tenants: int = 3
    #: Per-tenant p99 SLO for the fleet serving (read) path, in µs.
    fleet_slo_p99_us: float = 750.0
    #: Simulated duration of one fleet point.
    fleet_runtime_ns: int = ms(30)
    #: Telemetry sampling interval in simulated nanoseconds, or ``None``
    #: (the default) for no time-resolved sampling. Like ``faults`` this
    #: is the plain scalar — it participates in the cache key and ships
    #: to worker processes — while the live collector below is runtime
    #: state the execution engine installs per point.
    telemetry_interval_ns: Optional[int] = None
    #: Live :class:`~repro.obs.telemetry.TelemetryCollector` every device
    #: built for the current point attaches to. Excluded from
    #: repr/compare (and from the cache key) like the tracer/metrics
    #: hooks above.
    telemetry: Optional[object] = field(default=None, repr=False, compare=False)

    def scaled(self, duration_scale: float) -> "ExperimentConfig":
        """Stretch all durations/sweep sizes by a factor."""
        if duration_scale <= 0:
            raise ValueError("duration_scale must be positive")
        return replace(
            self,
            point_runtime_ns=round(self.point_runtime_ns * duration_scale),
            ramp_ns=round(self.ramp_ns * duration_scale),
            zones_per_level=max(1, round(self.zones_per_level * duration_scale)),
            interference_reset_zones=max(
                4, round(self.interference_reset_zones * duration_scale)
            ),
            interference_runtime_ns=round(
                self.interference_runtime_ns * duration_scale
            ),
            fleet_runtime_ns=round(self.fleet_runtime_ns * duration_scale),
        )


def build_device(
    config: ExperimentConfig,
    lba_format: LbaFormat = LBA_4K,
    profile: DeviceProfile | None = None,
    seed_salt: str = "",
) -> tuple[Simulator, ZnsDevice]:
    """A fresh simulator + calibrated ZN540 device.

    ``seed_salt`` namespaces the device's random streams (see
    :class:`StreamFactory`); sweeps that build one device per point pass
    the point label so points stay independent of sweep order.
    """
    sim = Simulator()
    profile = profile or zn540(num_zones=config.num_zones)
    device = ZnsDevice(
        sim, profile, lba_format=lba_format,
        streams=StreamFactory(config.seed, salt=seed_salt),
        tracer=config.tracer, metrics=config.metrics,
        faults=resolve(config.faults),
        telemetry=config.telemetry,
    )
    return sim, device


def build_stack(device, stack_name: str):
    """Instantiate one of the compared stack configurations."""
    if stack_name == "spdk":
        return SpdkStack(device)
    if stack_name == "thrpool":
        return ThreadPoolStack(device)
    if stack_name == "iouring-none":
        return IoUringStack(device, scheduler="none")
    if stack_name == "iouring-mq-deadline":
        return IoUringStack(device, scheduler="mq-deadline")
    raise ValueError(f"unknown stack {stack_name!r} (choose from {STACKS})")


def measure_job(device, stack_name: str, job: JobSpec) -> JobResult:
    """Run one job to completion on a device and return its metrics."""
    stack = build_stack(device, stack_name)
    return JobRunner(device, stack, job).run()
