"""§III-C Fig. 3: SPDK write/append throughput vs request size (QD=1).

Synchronous single-threaded sweeps over request sizes. Because QD=1,
IOPS is the inverse of request latency (as the paper notes); bytes/s
throughput is request_size × IOPS and peaks at large requests
(Observation #3).
"""

from __future__ import annotations

from ...workload.job import IoKind, JobSpec
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device, measure_job
from .points import ExperimentPlan, run_via_points

__all__ = ["run_fig3", "REQUEST_SIZES", "FIG3_PLAN"]

REQUEST_SIZES = tuple(k * KIB for k in (4, 8, 16, 32, 64, 128))


def _fig3_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "SPDK throughput vs request size (QD=1)",
        "columns": ["op", "request_kib", "kiops", "bandwidth_mibs", "latency_us"],
    }


def _fig3_params(sizes: tuple[int, ...]) -> list:
    return [
        {"op": op, "request_bytes": request_bytes}
        for op in (IoKind.WRITE, IoKind.APPEND)
        for request_bytes in sizes
    ]


def _fig3_plan(config: ExperimentConfig) -> list:
    return _fig3_params(REQUEST_SIZES)


def _fig3_point(config: ExperimentConfig, params: dict) -> dict:
    op, request_bytes = params["op"], params["request_bytes"]
    sim, device = build_device(config)
    # Requests >= 16 KiB outrun the flash program rate at QD1, so
    # their steady-state throughput only appears once the device
    # write buffer has filled and backpressure kicks in. Warm-start
    # the buffer to skip the transient (DESIGN.md §7).
    if request_bytes >= 16 * KIB:
        device.debug_prefill_buffer(zone_index=3)
        runtime = max(config.point_runtime_ns, 120_000_000)
        ramp = max(config.ramp_ns, 30_000_000)
    else:
        runtime, ramp = config.point_runtime_ns, config.ramp_ns
    job = JobSpec(
        op=op,
        block_size=request_bytes,
        runtime_ns=runtime,
        ramp_ns=ramp,
        zones=[0, 1, 2, 3],  # enough capacity for large requests
        seed=config.seed,
    )
    job_result = measure_job(device, "spdk", job)
    return {
        "rows": [{
            "op": op,
            "request_kib": request_bytes // KIB,
            "kiops": job_result.kiops,
            "bandwidth_mibs": job_result.bandwidth_mibs,
            "latency_us": job_result.latency.mean_us,
        }],
        "series": [[op, [[request_bytes // KIB, job_result.kiops]]]],
    }


FIG3_PLAN = ExperimentPlan("fig3", _fig3_plan, _fig3_point, _fig3_describe)


def run_fig3(config: ExperimentConfig | None = None,
             sizes: tuple[int, ...] = REQUEST_SIZES) -> ExperimentResult:
    """IOPS (and MiB/s) as a function of request size, for write/append."""
    return run_via_points(FIG3_PLAN, config, params_list=_fig3_params(sizes))
