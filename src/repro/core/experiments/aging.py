"""``fig8_aging``: wear-dependent lifetime — aging sweeps, interference
under faults, and the zone-management-cost ablation.

The paper characterizes a *fresh* ZN540; its lifetime story (§II,
DESIGN.md §17) is that NAND failure rates are not constants but
functions of accumulated wear — erase/program/read-disturb ladders
climb with per-block erase counts until the firmware retires the unit.
This experiment exercises the wear model end to end, in three parts:

* **Age sweep** — a fresh device is fast-forwarded through multi-"day"
  epochs of background churn (:meth:`Device.age`: deterministic wear
  replay on the dedicated ``aging`` RNG stream, no simulated time),
  then the same append+read workload is measured at each age. With a
  wear curve armed (``--faults wearout``), program/erase retries climb
  with the erase-count odometer and the measured p99s grow
  monotonically with age; with no faults armed ``age()`` is a no-op and
  every row is identical.
* **Interference under faults** — the Fig. 6 victim/antagonist story
  re-run on a pre-aged device under the ``read-disturb`` and
  ``wearout`` profiles, with per-tenant accounting: a victim tenant
  reads its own partition while a reclaim tenant burns through zones
  with real refill appends and trailing resets. The fold reports each
  profile's victim read-p99 inflation over the fresh fault-free
  baseline.
* **Zone-management-cost ablation** — the calibrated reset/finish
  firmware costs versus a hypothetical cheap-management device (the
  small-zone regime of Bae et al., PAPERS.md) on a reset-heavy append
  workload, folded as a latency ratio against the calibrated baseline.

Scale notes: all three parts run on the structurally shrunken ZN540
(:func:`~repro.zns.profiles.zn540_small`) with a deliberately small
write buffer, so flusher backpressure — and therefore wear-driven
program retries — lands on the measured append path instead of hiding
behind 112 MiB of capacitor-backed cache.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator

from ...faults.plan import resolve
from ...hostif.commands import Command, Opcode
from ...sim.engine import Event, us
from ...tenancy import ResetStorm, Tenant, TenantScheduler, partition_zones
from ...workload.job import IoKind, JobSpec, Pattern
from ...workload.runner import JobRunner
from ...zns.profiles import zn540_small
from ...zns.spec import ZoneState
from ..results import ExperimentResult
from .common import KIB, MIB, ExperimentConfig, build_device, build_stack
from .points import ExperimentPlan, run_via_points

__all__ = [
    "run_fig8_aging",
    "FIG8_AGING_PLAN",
    "AGE_EPOCHS",
    "INTERFERENCE_PROFILES",
    "MGMT_VARIANTS",
]

#: Fast-forwarded ages (epochs of background churn) the sweep measures.
AGE_EPOCHS = (0, 2, 4, 8)
#: Fault profiles for the interference re-run; "none" is the fresh
#: fault-free baseline the fold normalizes against.
INTERFERENCE_PROFILES = ("none", "read-disturb", "wearout")
#: Zone-management cost variants for the ablation.
MGMT_VARIANTS = ("calibrated", "cheap-mgmt")

_NUM_ZONES = 32
#: Write/reclaim partition and pre-filled read partition (disjoint).
_WRITE_ZONES = list(range(0, 10))
_READ_ZONES = list(range(24, 32))
#: Small reclaim pool for the management ablation: the append workload
#: must wrap it several times inside the window so reset/finish cost
#: actually sits on the measured path.
_MGMT_ZONES = list(range(0, 4))
#: Epochs of pre-aging before the interference runs — enough churn that
#: the armed wear curves are past their knees but (at ~4.5 erases/epoch
#: mean) comfortably below the wearout retirement thresholds.
_PREAGE_EPOCHS = 6
#: Cost divisor for the cheap-management ablation variant.
_CHEAP_MGMT_FACTOR = 16


def _aging_profile(**overrides):
    """Shrunken ZN540 with a small write buffer (see module docstring)."""
    return zn540_small(
        num_zones=_NUM_ZONES,
        write_buffer_bytes=2 * MIB,
        **overrides,
    )


def _age_runtime_ns(config: ExperimentConfig) -> int:
    """Measured window per age/ablation point (longer than one default
    point: p99s need samples, and the buffer must fill to expose
    wear-driven flush retries)."""
    return 4 * config.point_runtime_ns


def _wear_columns(device) -> tuple[int, int]:
    """(max erase count, retired-zone census) for a row's wear columns."""
    injector = getattr(device, "faults", None)
    if injector is None:
        return 0, 0
    retired = sum(
        1 for zone in device.zones.zones
        if zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE)
    )
    return injector.wear.max_erase_count(), retired


# --------------------------------------------------------------- age sweep
def _age_point(config: ExperimentConfig, params: dict) -> dict:
    epochs = params["epochs"]
    sim, device = build_device(
        config, profile=_aging_profile(), seed_salt=f"aging/{epochs}"
    )
    for z in _READ_ZONES:
        device.force_fill(z, device.zones.zones[z].cap_lbas)
    device.age(epochs)
    runtime = _age_runtime_ns(config)
    writer = JobRunner(
        device, build_stack(device, "spdk"),
        JobSpec(op=IoKind.APPEND, block_size=64 * KIB, iodepth=4,
                numjobs=2, zones=_WRITE_ZONES, reset_when_full=True,
                runtime_ns=runtime, seed=config.seed),
    )
    reader = JobRunner(
        device, build_stack(device, "spdk"),
        JobSpec(op=IoKind.READ, block_size=4 * KIB, pattern=Pattern.RANDOM,
                iodepth=8, zones=_READ_ZONES, runtime_ns=runtime,
                seed=config.seed + 1),
    )
    sim.run(until=sim.all_of([writer.start(), reader.start()]))
    wres, rres = writer.result, reader.result
    max_erases, retired = _wear_columns(device)
    return {"rows": [{
        "kind": "age",
        "label": f"epoch{epochs}",
        "epochs": epochs,
        "append_p50_us": round(wres.latency.percentile_us(50), 2),
        "append_p99_us": round(wres.latency.percentile_us(99), 2),
        "read_p50_us": round(rres.latency.percentile_us(50), 2),
        "read_p99_us": round(rres.latency.percentile_us(99), 2),
        "bandwidth_mibs": round(wres.bandwidth_mibs, 1),
        "resets": wres.resets,
        "errors": sum(wres.errors.values()) + sum(rres.errors.values()),
        "max_erase_count": max_erases,
        "zones_retired": retired,
    }], "series": [
        ["age-append-p99", [[epochs, round(wres.latency.percentile_us(99), 2)]]],
        ["age-read-p99", [[epochs, round(rres.latency.percentile_us(99), 2)]]],
    ]}


# ------------------------------------------------- interference under faults
class _TenantReader:
    """Victim serving loop: random 4 KiB reads over the tenant's own
    (pre-filled) partition at a fixed queue depth, with per-tenant
    latency/error accounting. Draws only from the tenant's private RNG
    sub-stream, so co-scheduling it cannot shift other tenants."""

    def __init__(self, tenant: Tenant, until_ns: int, iodepth: int = 8,
                 read_bytes: int = 4 * KIB):
        self.tenant = tenant
        self.sim = tenant.sim
        self.until_ns = until_ns
        self.iodepth = iodepth
        self.read_bytes = read_bytes

    def start(self) -> Event:
        return self.sim.all_of([
            self.sim.process(self._worker(self.tenant.rng(f"read/{i}")))
            for i in range(self.iodepth)
        ])

    def _worker(self, rng) -> Generator:
        tenant = self.tenant
        device = tenant.device
        block = device.namespace.block_size
        nlb = max(1, self.read_bytes // block)
        zones = tenant.zones
        while self.sim.now < self.until_ns:
            zone = device.zones.zones[zones[int(rng.integers(0, len(zones)))]]
            span = max(1, zone.cap_lbas - nlb)
            slba = zone.zslba + int(rng.integers(0, span))
            completion = yield tenant.submit(
                Command(Opcode.READ, slba=slba, nlb=nlb))
            if completion.ok:
                tenant.record(completion, nlb * block)
            else:
                tenant.record_error(completion.status, slba)


def _interference_point(config: ExperimentConfig, params: dict) -> dict:
    profile = params["profile"]
    spec = None if profile == "none" else profile
    cfg = replace(config, faults=spec)
    sim, device = build_device(
        cfg, profile=_aging_profile(), seed_salt=f"interf/{profile}"
    )
    for z in _READ_ZONES:
        device.force_fill(z, device.zones.zones[z].cap_lbas)
    device.age(_PREAGE_EPOCHS)
    runtime = config.fleet_runtime_ns
    scheduler = TenantScheduler(device)
    victim = Tenant(device, "victim", zones=_READ_ZONES, index=0,
                    seed=config.seed)
    reclaim = Tenant(device, "reclaim", zones=_WRITE_ZONES, index=1,
                     seed=config.seed)
    scheduler.add_workload(victim, _TenantReader(victim, runtime),
                           kind="serve")
    scheduler.add_workload(
        reclaim,
        ResetStorm(reclaim, runtime, refill="write",
                   append_chunk=64 * KIB, pace_ns=us(20)),
        kind="reclaim",
    )
    rows = []
    max_erases, retired = None, None
    for result in scheduler.run():
        if max_erases is None:
            max_erases, retired = _wear_columns(device)
        rows.append({
            "kind": "interference",
            "label": profile,
            "tenant": result.tenant,
            "read_p50_us": round(result.p50_us, 2) if result.ops else "-",
            "read_p99_us": round(result.p99_us, 2) if result.ops else "-",
            "resets": result.resets,
            "reset_p95_ms": (
                round(result.reset_p95_ms, 2) if result.resets else "-"
            ),
            "errors": sum(result.errors.values()),
            "errors_by_owner": ",".join(
                f"{owner}:{count}"
                for owner, count in sorted(result.errors_by_owner.items())
            ) or "-",
            "max_erase_count": max_erases,
            "zones_retired": retired,
        })
    return {"rows": rows}


# ------------------------------------------------ zone-management ablation
def _mgmt_profile(variant: str):
    base = _aging_profile()
    if variant == "calibrated":
        return base
    return base.scaled(
        reset_base_ns=base.reset_base_ns // _CHEAP_MGMT_FACTOR,
        reset_span_ns=base.reset_span_ns // _CHEAP_MGMT_FACTOR,
        reset_pad_span_ns=base.reset_pad_span_ns // _CHEAP_MGMT_FACTOR,
        finish_floor_ns=base.finish_floor_ns // _CHEAP_MGMT_FACTOR,
        finish_pad_bandwidth=base.finish_pad_bandwidth * _CHEAP_MGMT_FACTOR,
    )


def _mgmt_point(config: ExperimentConfig, params: dict) -> dict:
    variant = params["variant"]
    sim, device = build_device(
        config, profile=_mgmt_profile(variant), seed_salt=f"mgmt/{variant}"
    )
    runtime = 2 * _age_runtime_ns(config)
    writer = JobRunner(
        device, build_stack(device, "spdk"),
        JobSpec(op=IoKind.APPEND, block_size=64 * KIB, iodepth=4,
                numjobs=2, zones=_MGMT_ZONES, reset_when_full=True,
                runtime_ns=runtime, seed=config.seed),
    )
    sim.run(until=writer.start())
    result = writer.result
    max_erases, retired = _wear_columns(device)
    return {"rows": [{
        "kind": "mgmt",
        "label": variant,
        "append_p50_us": round(result.latency.percentile_us(50), 2),
        "append_p99_us": round(result.latency.percentile_us(99), 2),
        "bandwidth_mibs": round(result.bandwidth_mibs, 1),
        "resets": result.resets,
        "reset_p95_ms": (
            round(result.reset_latency.percentile_ns(95) / 1e6, 2)
            if result.resets else "-"
        ),
        "errors": sum(result.errors.values()),
        "max_erase_count": max_erases,
        "zones_retired": retired,
    }]}


# ----------------------------------------------------------------- plumbing
def _aging_describe(config: ExperimentConfig) -> dict:
    notes = [
        "age sweep: deterministic wear replay (Device.age) then a fixed "
        "append+read workload; interference: pre-aged victim/reclaim "
        "tenants per fault profile; mgmt ablation: calibrated vs "
        f"1/{_CHEAP_MGMT_FACTOR} reset/finish cost (PAPERS.md, small-zone "
        "regime)",
    ]
    if config.faults is None:
        notes.append(
            "no fault profile armed: age() is inert, so the age rows are "
            "identical by construction and only the interference points "
            "arm their own profiles"
        )
    return {
        "title": (
            "wear-dependent aging: latency vs age, interference under "
            "faults, and the zone-management-cost ablation"
        ),
        "columns": [
            "kind", "label", "epochs", "tenant",
            "append_p50_us", "append_p99_us", "read_p50_us", "read_p99_us",
            "bandwidth_mibs", "resets", "reset_p95_ms", "errors",
            "errors_by_owner", "max_erase_count", "zones_retired",
        ],
        "notes": notes,
    }


def _aging_plan(config: ExperimentConfig) -> list:
    return (
        [{"kind": "age", "epochs": e} for e in AGE_EPOCHS]
        + [{"kind": "interference", "profile": p}
           for p in INTERFERENCE_PROFILES]
        + [{"kind": "mgmt", "variant": v} for v in MGMT_VARIANTS]
    )


def _aging_point(config: ExperimentConfig, params: dict) -> dict:
    kind = params["kind"]
    if kind == "age":
        return _age_point(config, params)
    if kind == "interference":
        return _interference_point(config, params)
    if kind == "mgmt":
        return _mgmt_point(config, params)
    raise ValueError(f"unknown fig8_aging point kind {kind!r}")


def _monotone(values: list) -> bool:
    """Non-decreasing, ignoring sub-µs jitter between adjacent points."""
    numeric = [v for v in values if isinstance(v, (int, float))]
    if len(numeric) != len(values) or len(numeric) < 2:
        return False
    return all(b >= a - 1.0 for a, b in zip(numeric, numeric[1:]))


def _aging_fold(result: ExperimentResult, config: ExperimentConfig,
                payloads: list) -> None:
    age_rows = sorted(
        (r for r in result.rows if r["kind"] == "age"),
        key=lambda r: r["epochs"],
    )
    if config.faults is not None and len(age_rows) >= 2:
        append_mono = _monotone([r["append_p99_us"] for r in age_rows])
        read_mono = _monotone([r["read_p99_us"] for r in age_rows])
        result.meta["age_append_p99_monotone"] = append_mono
        result.meta["age_read_p99_monotone"] = read_mono
        first, last = age_rows[0], age_rows[-1]
        growth = (
            last["append_p99_us"] / first["append_p99_us"]
            if first["append_p99_us"] else 0.0
        )
        result.meta["age_append_p99_growth"] = round(growth, 3)
        if append_mono or read_mono:
            which = [name for name, flag in
                     (("append", append_mono), ("read", read_mono)) if flag]
            result.notes.append(
                f"{'/'.join(which)} p99 grows monotonically with age "
                f"under --faults {config.faults} "
                f"(append p99 x{growth:.2f} over {last['epochs']} epochs)"
            )

    victim = {
        row["label"]: row["read_p99_us"]
        for row in result.rows
        if row["kind"] == "interference" and row["tenant"] == "victim"
        and isinstance(row["read_p99_us"], (int, float))
    }
    base = victim.get("none")
    if base:
        inflation = {
            profile: round(victim[profile] / base, 3)
            for profile in INTERFERENCE_PROFILES[1:] if profile in victim
        }
        result.meta["interference_p99_inflation"] = inflation
        for profile, factor in inflation.items():
            result.notes.append(
                f"victim read p99 inflated {factor:.2f}x under the "
                f"pre-aged {profile} profile vs the fresh baseline"
            )

    mgmt = {
        row["label"]: row for row in result.rows if row["kind"] == "mgmt"
    }
    cal, cheap = mgmt.get("calibrated"), mgmt.get("cheap-mgmt")
    if cal and cheap:
        if cal["bandwidth_mibs"]:
            bw_ratio = cheap["bandwidth_mibs"] / cal["bandwidth_mibs"]
            result.meta["mgmt_cheap_bandwidth_ratio"] = round(bw_ratio, 3)
        if (isinstance(cal["reset_p95_ms"], (int, float))
                and isinstance(cheap["reset_p95_ms"], (int, float))
                and cal["reset_p95_ms"]):
            reset_ratio = cheap["reset_p95_ms"] / cal["reset_p95_ms"]
            result.meta["mgmt_cheap_reset_p95_ratio"] = round(reset_ratio, 3)
            result.notes.append(
                f"cheap zone management cuts reset p95 to "
                f"{reset_ratio:.2f}x the calibrated firmware cost over "
                f"a {len(_MGMT_ZONES)}-zone reclaim loop"
            )


FIG8_AGING_PLAN = ExperimentPlan(
    "fig8_aging", _aging_plan, _aging_point, _aging_describe, _aging_fold
)


def run_fig8_aging(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Latency vs device age, tenant interference under wear-dependent
    fault profiles, and the zone-management-cost ablation."""
    return run_via_points(FIG8_AGING_PLAN, config)
