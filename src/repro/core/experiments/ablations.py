"""Ablations of the model's design choices (DESIGN.md §5).

The paper calibrates one device; these ablations vary the mechanisms the
calibration pinned down and show each observation's *cause*:

* **write-buffer size** drives the ZNS read tail under write floods
  (Obs #11): the p95 tracks buffer_bytes / program_bandwidth,
* **append command cost** is the entire source of the write/append gap
  (Obs #4) and the 132 K append plateau (Obs #6): setting it equal to
  the write cost reproduces exactly the NVMeVirt failure mode,
* **GC die priority** on the conventional device: without urgency, GC
  starves behind the buffered write backlog and wedges the FTL,
* **flash geometry** (the ConfZNS-style design-space sweep): device
  bandwidth and read scaling follow channels × dies,
* **zone size** (small-zone vs large-zone ZNS, §V / Bae et al., Im et
  al.): small zones lift the open-zone ceiling so inter-zone append
  scaling extends past 14 zones, at the cost of per-zone bandwidth.
"""

from __future__ import annotations

import numpy as np

from ...conv.device import PRIO_IO, ConvDevice
from ...faults.plan import resolve
from ...flash.geometry import FlashGeometry
from ...hostif.namespace import LBA_4K
from ...sim.engine import Simulator, ms
from ...sim.rng import StreamFactory
from ...stacks.spdk import SpdkStack
from ...workload.job import IoKind, JobSpec, Pattern
from ...workload.runner import JobRunner
from ...zns.device import ZnsDevice
from ...zns.profiles import zn540
from ..results import ExperimentResult
from .common import KIB, MIB, ExperimentConfig, build_device, measure_job
from .io_interference import (
    _run_device,
    _writer_job,
    conv_experiment_profile,
)
from .points import ExperimentPlan, run_via_points

__all__ = [
    "run_ablation_buffer",
    "run_ablation_append_cost",
    "run_ablation_gc_priority",
    "run_ablation_geometry",
    "run_ablation_zone_size",
    "small_zone_profile",
    "ABLATION_BUFFER_PLAN",
    "ABLATION_APPEND_COST_PLAN",
    "ABLATION_GC_PRIORITY_PLAN",
    "ABLATION_GEOMETRY_PLAN",
    "ABLATION_ZONE_SIZE_PLAN",
]


def _buffer_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "ZNS read p95 under write flood vs device write-buffer size",
        "columns": ["buffer_mib", "read_p95_ms", "predicted_ms"],
        "notes": [
            "prediction: buffer_bytes / program_bandwidth — the read waits "
            "out the buffered program backlog at its die",
        ],
    }


def _buffer_plan(config: ExperimentConfig) -> list:
    return [{"buffer_mib": buffer_mib} for buffer_mib in (28, 56, 112, 224)]


def _buffer_point(config: ExperimentConfig, params: dict) -> dict:
    buffer_mib = params["buffer_mib"]
    profile = zn540(num_zones=24, write_buffer_bytes=buffer_mib * MIB)
    sim = Simulator()
    device = ZnsDevice(sim, profile, streams=StreamFactory(config.seed))
    read_zones = list(range(16, 24))
    for z in read_zones:
        device.force_fill(z, device.zones.zones[z].cap_lbas)
    runtime = min(config.interference_runtime_ns, ms(900))
    writer = JobRunner(
        device, SpdkStack(device, enforce_write_serialization=False),
        _writer_job(list(range(8)), runtime, "zns", None, config.seed),
    )
    reader = JobRunner(device, SpdkStack(device), JobSpec(
        op=IoKind.READ, block_size=4 * KIB, pattern=Pattern.RANDOM,
        iodepth=4, zones=read_zones, runtime_ns=runtime,
        ramp_ns=runtime // 4, seed=config.seed + 1))
    events = [writer.start(), reader.start()]
    sim.run(until=sim.all_of(events))
    predicted = buffer_mib * MIB / device.backend.aggregate_program_bandwidth()
    return {"rows": [{
        "buffer_mib": buffer_mib,
        "read_p95_ms": reader.result.latency.percentile_ns(95) / 1e6,
        "predicted_ms": predicted * 1e3,
    }]}


ABLATION_BUFFER_PLAN = ExperimentPlan(
    "ablation-buffer", _buffer_plan, _buffer_point, _buffer_describe
)


def run_ablation_buffer(config: ExperimentConfig | None = None) -> ExperimentResult:
    """ZNS read-tail p95 under a write flood vs write-buffer size."""
    return run_via_points(ABLATION_BUFFER_PLAN, config)


def _append_cost_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "write/append gap and append plateau vs append command cost",
        "columns": ["append_cmd_us", "append_qd1_us", "gap_pct", "plateau_kiops"],
        "notes": ["first row uses the write cost (the NVMeVirt assumption)"],
    }


def _append_cost_plan(config: ExperimentConfig) -> list:
    base = zn540()
    return [
        {"cmd_ns": cmd_ns}
        for cmd_ns in (base.cmd_write_ns, base.cmd_append_small_ns, 9_500)
    ]


def _append_cost_point(config: ExperimentConfig, params: dict) -> dict:
    cmd_ns = params["cmd_ns"]
    profile = zn540(
        num_zones=config.num_zones,
        cmd_append_small_ns=cmd_ns,
    )
    sim, device = build_device(config, profile=profile)
    job = JobSpec(op=IoKind.APPEND, block_size=4 * KIB,
                  runtime_ns=config.point_runtime_ns, ramp_ns=config.ramp_ns,
                  zones=[0], seed=config.seed)
    qd1 = measure_job(device, "spdk", job)
    sim2, device2 = build_device(config, profile=profile)
    job8 = JobSpec(op=IoKind.APPEND, block_size=4 * KIB,
                   runtime_ns=config.point_runtime_ns, ramp_ns=config.ramp_ns,
                   iodepth=8, zones=[0], seed=config.seed)
    plateau = measure_job(device2, "spdk", job8)
    sim3, device3 = build_device(config, profile=profile)
    wjob = JobSpec(op=IoKind.WRITE, block_size=4 * KIB,
                   runtime_ns=config.point_runtime_ns, ramp_ns=config.ramp_ns,
                   zones=[0], seed=config.seed)
    write_qd1 = measure_job(device3, "spdk", wjob)
    gap = (qd1.latency.mean_us - write_qd1.latency.mean_us) / qd1.latency.mean_us
    return {"rows": [{
        "append_cmd_us": cmd_ns / 1e3,
        "append_qd1_us": qd1.latency.mean_us,
        "gap_pct": gap * 100,
        "plateau_kiops": plateau.kiops,
    }]}


ABLATION_APPEND_COST_PLAN = ExperimentPlan(
    "ablation-append-cost", _append_cost_plan, _append_cost_point,
    _append_cost_describe,
)


def run_ablation_append_cost(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Obs #4/#6 sensitivity to the append controller command cost."""
    return run_via_points(ABLATION_APPEND_COST_PLAN, config)


def _gc_priority_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Conventional SSD under flood: GC die priority matters",
        "columns": ["gc_priority", "write_mean_mibs", "gc_pages_copied", "ftl_stalls"],
        "notes": [
            "at plain I/O priority GC queues behind the buffered write "
            "backlog, starves, and the FTL wedges at its block reserve",
        ],
    }


def _gc_priority_plan(config: ExperimentConfig) -> list:
    return [
        {"label": label, "priority": priority}
        for label, priority in (("urgent", -1), ("plain-io", PRIO_IO))
    ]


def _gc_priority_point(config: ExperimentConfig, params: dict) -> dict:
    label, priority = params["label"], params["priority"]
    sim = Simulator()
    device = ConvDevice(
        sim, conv_experiment_profile(), lba_format=LBA_4K,
        streams=StreamFactory(config.seed), gc_priority=priority,
        faults=resolve(config.faults),
        telemetry=config.telemetry,
    )
    device.precondition(0.92, steady_state_churn=1.0, seed=config.seed)
    runtime = min(config.interference_runtime_ns, ms(900))
    writer = JobRunner(
        device, SpdkStack(device, enforce_write_serialization=False),
        _writer_job((0, device.namespace.capacity_lbas), runtime, "conv",
                    None, config.seed),
    )
    sim.run(until=writer.start())
    values = writer.result.timeseries.bandwidth_values()[1:-1]
    stalled = device.ftl.free_block_count <= device._gc_reserve
    return {"rows": [{
        "gc_priority": label,
        "write_mean_mibs": float(np.mean(values)) if len(values) else 0.0,
        "gc_pages_copied": device.gc_stats.pages_copied,
        "ftl_stalls": "yes" if stalled else "no",
    }]}


ABLATION_GC_PRIORITY_PLAN = ExperimentPlan(
    "ablation-gc-priority", _gc_priority_plan, _gc_priority_point,
    _gc_priority_describe,
)


def run_ablation_gc_priority(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Conventional GC at urgent vs plain I/O priority under a flood."""
    return run_via_points(ABLATION_GC_PRIORITY_PLAN, config)


def _geometry_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Device limits vs flash parallelism (channels x dies)",
        "columns": ["channels", "dies_per_channel", "write_bw_mibs", "read_qd32_kiops"],
    }


def _geometry_plan(config: ExperimentConfig) -> list:
    return [
        {"channels": channels, "dies": dies}
        for channels, dies in ((4, 2), (8, 2), (8, 4), (16, 4))
    ]


def _geometry_point(config: ExperimentConfig, params: dict) -> dict:
    channels, dies = params["channels"], params["dies"]
    geometry = FlashGeometry(
        channels=channels, dies_per_channel=dies, planes_per_die=2,
        blocks_per_plane=548, pages_per_block=512, page_size=16 * KIB,
    )
    profile = zn540(num_zones=config.num_zones, geometry=geometry)
    sim, device = build_device(config, profile=profile)
    device.debug_prefill_buffer(zone_index=1)
    wjob = JobSpec(op=IoKind.WRITE, block_size=16 * KIB,
                   runtime_ns=ms(40), ramp_ns=ms(10), zones=[0],
                   seed=config.seed)
    bw = measure_job(device, "spdk", wjob).bandwidth_mibs
    sim2, device2 = build_device(config, profile=profile)
    device2.force_fill(0, device2.zones.zones[0].cap_lbas)
    rjob = JobSpec(op=IoKind.READ, block_size=4 * KIB, iodepth=32,
                   pattern=Pattern.RANDOM, zones=[0],
                   runtime_ns=config.point_runtime_ns,
                   ramp_ns=config.ramp_ns, seed=config.seed)
    kiops = measure_job(device2, "spdk", rjob).kiops
    return {"rows": [{
        "channels": channels, "dies_per_channel": dies,
        "write_bw_mibs": bw, "read_qd32_kiops": kiops,
    }]}


ABLATION_GEOMETRY_PLAN = ExperimentPlan(
    "ablation-geometry", _geometry_plan, _geometry_point, _geometry_describe
)


def run_ablation_geometry(config: ExperimentConfig | None = None) -> ExperimentResult:
    """ConfZNS-style design-space sweep: bandwidth/IOPS vs parallelism."""
    return run_via_points(ABLATION_GEOMETRY_PLAN, config)


def small_zone_profile(**overrides):
    """A small-zone ZNS device (paper §V: Bae et al., Im et al.).

    96 MiB zones with a generous open/active budget — the design point
    that trades per-zone striping width for many concurrently open
    zones.
    """
    base = zn540(
        name="small-zone ZNS (simulated)",
        zone_size_bytes=96 * MIB,
        zone_cap_bytes=96 * MIB,
        num_zones=256,
        max_open_zones=64,
        max_active_zones=64,
    )
    return base.scaled(**overrides) if overrides else base


def _zone_size_profile(label: str):
    if label == "small-zone":
        return small_zone_profile()
    return zn540(num_zones=64)


def _zone_size_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Inter-zone append scaling vs zone size (open-zone ceiling)",
        "columns": ["device", "zones", "kiops"],
        "notes": [
            "small zones lift the 14-open-zone ceiling (Im et al. [87]); "
            "the per-command append cap still binds at ~132 KIOPS",
        ],
    }


def _zone_size_plan(config: ExperimentConfig) -> list:
    return [
        {"device": label, "zones": zones}
        for label in ("large-zone (ZN540)", "small-zone")
        for zones in (1, 2, 4, 8, 14, 28)
    ]


def _zone_size_point(config: ExperimentConfig, params: dict) -> dict:
    label, zones = params["device"], params["zones"]
    profile = _zone_size_profile(label)
    if zones > profile.max_open_zones:
        return {"rows": [{
            "device": label, "zones": zones, "kiops": "exceeds-open-limit",
        }]}
    sim, device = build_device(config, profile=profile)
    job = JobSpec(op=IoKind.APPEND, block_size=4 * KIB,
                  runtime_ns=config.point_runtime_ns,
                  ramp_ns=config.ramp_ns, numjobs=zones,
                  zones=list(range(zones)), zone_per_thread=True,
                  seed=config.seed)
    job_result = measure_job(device, "spdk", job)
    return {"rows": [{"device": label, "zones": zones, "kiops": job_result.kiops}]}


ABLATION_ZONE_SIZE_PLAN = ExperimentPlan(
    "ablation-zone-size", _zone_size_plan, _zone_size_point, _zone_size_describe
)


def run_ablation_zone_size(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Inter-zone append scaling: large-zone vs small-zone device."""
    return run_via_points(ABLATION_ZONE_SIZE_PLAN, config)
