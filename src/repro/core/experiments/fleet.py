"""``fig7_fleet``: Fig. 7's interference story replayed as a serving fleet.

The §III-G microbenchmark (two threads, one device) says *what* the
device does — reset latency inflates +56–78 % under concurrent I/O
while I/O is unaffected by pure resets (Obs #12/#13). This experiment
says what that *costs a fleet*: N serving tenants run an LSM workload
(SST flushes, background compaction, point reads with a p99 SLO) on
disjoint zone partitions of one shared device, and a reclaim tenant —
a log/WAL-style antagonist that burns through its own partition with
real refill writes and trailing resets — is co-located with them.

Two points, one shared-device fleet each:

* ``baseline`` — the serving tenants alone (the reclaim partition is
  reserved but idle, so serving-tenant zones are identical across
  modes);
* ``reset-storm`` — the reclaim tenant added.

Per-tenant rows report the serving read p50/p99 against the SLO with
violation counts, plus flush/compaction progress and reset latencies.
The fold then attributes the cross-mode damage: victim read p99
inflation (the antagonist's refill writes backlog the shared dies —
the Obs #11 mechanism — because pure resets never delay I/O in this
calibrated model), and the antagonist's own reset p95 stalling behind
victim I/O (Obs #12/#13's direction, now with a tenant label on it).
"""

from __future__ import annotations

from ...apps.lsm import LsmConfig, LsmWorkload
from ...sim.engine import us
from ...tenancy import ResetStorm, Tenant, TenantScheduler, partition_zones
from ...zns.profiles import zn540_small
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device
from .points import ExperimentPlan, run_via_points

__all__ = ["run_fig7_fleet", "FIG7_FLEET_PLAN", "FLEET_MODES"]

FLEET_MODES = ("baseline", "reset-storm")

#: Zones per serving tenant; the reclaim tenant gets the remainder.
_SERVE_ZONES = 8
#: Zones reserved for the reclaim tenant (enough that its refill writes
#: span the whole measured window instead of stalling on its first,
#: victim-inflated reset).
_STORM_ZONES = 40


def _fleet_profile(config: ExperimentConfig):
    """Small zones (LSM flushes can fill and seal them inside the run)
    sized so every tenant partition fits."""
    num_zones = config.fleet_tenants * _SERVE_ZONES + _STORM_ZONES
    return zn540_small(num_zones=num_zones, zone_size_bytes=1024 * KIB,
                       zone_cap_bytes=768 * KIB)


def _lsm_config() -> LsmConfig:
    return LsmConfig(sst_bytes=128 * KIB, append_chunk=32 * KIB,
                     flush_interval_ns=us(1_000), readers=2,
                     read_interval_ns=us(40))


def _one_mode(config: ExperimentConfig, mode: str) -> list[dict]:
    if config.fleet_tenants < 1:
        raise ValueError("fig7_fleet needs at least one serving tenant")
    sim, device = build_device(
        config, profile=_fleet_profile(config), seed_salt="fleet"
    )
    runtime = config.fleet_runtime_ns
    counts = [_SERVE_ZONES] * config.fleet_tenants + [_STORM_ZONES]
    parts = partition_zones(device.zones.num_zones, counts)
    slo_ns = round(config.fleet_slo_p99_us * 1_000)

    scheduler = TenantScheduler(device)
    workloads = {}
    for i in range(config.fleet_tenants):
        tenant = Tenant(device, f"serve{i}", zones=parts[i], index=i,
                        seed=config.seed, slo_p99_ns=slo_ns)
        workload = LsmWorkload(tenant, runtime, _lsm_config())
        scheduler.add_workload(tenant, workload, kind="lsm")
        workloads[tenant.name] = workload
    if mode == "reset-storm":
        reclaim = Tenant(device, "reclaim", zones=parts[-1],
                         index=config.fleet_tenants, seed=config.seed)
        storm = ResetStorm(reclaim, runtime, refill="write",
                           pace_ns=us(200))
        scheduler.add_workload(reclaim, storm, kind="reclaim")

    rows = []
    for result in scheduler.run():
        workload = workloads.get(result.tenant)
        rows.append({
            "mode": mode,
            "tenant": result.tenant,
            "workload": result.workload,
            "reads": result.ops,
            "read_p50_us": round(result.p50_us, 2) if result.ops else "-",
            "read_p99_us": round(result.p99_us, 2) if result.ops else "-",
            "slo_p99_us": result.slo_p99_us if result.slo_p99_us else "-",
            "slo_violations": result.slo_violations,
            "slo_met": (
                "-" if result.slo_p99_us is None or not result.ops
                else "yes" if result.p99_us <= result.slo_p99_us else "NO"
            ),
            "flushes": workload.flushes if workload is not None else "-",
            "compactions": (
                workload.compactions if workload is not None else "-"
            ),
            "resets": result.resets,
            "reset_p95_ms": (
                round(result.reset_p95_ms, 2) if result.resets else "-"
            ),
            "errors": sum(result.errors.values()),
            "errors_by_owner": ",".join(
                f"{owner}:{count}"
                for owner, count in sorted(result.errors_by_owner.items())
            ) or "-",
        })
    return rows


def _fleet_describe(config: ExperimentConfig) -> dict:
    return {
        "title": (
            "multi-tenant serving fleet under a co-located reclaim "
            "tenant (Obs #11–13)"
        ),
        "columns": [
            "mode", "tenant", "workload", "reads", "read_p50_us",
            "read_p99_us", "slo_p99_us", "slo_violations", "slo_met",
            "flushes", "compactions", "resets", "reset_p95_ms", "errors",
            "errors_by_owner",
        ],
        "notes": [
            f"{config.fleet_tenants} LSM serving tenant(s) on "
            f"{_SERVE_ZONES}-zone partitions; reclaim tenant refills "
            "with real appends (pure resets never delay I/O here)",
        ],
    }


def _fleet_plan(config: ExperimentConfig) -> list:
    return [{"mode": mode} for mode in FLEET_MODES]


def _fleet_point(config: ExperimentConfig, params: dict) -> dict:
    return {"rows": _one_mode(config, params["mode"])}


def _fleet_fold(result: ExperimentResult, config: ExperimentConfig,
                payloads: list) -> None:
    """Cross-mode attribution: victim p99 inflation + reset stalling."""
    def serving_p99s(mode: str) -> list[float]:
        return [
            row["read_p99_us"] for row in result.rows
            if row["mode"] == mode and row["workload"] == "lsm"
            and isinstance(row["read_p99_us"], (int, float))
        ]

    base, storm = serving_p99s("baseline"), serving_p99s("reset-storm")
    if base and storm and all(p > 0 for p in base):
        inflation = (sum(storm) / len(storm)) / (sum(base) / len(base))
        result.meta["read_p99_inflation"] = round(inflation, 3)
        result.notes.append(
            f"victim read p99 inflated {inflation:.2f}x by the "
            "co-located reclaim tenant (Obs #12/#13 replayed fleet-side)"
        )
    violations = {
        mode: sum(
            row["slo_violations"] for row in result.rows
            if row["mode"] == mode and row["workload"] == "lsm"
        )
        for mode in FLEET_MODES
    }
    result.meta["slo_violations"] = violations


FIG7_FLEET_PLAN = ExperimentPlan(
    "fig7_fleet", _fleet_plan, _fleet_point, _fleet_describe, _fleet_fold
)


def run_fig7_fleet(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Per-tenant serving p99/SLO accounting with and without a
    co-located reclaim tenant."""
    return run_via_points(FIG7_FLEET_PLAN, config)
