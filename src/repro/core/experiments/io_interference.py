"""§III-F Fig. 6 + Observation #11: ZNS vs conventional NVMe under GC.

The paper's setup: both devices share the same hardware; on the
conventional SSD garbage collection runs inside the FTL, on ZNS the
benchmark itself reclaims zones with resets. Writers are 4 threads of
128 KiB requests at QD8 (random overwrites on the conventional device,
appends over a zone set with host resets on ZNS); a separate thread
issues 4 KiB random reads.

We report:

* **Fig. 6a/6b** — write and read throughput over time for both devices
  at the unthrottled (peak ≈ 1,155 MiB/s) setting, plus stability
  metrics (coefficient of variation);
* **Obs. #11 tails** — read p95 when idle vs under the write flood
  (paper: 81.41 µs idle; 98.04 ms ZNS vs 299.89 ms conventional under
  load, QD1 reads).

Scale substitutions (DESIGN.md §7): the conventional device uses a
capacity-scaled geometry (~12 GiB) — steady-state GC behaviour depends
on the *fractions* (overprovisioning, utilization), not absolute
capacity — and the 20-minute wall-clock runs become seconds of simulated
time.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ...conv.device import ConvDevice
from ...faults.plan import resolve
from ...flash.geometry import FlashGeometry
from ...hostif.namespace import LBA_4K
from ...sim.engine import Simulator, ms
from ...sim.rng import StreamFactory
from ...stacks.spdk import SpdkStack
from ...workload.job import IoKind, JobSpec, Pattern
from ...workload.runner import JobRunner
from ...zns.profiles import sn640, zn540
from ..results import ExperimentResult
from .common import KIB, MIB, ExperimentConfig, build_device
from .points import ExperimentPlan, run_via_points

__all__ = [
    "run_fig6",
    "run_fig6_rate_sweep",
    "run_obs11_read_tail",
    "conv_experiment_profile",
    "FIG6_PLAN",
    "FIG6_RATES_PLAN",
    "OBS11_PLAN",
]

WRITE_THREADS = 4
WRITE_QD = 8
WRITE_BS = 128 * KIB
READ_BS = 4 * KIB


def conv_experiment_profile():
    """The SN640 profile on a capacity-scaled (~12 GiB) geometry."""
    geometry = FlashGeometry(
        channels=8,
        dies_per_channel=4,
        planes_per_die=2,
        blocks_per_plane=48,
        pages_per_block=256,
        page_size=16 * KIB,
    )
    return sn640(geometry=geometry)


def _build_conv(config: ExperimentConfig):
    sim = Simulator()
    device = ConvDevice(
        sim, conv_experiment_profile(), lba_format=LBA_4K,
        streams=StreamFactory(config.seed),
        faults=resolve(config.faults),
        telemetry=config.telemetry,
    )
    # 92% utilization (a heavily filled enterprise device) plus enough
    # random churn to reach the greedy-GC steady state before measuring.
    device.precondition(0.92, steady_state_churn=1.5, seed=config.seed)
    return sim, device


def _zns_setup(config: ExperimentConfig):
    sim, device = build_device(config, profile=zn540(num_zones=24))
    # Pre-fill a read region (reads and writes target disjoint zones).
    read_zones = list(range(16, 24))
    for z in read_zones:
        device.force_fill(z, device.zones.zones[z].cap_lbas)
    write_zones = list(range(0, 8))
    return sim, device, write_zones, read_zones


def _writer_job(zones_or_range, runtime_ns: int, kind: str,
                rate_limit_bps=None, seed=0) -> JobSpec:
    common = dict(
        block_size=WRITE_BS,
        runtime_ns=runtime_ns,
        iodepth=WRITE_QD,
        numjobs=WRITE_THREADS,
        rate_limit_bps=rate_limit_bps,
        seed=seed,
    )
    if kind == "zns":
        # Appends over a set of zones with host-managed resets.
        return JobSpec(op=IoKind.APPEND, zones=zones_or_range,
                       reset_when_full=True, **common)
    return JobSpec(op=IoKind.WRITE, pattern=Pattern.RANDOM,
                   address_range=zones_or_range, **common)


def _run_device(config: ExperimentConfig, kind: str, with_reader: bool,
                reader_qd: int = 32, rate_limit_bps=None,
                with_writer: bool = True):
    """One timeline run; returns (write JobResult|None, read JobResult|None)."""
    if kind == "zns":
        sim, device, write_zones, read_zones = _zns_setup(config)
        write_target = write_zones
    else:
        sim, device = _build_conv(config)
        write_target = (0, device.namespace.capacity_lbas)
    runtime = config.interference_runtime_ns
    events = []
    writer = None
    if with_writer:
        writer = JobRunner(
            device, SpdkStack(device, enforce_write_serialization=False),
            _writer_job(write_target, runtime, kind, rate_limit_bps, config.seed),
            ts_interval_ns=ms(50),
        )
        events.append(writer.start())
    reader = None
    if with_reader:
        if kind == "zns":
            read_job = JobSpec(op=IoKind.READ, block_size=READ_BS,
                               pattern=Pattern.RANDOM, iodepth=reader_qd,
                               zones=read_zones, runtime_ns=runtime,
                               seed=config.seed + 1)
        else:
            read_job = JobSpec(op=IoKind.READ, block_size=READ_BS,
                               pattern=Pattern.RANDOM, iodepth=reader_qd,
                               address_range=(0, device.namespace.capacity_lbas),
                               runtime_ns=runtime, seed=config.seed + 1)
        reader = JobRunner(device, SpdkStack(device), read_job, ts_interval_ns=ms(50))
        events.append(reader.start())
    sim.run(until=sim.all_of(events))
    return (writer.result if writer else None), (reader.result if reader else None)


def _stability(values: np.ndarray) -> float:
    """Coefficient of variation of a throughput series (lower = stabler)."""
    if len(values) == 0 or float(np.mean(values)) == 0.0:
        return 0.0
    return float(np.std(values) / np.mean(values))


def _fig6_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Throughput under write flood + concurrent reads (ZNS vs NVMe)",
        "columns": ["device", "metric", "mean_mibs", "cov", "min_mibs", "max_mibs"],
        "notes": [
            "paper runs 20 wall-clock minutes; we run a shorter simulated "
            "window at identical steady-state conditions (DESIGN.md §7)",
        ],
    }


def _fig6_plan(config: ExperimentConfig) -> list:
    return [{"kind": kind} for kind in ("zns", "conv")]


def _fig6_point(config: ExperimentConfig, params: dict) -> dict:
    kind = params["kind"]
    write_res, read_res = _run_device(config, kind, with_reader=True)
    # Drop the first (start-up) and last (partially covered) buckets
    # from the stability statistics.
    wseries = write_res.timeseries.bandwidth_values()[1:-1]
    rseries = read_res.timeseries.bandwidth_values()[1:-1]
    return {
        "rows": [
            {
                "device": kind, "metric": "write",
                "mean_mibs": float(np.mean(wseries)) if len(wseries) else 0.0,
                "cov": _stability(wseries),
                "min_mibs": float(np.min(wseries)) if len(wseries) else 0.0,
                "max_mibs": float(np.max(wseries)) if len(wseries) else 0.0,
            },
            {
                "device": kind, "metric": "read",
                "mean_mibs": float(np.mean(rseries)) if len(rseries) else 0.0,
                "cov": _stability(rseries),
                "min_mibs": float(np.min(rseries)) if len(rseries) else 0.0,
                "max_mibs": float(np.max(rseries)) if len(rseries) else 0.0,
            },
        ],
        "series": [
            [f"{kind}-write",
             [list(p) for p in write_res.timeseries.bandwidth_series()]],
            [f"{kind}-read",
             [list(p) for p in read_res.timeseries.bandwidth_series()]],
        ],
    }


FIG6_PLAN = ExperimentPlan("fig6", _fig6_plan, _fig6_point, _fig6_describe)


def run_fig6(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Write/read throughput over time: ZNS vs conventional (Fig. 6)."""
    return run_via_points(FIG6_PLAN, config)


def _fig6_rates_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Write-throughput stability vs rate limit (ZNS vs NVMe)",
        "columns": ["device", "rate_limit_mibs", "write_mean_mibs", "write_cov"],
        "notes": ["paper: ZNS stable at every rate; conventional fluctuates"],
    }


def _fig6_rates_plan(config: ExperimentConfig) -> list:
    return [
        {"kind": kind, "rate_mibs": rate_mibs}
        for kind in ("zns", "conv")
        for rate_mibs in (250, 750, 1_155)
    ]


def _fig6_rates_point(config: ExperimentConfig, params: dict) -> dict:
    kind, rate_mibs = params["kind"], params["rate_mibs"]
    write_res, _ = _run_device(
        config, kind, with_reader=True,
        rate_limit_bps=rate_mibs * MIB,
    )
    values = write_res.timeseries.bandwidth_values()[1:-1]
    return {"rows": [{
        "device": kind,
        "rate_limit_mibs": rate_mibs,
        "write_mean_mibs": float(np.mean(values)) if len(values) else 0.0,
        "write_cov": _stability(values),
    }]}


FIG6_RATES_PLAN = ExperimentPlan(
    "fig6rates", _fig6_rates_plan, _fig6_rates_point, _fig6_rates_describe
)


def run_fig6_rate_sweep(config: ExperimentConfig | None = None) -> ExperimentResult:
    """The rate-limited Fig. 6 configurations (250/750/1,155 MiB/s).

    The paper reports (without plotting) that on ZNS "both write and
    read throughput remains stable in all rate-limiting configurations",
    while the conventional device fluctuates whenever concurrent writes
    run. We sweep the same fio-style rate caps on both devices.
    """
    return run_via_points(FIG6_RATES_PLAN, config)


def _obs11_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Random-read p95 latency, idle vs concurrent write flood",
        "columns": ["device", "condition", "read_p95", "unit"],
    }


def _obs11_plan(config: ExperimentConfig) -> list:
    return [
        {"kind": kind, "condition": condition}
        for kind in ("zns", "conv")
        for condition in ("idle", "write-flood")
    ]


def _obs11_point(config: ExperimentConfig, params: dict) -> dict:
    kind, condition = params["kind"], params["condition"]
    if condition == "idle":
        # Idle reads (QD32, as in the paper's read-only measurement).
        _, idle_res = _run_device(
            replace(config, interference_runtime_ns=ms(40)),
            kind, with_reader=True, reader_qd=32, with_writer=False,
        )
        row = {
            "device": kind, "condition": "idle",
            "read_p95": idle_res.latency.percentile_us(95), "unit": "us",
        }
    else:
        # Reads at QD1 under the full-rate write flood. QD1 yields only a
        # handful of completions per second on a flooded device, so run
        # this point longer for a usable tail estimate.
        loaded_cfg = replace(
            config, interference_runtime_ns=2 * config.interference_runtime_ns
        )
        _, loaded_res = _run_device(loaded_cfg, kind, with_reader=True, reader_qd=1)
        row = {
            "device": kind, "condition": "write-flood",
            "read_p95": loaded_res.latency.percentile_ns(95) / 1e6, "unit": "ms",
        }
    return {"rows": [row]}


OBS11_PLAN = ExperimentPlan("obs11", _obs11_plan, _obs11_point, _obs11_describe)


def run_obs11_read_tail(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Read p95: idle vs under the unthrottled write flood (QD1 reads)."""
    return run_via_points(OBS11_PLAN, config)
