"""§III-C Fig. 2: write/append latency vs storage stack × LBA format.

* **Fig. 2a** — request size equals the LBA-format block size (512 B or
  4 KiB): shows the format effect (Observation #1) and the stack effect
  (Observation #2).
* **Fig. 2b** — the best request sizes from Fig. 3 (4 KiB writes, 8 KiB
  appends) on both formats: shows write < append latency at equal
  conditions (Observation #4).

All points are single-threaded, synchronous (QD=1), as in the paper.
"""

from __future__ import annotations

from ...hostif.namespace import LBA_4K, LBA_512, LbaFormat
from ...workload.job import IoKind, JobSpec
from ..results import ExperimentResult
from .common import (
    KIB,
    ExperimentConfig,
    build_device,
    measure_job,
    sweep_stacks,
)
from .points import ExperimentPlan, run_via_points

__all__ = ["run_fig2a", "run_fig2b", "FIG2A_PLAN", "FIG2B_PLAN"]

#: io_uring cannot issue appends (§III-A); the thread-pool backend wraps
#: the sync passthrough path and can, like SPDK.
_APPEND_STACKS = ("spdk", "thrpool")

#: JSON-able point params carry the LBA size in bytes.
_FORMATS = {LBA_512.block_size: LBA_512, LBA_4K.block_size: LBA_4K}


def _measure_point(
    config: ExperimentConfig,
    lba_format: LbaFormat,
    stack_name: str,
    op: str,
    request_bytes: int,
) -> float:
    """Mean QD1 latency in µs for one (format, stack, op, size) point."""
    sim, device = build_device(config, lba_format=lba_format)
    zone = device.zones.zones[0]
    job = JobSpec(
        op=op,
        block_size=request_bytes,
        runtime_ns=config.point_runtime_ns,
        ramp_ns=config.ramp_ns,
        iodepth=1,
        zones=[zone.index],
        seed=config.seed,
    )
    result = measure_job(device, stack_name, job)
    return result.latency.mean_us


def _combo_plan(config: ExperimentConfig) -> list:
    """(format, stack, op) grid shared by Fig. 2a and Fig. 2b."""
    return [
        {"lba_bytes": lba_format.block_size, "stack": stack_name, "op": op}
        for lba_format in (LBA_512, LBA_4K)
        for stack_name in sweep_stacks(config)
        for op in (IoKind.WRITE, IoKind.APPEND)
        if not (op == IoKind.APPEND and stack_name not in _APPEND_STACKS)
    ]


#: The best request sizes from Fig. 3 (used by Fig. 2b).
_BEST_SIZE = {IoKind.WRITE: 4 * KIB, IoKind.APPEND: 8 * KIB}


def _fig2a_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "I/O latency of append/write, request size = LBA size (QD=1)",
        "columns": ["lba_format", "stack", "op", "request_bytes", "latency_us"],
        "notes": ["appends are SPDK-only: fio/io_uring cannot issue them (§III-A)"],
    }


def _fig2a_point(config: ExperimentConfig, params: dict) -> dict:
    lba_format = _FORMATS[params["lba_bytes"]]
    latency = _measure_point(
        config, lba_format, params["stack"], params["op"], lba_format.block_size
    )
    return {"rows": [{
        "lba_format": str(lba_format),
        "stack": params["stack"],
        "op": params["op"],
        "request_bytes": lba_format.block_size,
        "latency_us": latency,
    }]}


def _fig2b_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "I/O latency at optimal request sizes (4 KiB write / 8 KiB append, QD=1)",
        "columns": ["lba_format", "stack", "op", "request_bytes", "latency_us"],
    }


def _fig2b_point(config: ExperimentConfig, params: dict) -> dict:
    lba_format = _FORMATS[params["lba_bytes"]]
    request_bytes = _BEST_SIZE[params["op"]]
    latency = _measure_point(
        config, lba_format, params["stack"], params["op"], request_bytes
    )
    return {"rows": [{
        "lba_format": str(lba_format),
        "stack": params["stack"],
        "op": params["op"],
        "request_bytes": request_bytes,
        "latency_us": latency,
    }]}


FIG2A_PLAN = ExperimentPlan("fig2a", _combo_plan, _fig2a_point, _fig2a_describe)
FIG2B_PLAN = ExperimentPlan("fig2b", _combo_plan, _fig2b_point, _fig2b_describe)


def run_fig2a(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Latency with request size = LBA-format block size (Fig. 2a)."""
    return run_via_points(FIG2A_PLAN, config)


def run_fig2b(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Latency at the best request sizes: 4 KiB write, 8 KiB append."""
    return run_via_points(FIG2B_PLAN, config)
