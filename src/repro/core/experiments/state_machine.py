"""§III-E: zone state-machine transition costs.

* **Observation #9** — explicit vs implicit open cost, close cost, and
  the first-write/append penalty on implicitly opened zones.
* **Fig. 5a** — reset latency vs zone occupancy, for zones that were and
  were not finished first.
* **Fig. 5b** — finish latency vs zone occupancy.

As in the paper these use the SPDK path (fio cannot issue the
transitions). Occupancy is established with the ``force_fill`` fixture —
the metadata-equivalent of the paper's "fill with sequential 4 KiB
writes" (equivalence is unit-tested) — so a sweep over thousands of
zone-resets stays tractable.
"""

from __future__ import annotations

from ...hostif.commands import Command, Opcode, ZoneAction
from ...workload.stats import LatencyStats
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device

__all__ = ["run_obs9_open_close", "run_fig5a_reset", "run_fig5b_finish",
           "OCCUPANCY_LEVELS"]

#: The paper's occupancy levels: 0 %, one page, 6.25 % ... 100 %.
OCCUPANCY_LEVELS = ("0%", "1page", "6.25%", "12.5%", "25%", "50%", "100%")


def _occupancy_lbas(level: str, cap_lbas: int, page_lbas: int) -> int:
    if level == "0%":
        return 0
    if level == "1page":
        return page_lbas
    fraction = float(level.rstrip("%")) / 100.0
    return round(cap_lbas * fraction)


def _mgmt(device, zone_index: int, action: ZoneAction):
    zslba = device.zones.zones[zone_index].zslba
    done = device.submit(Command(Opcode.ZONE_MGMT, slba=zslba, action=action))
    return device.sim.run(until=done)


def _io(device, command: Command):
    return device.sim.run(until=device.submit(command))


def run_obs9_open_close(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Explicit/implicit open costs and close cost (Observation #9)."""
    config = config or ExperimentConfig()
    sim, device = build_device(config)
    result = ExperimentResult(
        experiment_id="obs9",
        title="Zone open/close and implicit-open costs (SPDK, 4 KiB I/O)",
        columns=["quantity", "latency_us"],
    )
    reps = max(8, config.zones_per_level)
    nlb = device.namespace.lbas(4 * KIB)

    open_lat, close_lat = LatencyStats(), LatencyStats()
    first_w, later_w, first_a, later_a = (LatencyStats() for _ in range(4))

    for rep in range(reps):
        # Explicit open / close costs.
        zone = rep % 4
        open_lat.record(_mgmt(device, zone, ZoneAction.OPEN).latency_ns)
        # Fill a little so close is on a written zone, then close.
        _io(device, Command(Opcode.WRITE, slba=device.zones.zones[zone].wp, nlb=nlb))
        close_lat.record(_mgmt(device, zone, ZoneAction.CLOSE).latency_ns)
        _mgmt(device, zone, ZoneAction.RESET)

        # Implicit open via write: first write pays the open penalty.
        zone_obj = device.zones.zones[4]
        first_w.record(_io(device, Command(Opcode.WRITE, slba=zone_obj.wp, nlb=nlb)).latency_ns)
        later_w.record(_io(device, Command(Opcode.WRITE, slba=zone_obj.wp, nlb=nlb)).latency_ns)
        _mgmt(device, 4, ZoneAction.RESET)

        # Implicit open via append.
        zone_obj = device.zones.zones[5]
        first_a.record(_io(device, Command(Opcode.APPEND, slba=zone_obj.zslba, nlb=nlb)).latency_ns)
        later_a.record(_io(device, Command(Opcode.APPEND, slba=zone_obj.zslba, nlb=nlb)).latency_ns)
        _mgmt(device, 5, ZoneAction.RESET)

    result.add_row(quantity="explicit open", latency_us=open_lat.mean_us)
    result.add_row(quantity="close", latency_us=close_lat.mean_us)
    result.add_row(quantity="first write after implicit open", latency_us=first_w.mean_us)
    result.add_row(quantity="later write", latency_us=later_w.mean_us)
    result.add_row(
        quantity="implicit-open write penalty",
        latency_us=first_w.mean_us - later_w.mean_us,
    )
    result.add_row(quantity="first append after implicit open", latency_us=first_a.mean_us)
    result.add_row(quantity="later append", latency_us=later_a.mean_us)
    result.add_row(
        quantity="implicit-open append penalty",
        latency_us=first_a.mean_us - later_a.mean_us,
    )
    return result


def run_fig5a_reset(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Reset latency vs occupancy, finished and unfinished (Fig. 5a)."""
    config = config or ExperimentConfig()
    sim, device = build_device(config)
    page_lbas = device.profile.geometry.page_size // device.namespace.block_size
    result = ExperimentResult(
        experiment_id="fig5a",
        title="reset latency vs zone occupancy",
        columns=["occupancy", "finished_first", "reset_ms", "p95_ms"],
        meta={"zones_per_level": config.zones_per_level},
    )
    for finished_first in (False, True):
        for level in OCCUPANCY_LEVELS:
            stats = LatencyStats()
            for rep in range(config.zones_per_level):
                zone_index = rep % 8
                zone = device.zones.zones[zone_index]
                nlb = _occupancy_lbas(level, zone.cap_lbas, page_lbas)
                status = device.force_fill(zone_index, nlb)
                assert status.ok, status
                if finished_first:
                    if nlb == 0 or nlb == zone.cap_lbas:
                        # finish is illegal on empty/full zones (§III-E).
                        _mgmt(device, zone_index, ZoneAction.RESET)
                        continue
                    _mgmt(device, zone_index, ZoneAction.FINISH)
                cpl = _mgmt(device, zone_index, ZoneAction.RESET)
                stats.record(cpl.latency_ns)
            if stats.count == 0:
                continue
            result.add_row(
                occupancy=level,
                finished_first=finished_first,
                reset_ms=stats.mean_ns / 1e6,
                p95_ms=stats.percentile_ns(95) / 1e6,
            )
    return result


def run_fig5b_finish(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Finish latency vs occupancy (Fig. 5b).

    "<0.1%" fills one page (finish on an empty zone is not permitted);
    "~100%" fills all but one page.
    """
    config = config or ExperimentConfig()
    sim, device = build_device(config)
    page_lbas = device.profile.geometry.page_size // device.namespace.block_size
    result = ExperimentResult(
        experiment_id="fig5b",
        title="finish latency vs zone occupancy",
        columns=["occupancy", "finish_ms", "p95_ms"],
    )
    levels = ("<0.1%", "6.25%", "12.5%", "25%", "50%", "~100%")
    for level in levels:
        stats = LatencyStats()
        for rep in range(config.zones_per_level):
            zone_index = rep % 8
            zone = device.zones.zones[zone_index]
            if level == "<0.1%":
                nlb = page_lbas
            elif level == "~100%":
                nlb = zone.cap_lbas - page_lbas
            else:
                nlb = _occupancy_lbas(level, zone.cap_lbas, page_lbas)
            status = device.force_fill(zone_index, nlb)
            assert status.ok, status
            cpl = _mgmt(device, zone_index, ZoneAction.FINISH)
            stats.record(cpl.latency_ns)
            _mgmt(device, zone_index, ZoneAction.RESET)
        result.add_row(
            occupancy=level,
            finish_ms=stats.mean_ns / 1e6,
            p95_ms=stats.percentile_ns(95) / 1e6,
        )
    return result
