"""§III-E: zone state-machine transition costs.

* **Observation #9** — explicit vs implicit open cost, close cost, and
  the first-write/append penalty on implicitly opened zones.
* **Fig. 5a** — reset latency vs zone occupancy, for zones that were and
  were not finished first.
* **Fig. 5b** — finish latency vs zone occupancy.

As in the paper these use the SPDK path (fio cannot issue the
transitions). Occupancy is established with the ``force_fill`` fixture —
the metadata-equivalent of the paper's "fill with sequential 4 KiB
writes" (equivalence is unit-tested) — so a sweep over thousands of
zone-resets stays tractable.

These sweeps are decomposed into independent points (one occupancy
level / transition group per point) like every other experiment, so the
execution engine can cache and parallelize them. Two mechanisms make
the points independent:

* each point builds its own device with a point-specific seed salt
  (:func:`~.common.build_device` ``seed_salt``), so jitter draws do not
  depend on which points ran before it, and
* within a point, repetitions rewind the device with
  ``state_snapshot``/``restore_state`` instead of issuing extra RESET
  commands, so a rep never inherits firmware mapping debt or flush
  residue from the previous one.
"""

from __future__ import annotations

from ...hostif.commands import Command, Opcode, ZoneAction
from ...workload.stats import LatencyStats
from ..results import ExperimentResult
from .common import KIB, ExperimentConfig, build_device
from .points import ExperimentPlan, run_via_points

__all__ = ["run_obs9_open_close", "run_fig5a_reset", "run_fig5b_finish",
           "OBS9_PLAN", "FIG5A_PLAN", "FIG5B_PLAN",
           "OCCUPANCY_LEVELS", "FIG5B_LEVELS"]

#: The paper's occupancy levels: 0 %, one page, 6.25 % ... 100 %.
OCCUPANCY_LEVELS = ("0%", "1page", "6.25%", "12.5%", "25%", "50%", "100%")

#: Fig. 5b sweeps finishable occupancies: "<0.1%" fills one page (finish
#: on an empty zone is not permitted); "~100%" fills all but one page.
FIG5B_LEVELS = ("<0.1%", "6.25%", "12.5%", "25%", "50%", "~100%")


def _sweep_reps(config: ExperimentConfig) -> int:
    """Repetitions per occupancy level in the fig5a/fig5b sweeps.

    The paper measures thousands of resets per level; our per-rep cost
    is a handful of metadata commands (``force_fill`` replaces the
    fill), so we can afford 4x the configured zone count for tight
    means — the fig5a benchmark asserts the *difference* between two
    ~13 ms means to ±25 %.
    """
    return 4 * config.zones_per_level


def _occupancy_lbas(level: str, cap_lbas: int, page_lbas: int) -> int:
    if level == "0%":
        return 0
    if level == "1page" or level == "<0.1%":
        return page_lbas
    if level == "~100%":
        return cap_lbas - page_lbas
    fraction = float(level.rstrip("%")) / 100.0
    return round(cap_lbas * fraction)


def _mgmt(device, zone_index: int, action: ZoneAction):
    zslba = device.zones.zones[zone_index].zslba
    done = device.submit(Command(Opcode.ZONE_MGMT, slba=zslba, action=action))
    return device.sim.run(until=done)


def _io(device, command: Command):
    return device.sim.run(until=device.submit(command))


def _rewind(device, pristine: dict) -> None:
    """Drain in-flight work, then rewind the device to its pristine image."""
    device.sim.run()
    device.restore_state(pristine)


# --- Observation #9: open/close and implicit-open costs ---------------------

#: Transition groups, in the original row order of the obs9 table.
_OBS9_GROUPS = ("explicit", "implicit-write", "implicit-append")


def _obs9_plan(config: ExperimentConfig) -> list:
    return [{"group": group} for group in _OBS9_GROUPS]


def _obs9_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "Zone open/close and implicit-open costs (SPDK, 4 KiB I/O)",
        "columns": ["quantity", "latency_us"],
    }


def _obs9_point(config: ExperimentConfig, params: dict) -> dict:
    group = params["group"]
    sim, device = build_device(config, seed_salt=f"obs9/{group}")
    pristine = device.state_snapshot()
    reps = max(8, config.zones_per_level)
    nlb = device.namespace.lbas(4 * KIB)
    rows: list[dict] = []

    if group == "explicit":
        open_lat, close_lat = LatencyStats(), LatencyStats()
        for rep in range(reps):
            zone = rep % 4
            open_lat.record(_mgmt(device, zone, ZoneAction.OPEN).latency_ns)
            # Fill a little so close is on a written zone, then close.
            _io(device, Command(Opcode.WRITE,
                                slba=device.zones.zones[zone].wp, nlb=nlb))
            close_lat.record(_mgmt(device, zone, ZoneAction.CLOSE).latency_ns)
            _rewind(device, pristine)
        rows.append({"quantity": "explicit open",
                     "latency_us": open_lat.mean_us})
        rows.append({"quantity": "close", "latency_us": close_lat.mean_us})
    elif group == "implicit-write":
        first_w, later_w = LatencyStats(), LatencyStats()
        for rep in range(reps):
            zone_obj = device.zones.zones[4]
            first_w.record(_io(device, Command(
                Opcode.WRITE, slba=zone_obj.wp, nlb=nlb)).latency_ns)
            later_w.record(_io(device, Command(
                Opcode.WRITE, slba=zone_obj.wp, nlb=nlb)).latency_ns)
            _rewind(device, pristine)
        rows.append({"quantity": "first write after implicit open",
                     "latency_us": first_w.mean_us})
        rows.append({"quantity": "later write",
                     "latency_us": later_w.mean_us})
        rows.append({"quantity": "implicit-open write penalty",
                     "latency_us": first_w.mean_us - later_w.mean_us})
    else:
        first_a, later_a = LatencyStats(), LatencyStats()
        for rep in range(reps):
            zone_obj = device.zones.zones[5]
            first_a.record(_io(device, Command(
                Opcode.APPEND, slba=zone_obj.zslba, nlb=nlb)).latency_ns)
            later_a.record(_io(device, Command(
                Opcode.APPEND, slba=zone_obj.zslba, nlb=nlb)).latency_ns)
            _rewind(device, pristine)
        rows.append({"quantity": "first append after implicit open",
                     "latency_us": first_a.mean_us})
        rows.append({"quantity": "later append",
                     "latency_us": later_a.mean_us})
        rows.append({"quantity": "implicit-open append penalty",
                     "latency_us": first_a.mean_us - later_a.mean_us})
    return {"rows": rows}


OBS9_PLAN = ExperimentPlan("obs9", _obs9_plan, _obs9_point, _obs9_describe)


def run_obs9_open_close(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Explicit/implicit open costs and close cost (Observation #9)."""
    return run_via_points(OBS9_PLAN, config)


# --- Fig. 5a: reset latency vs occupancy ------------------------------------

def _fig5a_plan(config: ExperimentConfig) -> list:
    return [
        {"finished_first": finished_first, "occupancy": level}
        for finished_first in (False, True)
        for level in OCCUPANCY_LEVELS
    ]


def _fig5a_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "reset latency vs zone occupancy",
        "columns": ["occupancy", "finished_first", "reset_ms", "p95_ms"],
        "meta": {"zones_per_level": config.zones_per_level,
                 "reps_per_level": _sweep_reps(config)},
    }


def _fig5a_point(config: ExperimentConfig, params: dict) -> dict:
    level = params["occupancy"]
    finished_first = params["finished_first"]
    if finished_first and level in ("0%", "100%"):
        # finish is illegal on empty/full zones (§III-E); no row.
        return {"rows": []}
    salt = f"fig5a/{'finished' if finished_first else 'unfinished'}/{level}"
    sim, device = build_device(config, seed_salt=salt)
    pristine = device.state_snapshot()
    page_lbas = device.profile.geometry.page_size // device.namespace.block_size
    stats = LatencyStats()
    for rep in range(_sweep_reps(config)):
        zone_index = rep % 8
        zone = device.zones.zones[zone_index]
        nlb = _occupancy_lbas(level, zone.cap_lbas, page_lbas)
        status = device.force_fill(zone_index, nlb)
        assert status.ok, status
        if finished_first:
            _mgmt(device, zone_index, ZoneAction.FINISH)
        cpl = _mgmt(device, zone_index, ZoneAction.RESET)
        stats.record(cpl.latency_ns)
        _rewind(device, pristine)
    return {"rows": [{
        "occupancy": level,
        "finished_first": finished_first,
        "reset_ms": stats.mean_ns / 1e6,
        "p95_ms": stats.percentile_ns(95) / 1e6,
    }]}


FIG5A_PLAN = ExperimentPlan("fig5a", _fig5a_plan, _fig5a_point,
                            _fig5a_describe)


def run_fig5a_reset(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Reset latency vs occupancy, finished and unfinished (Fig. 5a)."""
    return run_via_points(FIG5A_PLAN, config)


# --- Fig. 5b: finish latency vs occupancy -----------------------------------

def _fig5b_plan(config: ExperimentConfig) -> list:
    return [{"occupancy": level} for level in FIG5B_LEVELS]


def _fig5b_describe(config: ExperimentConfig) -> dict:
    return {
        "title": "finish latency vs zone occupancy",
        "columns": ["occupancy", "finish_ms", "p95_ms"],
    }


def _fig5b_point(config: ExperimentConfig, params: dict) -> dict:
    level = params["occupancy"]
    sim, device = build_device(config, seed_salt=f"fig5b/{level}")
    pristine = device.state_snapshot()
    page_lbas = device.profile.geometry.page_size // device.namespace.block_size
    stats = LatencyStats()
    for rep in range(_sweep_reps(config)):
        zone_index = rep % 8
        zone = device.zones.zones[zone_index]
        nlb = _occupancy_lbas(level, zone.cap_lbas, page_lbas)
        status = device.force_fill(zone_index, nlb)
        assert status.ok, status
        cpl = _mgmt(device, zone_index, ZoneAction.FINISH)
        stats.record(cpl.latency_ns)
        _rewind(device, pristine)
    return {"rows": [{
        "occupancy": level,
        "finish_ms": stats.mean_ns / 1e6,
        "p95_ms": stats.percentile_ns(95) / 1e6,
    }]}


FIG5B_PLAN = ExperimentPlan("fig5b", _fig5b_plan, _fig5b_point,
                            _fig5b_describe)


def run_fig5b_finish(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Finish latency vs occupancy (Fig. 5b)."""
    return run_via_points(FIG5B_PLAN, config)
