"""Closed-form performance models for the simulated device.

The characterization's mechanisms admit simple analytical predictions
(the modelling tradition the paper's §V-B surveys: bottleneck analysis,
black-box linear models, GC mean-field models). This module states them
explicitly so tests can cross-validate simulation against theory:

* per-op **IOPS caps** from controller service times,
* **QD scaling** of a closed-loop workload against a single bottleneck,
* the **device write limit** from geometry and NAND timing,
* the **read tail under a write flood** from the buffer backlog,
* **finish latency** from remaining capacity,
* **reset inflation** under concurrent I/O from firmware utilization,
* steady-state **write amplification** of greedy GC (mean-field
  approximation of Van Houdt [96] / Lange et al. [35]).
"""

from __future__ import annotations

import math

from ..hostif.commands import Opcode
from ..zns.profiles import DeviceProfile

__all__ = [
    "iops_cap",
    "qd1_latency_ns",
    "closed_loop_throughput",
    "device_write_limit_bps",
    "flood_read_tail_ns",
    "finish_latency_ns",
    "reset_inflation_factor",
    "greedy_gc_write_amplification",
]


def iops_cap(profile: DeviceProfile, opcode: Opcode, request_bytes: int,
             block_size: int = 4096) -> float:
    """Controller-bound operations/second for one command type.

    The controller front-end is a single server, so the cap is the
    reciprocal of its per-command service time (DESIGN.md §5): ~186 K/s
    for 4 KiB writes, ~132 K/s appends, ~424 K/s reads.
    """
    nlb = max(1, request_bytes // block_size)
    service = profile.cmd_service_ns(opcode, request_bytes, nlb, block_size)
    return 1e9 / service


def qd1_latency_ns(profile: DeviceProfile, opcode: Opcode, request_bytes: int,
                   block_size: int = 4096, stack_overhead_ns: int = 0) -> float:
    """Predicted QD1 latency of a write/append (the Fig. 2/3 quantities)."""
    nlb = max(1, request_bytes // block_size)
    service = profile.cmd_service_ns(opcode, request_bytes, nlb, block_size)
    if opcode is Opcode.READ:
        # controller + NAND sense + bus transfer of the payload.
        transfer = request_bytes * 1e9 / profile.channel_bandwidth
        return service + profile.nand.read_ns + transfer + stack_overhead_ns
    pipelined = profile.dma_ns(request_bytes) + profile.write_admit_ns
    if opcode is Opcode.APPEND:
        pipelined += profile.append_alloc_ns
    return service + pipelined + stack_overhead_ns


def closed_loop_throughput(qd: int, latency_ns: float, cap_ops: float) -> float:
    """Ops/s of a QD-limited closed loop against a single bottleneck.

    min(QD / latency, cap): the textbook saturation curve the Fig. 4
    series follow (appends: linear in QD until the 132 K/s cap at QD4).
    """
    if qd < 1 or latency_ns <= 0 or cap_ops <= 0:
        raise ValueError("qd >= 1, latency > 0, cap > 0 required")
    return min(qd * 1e9 / latency_ns, cap_ops)


def device_write_limit_bps(profile: DeviceProfile) -> float:
    """Sustained write bandwidth = aggregate NAND program bandwidth."""
    return profile.nand.program_bandwidth(profile.geometry)


def flood_read_tail_ns(profile: DeviceProfile) -> float:
    """Read tail under a full-rate write flood (Obs #11, ZNS side).

    A read queues FIFO behind the buffered program backlog at its die;
    with the buffer full, that backlog drains in
    buffer_bytes / program_bandwidth — 112 MiB / 1.13 GiB/s ≈ 99 ms,
    the paper's 98.04 ms.
    """
    return profile.write_buffer_bytes * 1e9 / device_write_limit_bps(profile)


def finish_latency_ns(profile: DeviceProfile, occupancy_fraction: float) -> float:
    """Fig. 5b: finish pads the unwritten capacity at the marking rate."""
    if not 0 <= occupancy_fraction <= 1:
        raise ValueError("occupancy_fraction must be in [0, 1]")
    remaining = round(profile.zone_cap_bytes * (1 - occupancy_fraction))
    return profile.finish_work_ns(remaining)


def reset_inflation_factor(profile: DeviceProfile, opcode: Opcode,
                           io_ops_per_second: float) -> float:
    """Fig. 7: reset elapsed-time inflation under concurrent I/O.

    Management work runs in the firmware engine's idle fraction: with
    I/O mapping-update utilization rho = rate x per-op-work, the reset
    stretches by 1 / (1 - rho) (work conservation).
    """
    rho = io_ops_per_second * profile.fw_io_ns(opcode) / 1e9
    if rho >= 1:
        raise ValueError(f"firmware engine over-saturated (rho={rho:.2f})")
    return 1.0 / (1.0 - rho)


def greedy_gc_write_amplification(utilization: float) -> float:
    """Mean-field WA of greedy GC under uniform random writes.

    Uses the classic implicit relation for the steady-state victim
    validity ``u``: with spare factor ``s = 1 - utilization``,
    ``u = -s · W(-(1/s)·e^(-1/s) · ... )`` — here solved numerically from
    the fill/validity balance  u = exp((u - 1) / (s + (1 - s) * u_bar))
    approximation; accurate to a few percent against simulation for the
    utilizations the experiments use (0.7–0.95).
    """
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    rho = utilization
    # Solve u = rho * (WA semantics): victim validity u satisfies
    # u / rho = exp(u - 1) ... use the standard Lambert-W form:
    # u = -rho * W(-(1/rho) * exp(-1/rho))  with W the principal branch.
    x = -(1.0 / rho) * math.exp(-1.0 / rho)
    w = _lambert_w(x)
    u = -rho * w  # wait-free closed form; u in (0, 1)
    if not 0 < u < 1:
        raise ArithmeticError(f"victim validity out of range: {u}")
    return 1.0 / (1.0 - u)


def _lambert_w(x: float, tolerance: float = 1e-12) -> float:
    """Principal-branch Lambert W via Newton iteration (x >= -1/e)."""
    if x < -1.0 / math.e:
        raise ValueError(f"W(x) undefined for x={x} < -1/e")
    w = 0.0 if x > -0.25 else -0.5
    for _ in range(100):
        ew = math.exp(w)
        step = (w * ew - x) / (ew * (w + 1) - (w + 2) * (w * ew - x) / (2 * w + 2))
        w -= step
        if abs(step) < tolerance:
            return w
    raise ArithmeticError(f"Lambert W failed to converge for x={x}")
