"""The paper's characterization suite: experiments, observations, reports."""

from . import analytic, figures
from .experiments.common import ExperimentConfig
from .observations import OBSERVATION_SUMMARIES, ObservationCheck, check_all
from .recommendations import RECOMMENDATIONS, Recommendation, validate
from .report import run_experiments, table1, table2
from .results import ExperimentResult, render_table

__all__ = [
    "ExperimentConfig",
    "analytic",
    "figures",
    "ExperimentResult",
    "OBSERVATION_SUMMARIES",
    "ObservationCheck",
    "RECOMMENDATIONS",
    "Recommendation",
    "check_all",
    "render_table",
    "run_experiments",
    "table1",
    "table2",
    "validate",
]
