"""The paper's five developer recommendations (Table I + §III).

Each recommendation links to the observations that support it, so a
recommendation is "validated" on a device exactly when its supporting
observations reproduce there.
"""

from __future__ import annotations

from dataclasses import dataclass

from .observations import ObservationCheck

__all__ = ["Recommendation", "RECOMMENDATIONS", "validate"]


@dataclass(frozen=True)
class Recommendation:
    rec_id: int
    category: str
    text: str
    supported_by: tuple[int, ...]  # observation ids

    def validated(self, checks: dict[int, ObservationCheck]) -> bool:
        """True when every supporting observation reproduced."""
        return all(
            checks[obs].passed for obs in self.supported_by if obs in checks
        )


RECOMMENDATIONS: tuple[Recommendation, ...] = (
    Recommendation(
        1, "Append vs. write",
        "Use write instead of append operations for low I/O latencies "
        "(differences can be as much as 23%), and use the SPDK storage "
        "stack since it delivers the lowest I/O latencies.",
        supported_by=(1, 2, 4),
    ),
    Recommendation(
        2, "Scalability",
        "Prefer intra-zone to inter-zone parallelism; the former is ideal "
        "for append and read operations, while the latter is best suited "
        "for write operations. Issue I/O at large request sizes "
        "(>= 8 KiB), as larger requests scale better with concurrency.",
        supported_by=(3, 5, 6, 7, 8),
    ),
    Recommendation(
        3, "Zone transitions",
        "Avoid the finish operation (more so than a reset), especially "
        "for partially written zones; minimize zones needing finish by "
        "leveraging intra-zone parallelism.",
        supported_by=(9, 10),
    ),
    Recommendation(
        4, "I/O interference",
        "Measure the peak read/write performance of the ZNS device and "
        "provision application storage needs around it; no need to "
        "account for GC-induced performance fluctuations.",
        supported_by=(11,),
    ),
    Recommendation(
        5, "I/O & GC interference",
        "Resets can be issued concurrently with read/write/append since "
        "they do not impact I/O latency; reset latency itself inflates "
        "under concurrent I/O, but resets are per-zone and sporadic "
        "(about one per second at full write bandwidth).",
        supported_by=(12, 13),
    ),
)


def validate(checks: list[ObservationCheck]) -> list[tuple[Recommendation, bool]]:
    """Pair each recommendation with whether its evidence reproduced."""
    by_id = {c.obs_id: c for c in checks}
    return [(rec, rec.validated(by_id)) for rec in RECOMMENDATIONS]
