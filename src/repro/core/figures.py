"""Terminal rendering of figure series: line charts and timelines.

The paper's artifacts are figures; ours are terminal-friendly. This
module renders any :class:`ExperimentResult`'s named ``series`` as an
ASCII chart — multi-series scatter/line plots for the scaling figures
and bar timelines for the Fig. 6 throughput traces — so the benchmark
outputs carry the figures, not just the tables.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .results import ExperimentResult

__all__ = ["ascii_chart", "ascii_timeline", "render_figure"]

_MARKS = "ox+*#@%&"
_BARS = " ▁▂▃▄▅▆▇█"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000:
        return f"{value:,.0f}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    log_x: bool = False,
) -> str:
    """Render named (x, y) series on a character grid.

    Each series gets a marker from ``o x + * …``; overlapping points show
    the later series' marker. Axes are linear (optionally log-x for QD
    sweeps).
    """
    points = [(k, p) for k, pts in series.items() for p in pts]
    if not points:
        raise ValueError("no data points to chart")
    xs = [p[0] for _, p in points]
    ys = [p[1] for _, p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0

    def x_pos(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if log_x:
            if x <= 0 or x_lo <= 0:
                raise ValueError("log_x requires positive x values")
            frac = (math.log(x) - math.log(x_lo)) / (math.log(x_hi) - math.log(x_lo))
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, round(frac * (width - 1)))

    def y_pos(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, round(frac * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in pts:
            grid[height - 1 - y_pos(y)][x_pos(x)] = mark

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(_format_tick(y_hi)), len(_format_tick(y_lo)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _format_tick(y_hi)
        elif row_index == height - 1:
            label = _format_tick(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{_format_tick(x_lo)}{' ' * (width - len(_format_tick(x_lo)) - len(_format_tick(x_hi)))}{_format_tick(x_hi)}"
    lines.append(" " * (label_width + 2) + x_axis)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"({ylabel} vs {xlabel})  {legend}")
    return "\n".join(lines)


def ascii_timeline(
    values: Sequence[float],
    peak: Optional[float] = None,
    label: str = "",
) -> str:
    """One-line bar timeline (the Fig. 6 throughput-over-time view)."""
    if not values:
        raise ValueError("no values to render")
    top = peak if peak is not None else max(values) or 1.0
    cells = []
    for v in values:
        idx = min(len(_BARS) - 1, int(max(0.0, v) / top * (len(_BARS) - 1) + 0.5))
        cells.append(_BARS[idx])
    prefix = f"{label} " if label else ""
    return f"{prefix}[{''.join(cells)}] peak={_format_tick(top)}"


#: Per-figure chart settings: (xlabel, ylabel, log_x).
_FIGURE_AXES = {
    "fig3": ("request KiB", "KIOPS", True),
    "fig4a": ("queue depth", "KIOPS", True),
    "fig4b": ("zones", "KIOPS", False),
    "fig4c": ("concurrency", "MiB/s", False),
    "fig8": ("MiB/s", "latency µs", False),
}


def render_figure(result: ExperimentResult, width: int = 64, height: int = 14) -> str:
    """Best-effort chart of an experiment's series.

    Figure results with (x, y) series render as charts; the Fig. 6
    time series render as stacked timelines.
    """
    if not result.series:
        raise ValueError(f"{result.experiment_id} has no series to render")
    if result.experiment_id.startswith("fig6"):
        lines = [f"[{result.experiment_id}] {result.title}"]
        for name, pts in result.series.items():
            values = [v for _, v in pts]
            lines.append(ascii_timeline(values, peak=1_200.0, label=f"{name:<11}"))
        return "\n".join(lines)
    xlabel, ylabel, log_x = _FIGURE_AXES.get(
        result.experiment_id, ("x", "y", False)
    )
    return ascii_chart(
        result.series, width=width, height=height,
        title=f"[{result.experiment_id}] {result.title}",
        xlabel=xlabel, ylabel=ylabel, log_x=log_x,
    )
