"""Experiment result containers: rows, series, and table rendering.

Every experiment driver returns an :class:`ExperimentResult` whose rows
print as the paper's tables/figure series and whose fields feed the
observation predicates in :mod:`repro.core.observations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["ExperimentResult", "render_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(columns: list[str], rows: Iterable[dict], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The output of one paper experiment (table or figure)."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    #: Named (x, y) series for figure-style results.
    series: dict[str, list[tuple]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add_row(self, **cells: Any) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]

    def find(self, **criteria: Any) -> Optional[dict]:
        """First row matching all key=value criteria."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        return None

    def value(self, column: str, **criteria: Any) -> Any:
        row = self.find(**criteria)
        if row is None:
            raise KeyError(f"no row matching {criteria} in {self.experiment_id}")
        return row[column]

    def table(self) -> str:
        text = render_table(self.columns, self.rows, title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def __str__(self) -> str:
        return self.table()
