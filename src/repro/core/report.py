"""Top-level reporting: Table I, Table II, and the full-suite runner."""

from __future__ import annotations

from typing import Callable, Optional

from ..flash.geometry import MIB
from ..zns.profiles import DeviceProfile, zn540
from .experiments.common import ExperimentConfig
from .observations import ObservationCheck
from .recommendations import validate
from .results import ExperimentResult, render_table

__all__ = ["run_experiments", "table1", "table2", "EXPERIMENT_RUNNERS"]


def _runners() -> dict[str, Callable]:
    # Imported lazily so ``import repro.core.report`` stays instant.
    from .experiments.ablations import (
        run_ablation_append_cost,
        run_ablation_buffer,
        run_ablation_gc_priority,
        run_ablation_geometry,
        run_ablation_zone_size,
    )
    from .experiments.aging import run_fig8_aging
    from .experiments.fleet import run_fig7_fleet
    from .experiments.io_interference import (
        run_fig6,
        run_fig6_rate_sweep,
        run_obs11_read_tail,
    )
    from .experiments.lba_format import run_fig2a, run_fig2b
    from .experiments.qd_latency import run_fig8
    from .experiments.request_size import run_fig3
    from .experiments.reset_interference import run_fig7
    from .experiments.scalability import run_fig4a, run_fig4b, run_fig4c
    from .experiments.state_machine import (
        run_fig5a_reset,
        run_fig5b_finish,
        run_obs9_open_close,
    )

    return {
        "fig2a": run_fig2a,
        "fig2b": run_fig2b,
        "fig3": run_fig3,
        "fig4a": run_fig4a,
        "fig4b": run_fig4b,
        "fig4c": run_fig4c,
        "obs9": run_obs9_open_close,
        "fig5a": run_fig5a_reset,
        "fig5b": run_fig5b_finish,
        "fig6": run_fig6,
        "obs11": run_obs11_read_tail,
        "fig7": run_fig7,
        "fig7_fleet": run_fig7_fleet,
        "fig8": run_fig8,
        "fig8_aging": run_fig8_aging,
        "fig6rates": run_fig6_rate_sweep,
        "ablation-buffer": run_ablation_buffer,
        "ablation-append-cost": run_ablation_append_cost,
        "ablation-gc-priority": run_ablation_gc_priority,
        "ablation-geometry": run_ablation_geometry,
        "ablation-zone-size": run_ablation_zone_size,
    }


#: Experiment id → driver, in paper order.
EXPERIMENT_RUNNERS = _runners


def run_experiments(
    ids: Optional[list[str]] = None,
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[str] = None,
) -> dict[str, ExperimentResult]:
    """Run the named experiments (all of them by default).

    ``jobs > 1`` or a ``cache`` directory routes through the execution
    engine (:mod:`repro.exec`): points fan out over worker processes
    and/or replay from the content-addressed cache, with output
    byte-identical to this serial path.
    """
    if jobs != 1 or cache is not None:
        from ..exec import execute_experiments

        results, _report = execute_experiments(
            ids, config, jobs=jobs, cache_dir=cache
        )
        if verbose:
            for result in results.values():
                print(result.table())
                print()
        return results
    runners = _runners()
    results = {}
    for exp_id in ids or list(runners):
        if exp_id not in runners:
            raise KeyError(f"unknown experiment {exp_id!r}; choose from {list(runners)}")
        results[exp_id] = runners[exp_id](config)
        if verbose:
            print(results[exp_id].table())
            print()
    return results


def table1(checks: list[ObservationCheck]) -> str:
    """The paper's Table I (key insights) with reproduction status."""
    by_id = {c.obs_id: c for c in checks}
    rows = []
    for rec, ok in validate(checks):
        supporting = ", ".join(
            f"#{i}{'✓' if i in by_id and by_id[i].passed else ('?' if i not in by_id else '✗')}"
            for i in rec.supported_by
        )
        rows.append(
            {
                "category": rec.category,
                "insight": rec.text.split(";")[0].split(". ")[0],
                "observations": supporting,
                "validated": "yes" if ok else "no",
            }
        )
    return render_table(
        ["category", "insight", "observations", "validated"],
        rows,
        title="[table1] Key insights (paper Table I) and reproduction status",
    )


def table2(profile: Optional[DeviceProfile] = None) -> str:
    """The benchmarking environment (paper Table II), simulated edition."""
    profile = profile or zn540()
    geo = profile.geometry
    rows = [
        {"component": "Platform", "configuration":
            "discrete-event simulation (integer-nanosecond clock, deterministic seeds)"},
        {"component": "ZNS device", "configuration":
            f"{profile.name}: zone size {profile.zone_size_bytes // MIB:,} MiB, "
            f"zone capacity {profile.zone_cap_bytes // MIB:,} MiB, "
            f"{profile.num_zones} zones, max active/open {profile.max_active_zones}"},
        {"component": "Flash backend", "configuration":
            f"{geo.channels} channels x {geo.dies_per_channel} dies, "
            f"{geo.page_size // 1024} KiB pages, tR {profile.nand.read_ns / 1000:.0f} us, "
            f"tPROG {profile.nand.program_ns / 1000:.0f} us, "
            f"tBERS {profile.nand.erase_ns / 1e6:.1f} ms "
            f"(~{profile.nand.program_bandwidth(geo) / MIB:,.0f} MiB/s program bandwidth)"},
        {"component": "Write buffer", "configuration":
            f"{profile.write_buffer_bytes // MIB} MiB, capacitor-backed "
            "(writes acknowledged at admission)"},
        {"component": "Conventional device", "configuration":
            "same backend + page-mapped FTL, 7% overprovisioning, greedy GC"},
        {"component": "Stacks", "configuration":
            "SPDK-like (polling, no scheduler) and io_uring-like "
            "(none / mq-deadline schedulers)"},
        {"component": "Workloads", "configuration":
            "fio-like job engine (QD, numjobs, rate limiting, ramp, zones)"},
    ]
    return render_table(
        ["component", "configuration"], rows,
        title="[table2] Benchmarking environment (simulated testbed)",
    )
