"""The paper's 13 observations as checkable predicates.

Each ``check_obsN`` consumes the relevant experiment result(s) and
returns an :class:`ObservationCheck` stating whether the simulated device
reproduces the observation, with the supporting numbers. ``check_all``
evaluates every observation for which results are supplied.

These predicates are also what the emulator-fidelity harness (§IV,
:mod:`repro.emulators.fidelity`) evaluates against each emulator's
latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .results import ExperimentResult

__all__ = [
    "INTERFERENCE_EXPERIMENTS",
    "OBSERVATION_EXPERIMENTS",
    "OBSERVATION_SUMMARIES",
    "ObservationCheck",
    "check_all",
    "run_observation_suite",
] + [f"check_obs{i}" for i in range(1, 14)]

#: The experiments the 13 observations consume, in paper order (fig8
#: and the ablations are not observation inputs).
OBSERVATION_EXPERIMENTS = (
    "fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c",
    "obs9", "fig5a", "fig5b", "fig6", "obs11", "fig7",
)

#: The minutes-long interference timelines (``--skip-interference``).
INTERFERENCE_EXPERIMENTS = ("fig6", "obs11", "fig7")

OBSERVATION_SUMMARIES = {
    1: "The LBA format significantly impacts write and append latency",
    2: "The SPDK storage stack delivers the lowest latencies",
    3: "Write and append throughput depend on the request size",
    4: "Writes have lower I/O latency than appends (up to ~23%)",
    5: "Intra-zone parallelism achieves higher IOPS than inter-zone",
    6: "Append throughput is agnostic to intra- vs inter-zone scaling",
    7: "In one zone: reads scale best, then writes (merged), then appends",
    8: "For >=8 KiB requests both strategies reach the device limit",
    9: "Explicit and implicit opens cost the same; open/close are marginal",
    10: "Zone occupancy strongly affects reset and finish latency",
    11: "ZNS stays stable under write floods; conventional NVMe does not",
    12: "Resets do not interfere with read/write/append latency",
    13: "Read/write/append significantly inflate reset latency",
}


@dataclass
class ObservationCheck:
    obs_id: int
    passed: bool
    details: str

    @property
    def summary(self) -> str:
        return OBSERVATION_SUMMARIES[self.obs_id]

    def __str__(self) -> str:
        status = "REPRODUCED" if self.passed else "NOT REPRODUCED"
        return f"Obs #{self.obs_id:>2} [{status}] {self.summary} — {self.details}"


def check_obs1(fig2a: ExperimentResult) -> ObservationCheck:
    ratios = []
    for op in ("write", "append"):
        row512 = fig2a.find(lba_format="512B", stack="spdk", op=op)
        row4k = fig2a.find(lba_format="4KiB", stack="spdk", op=op)
        if row512 and row4k:
            ratios.append(row512["latency_us"] / row4k["latency_us"])
    passed = bool(ratios) and all(r > 1.2 for r in ratios)
    return ObservationCheck(
        1, passed,
        f"512B/4KiB latency ratios: {', '.join(f'{r:.2f}x' for r in ratios)}",
    )


def check_obs2(fig2b: ExperimentResult) -> ObservationCheck:
    spdk = fig2b.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
    thrpool = fig2b.value(
        "latency_us", lba_format="4KiB", stack="thrpool", op="write"
    )
    none = fig2b.value("latency_us", lba_format="4KiB", stack="iouring-none", op="write")
    mqd = fig2b.value(
        "latency_us", lba_format="4KiB", stack="iouring-mq-deadline", op="write"
    )
    passed = spdk < thrpool < none < mqd
    return ObservationCheck(
        2, passed,
        f"write latency: spdk {spdk:.2f} < thrpool {thrpool:.2f} "
        f"< none {none:.2f} < mq-deadline {mqd:.2f} µs",
    )


def check_obs3(fig3: ExperimentResult) -> ObservationCheck:
    write = dict(fig3.series["write"])
    append = dict(fig3.series["append"])
    write_peak_small = max(write[4], write[8]) >= max(write.values()) * 0.99
    append_8_beats_4 = append[8] > append[4]
    big_bw = [
        row["bandwidth_mibs"]
        for row in fig3.rows
        if row["request_kib"] >= 32
    ]
    small_bw = fig3.value("bandwidth_mibs", op="write", request_kib=4)
    passed = write_peak_small and append_8_beats_4 and min(big_bw) > small_bw
    return ObservationCheck(
        3, passed,
        f"write IOPS peak at 4-8 KiB ({write[4]:.0f}K), append 4->8 KiB "
        f"{append[4]:.0f}->{append[8]:.0f}K, bytes peak at large requests",
    )


def check_obs4(fig2b: ExperimentResult) -> ObservationCheck:
    write = fig2b.value("latency_us", lba_format="4KiB", stack="spdk", op="write")
    append = fig2b.value("latency_us", lba_format="4KiB", stack="spdk", op="append")
    gap = (append - write) / append
    passed = write < append and 0.10 < gap < 0.40
    return ObservationCheck(
        4, passed,
        f"4 KiB write {write:.2f} µs vs 8 KiB append {append:.2f} µs "
        f"({gap * 100:.1f}% lower; paper: 23.42%)",
    )


def _series_max(result: ExperimentResult, op: str) -> float:
    return max(v for _, v in result.series[op])


def check_obs5(fig4a: ExperimentResult, fig4b: ExperimentResult) -> ObservationCheck:
    intra_read, inter_read = _series_max(fig4a, "read"), _series_max(fig4b, "read")
    intra_write, inter_write = _series_max(fig4a, "write"), _series_max(fig4b, "write")
    passed = intra_read > inter_read and intra_write > inter_write
    return ObservationCheck(
        5, passed,
        f"read intra {intra_read:.0f}K > inter {inter_read:.0f}K; "
        f"write intra {intra_write:.0f}K > inter {inter_write:.0f}K",
    )


def check_obs6(fig4a: ExperimentResult, fig4b: ExperimentResult) -> ObservationCheck:
    intra = _series_max(fig4a, "append")
    inter = _series_max(fig4b, "append")
    passed = abs(intra - inter) / max(intra, inter) < 0.10
    return ObservationCheck(
        6, passed,
        f"append plateau: intra {intra:.0f}K vs inter {inter:.0f}K KIOPS",
    )


def check_obs7(fig4a: ExperimentResult) -> ObservationCheck:
    read = _series_max(fig4a, "read")
    write = _series_max(fig4a, "write")
    append = _series_max(fig4a, "append")
    passed = read > write > append and write > 200
    return ObservationCheck(
        7, passed,
        f"intra-zone peaks: read {read:.0f}K > write {write:.0f}K (merged) "
        f"> append {append:.0f}K KIOPS",
    )


def check_obs8(fig4c: ExperimentResult, device_limit_mibs: float = 1_128.0) -> ObservationCheck:
    checks = []
    for key in ("append-8k", "write-8k", "append-16k", "write-16k"):
        series = dict(fig4c.series[key])
        at4 = max(v for c, v in series.items() if c <= 4)
        checks.append(at4 >= 0.9 * device_limit_mibs)
    small_cap = max(v for _, v in fig4c.series["write-4k"])
    passed = all(checks) and small_cap < 0.75 * device_limit_mibs
    return ObservationCheck(
        8, passed,
        f">=8 KiB requests reach ~{device_limit_mibs:.0f} MiB/s by concurrency 4; "
        f"4 KiB writes cap at {small_cap:.0f} MiB/s (paper: 726.74)",
    )


def check_obs9(obs9: ExperimentResult) -> ObservationCheck:
    open_us = obs9.value("latency_us", quantity="explicit open")
    close_us = obs9.value("latency_us", quantity="close")
    wpen = obs9.value("latency_us", quantity="implicit-open write penalty")
    apen = obs9.value("latency_us", quantity="implicit-open append penalty")
    passed = open_us < 20 and close_us < 20 and 0.5 < wpen < 5 and 0.5 < apen < 5
    return ObservationCheck(
        9, passed,
        f"open {open_us:.2f} µs, close {close_us:.2f} µs, implicit penalties "
        f"write {wpen:.2f} / append {apen:.2f} µs — all marginal",
    )


def check_obs10(fig5a: ExperimentResult, fig5b: ExperimentResult) -> ObservationCheck:
    resets = [r["reset_ms"] for r in fig5a.rows if not r["finished_first"]]
    finishes = fig5b.column("finish_ms")
    # 5% slack: adjacent occupancy levels differ by less than the
    # management-latency jitter at small sample counts.
    reset_monotone = all(a <= b * 1.05 for a, b in zip(resets, resets[1:]))
    finish_monotone = all(a >= b * 0.95 for a, b in zip(finishes, finishes[1:]))
    span = finishes[0] / finishes[-1]
    passed = reset_monotone and finish_monotone and span > 50
    return ObservationCheck(
        10, passed,
        f"reset grows {resets[0]:.1f}->{resets[-1]:.1f} ms with occupancy; "
        f"finish shrinks {finishes[0]:.0f}->{finishes[-1]:.2f} ms ({span:.0f}x)",
    )


def check_obs11(fig6: ExperimentResult) -> ObservationCheck:
    zns_cov = fig6.value("cov", device="zns", metric="write")
    conv_cov = fig6.value("cov", device="conv", metric="write")
    zns_read = fig6.value("mean_mibs", device="zns", metric="read")
    conv_read = fig6.value("mean_mibs", device="conv", metric="read")
    passed = zns_cov < 0.1 and conv_cov > 0.3 and zns_read > 2 * conv_read
    return ObservationCheck(
        11, passed,
        f"write stability (CoV): zns {zns_cov:.2f} vs conv {conv_cov:.2f}; "
        f"read under flood: zns {zns_read:.2f} vs conv {conv_read:.2f} MiB/s "
        f"({zns_read / conv_read if conv_read else float('inf'):.1f}x, paper: 3x)",
    )


def check_obs12(fig7: ExperimentResult, baselines_us: Optional[dict] = None) -> ObservationCheck:
    """I/O latency during resets matches its no-reset baseline."""
    baselines_us = baselines_us or {"write": 11.36, "append": 15.64}
    details, ok = [], True
    for op, base in baselines_us.items():
        measured = fig7.value("io_mean_latency_us", concurrent_op=op)
        drift = abs(measured - base) / base
        ok &= drift < 0.08
        details.append(f"{op} {measured:.2f} µs (baseline {base:.2f})")
    return ObservationCheck(12, ok, "; ".join(details))


def check_obs13(fig7: ExperimentResult) -> ObservationCheck:
    isolated = fig7.value("reset_p95_ms", concurrent_op="none")
    inflations = {
        op: fig7.value("reset_p95_ms", concurrent_op=op) / isolated
        for op in ("read", "write", "append")
    }
    passed = all(v > 1.3 for v in inflations.values())
    return ObservationCheck(
        13, passed,
        f"reset p95 {isolated:.1f} ms isolated; inflation "
        + ", ".join(f"{op} {v:.2f}x" for op, v in inflations.items())
        + " (paper: 1.56x/1.78x/1.76x)",
    )


#: Which experiment ids each observation consumes.
_CHECKERS: dict[int, tuple[Callable, tuple[str, ...]]] = {
    1: (check_obs1, ("fig2a",)),
    2: (check_obs2, ("fig2b",)),
    3: (check_obs3, ("fig3",)),
    4: (check_obs4, ("fig2b",)),
    5: (check_obs5, ("fig4a", "fig4b")),
    6: (check_obs6, ("fig4a", "fig4b")),
    7: (check_obs7, ("fig4a",)),
    8: (check_obs8, ("fig4c",)),
    9: (check_obs9, ("obs9",)),
    10: (check_obs10, ("fig5a", "fig5b")),
    11: (check_obs11, ("fig6",)),
    12: (check_obs12, ("fig7",)),
    13: (check_obs13, ("fig7",)),
}


def check_all(results: dict[str, ExperimentResult]) -> list[ObservationCheck]:
    """Evaluate every observation whose inputs are present in ``results``."""
    checks = []
    for obs_id, (fn, needed) in sorted(_CHECKERS.items()):
        if all(k in results for k in needed):
            checks.append(fn(*(results[k] for k in needed)))
    return checks


def run_observation_suite(
    config=None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    skip_interference: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> list[ObservationCheck]:
    """Run the observation-input experiments through the execution
    engine and evaluate every observation those results support.

    This is what ``repro observations`` calls: the input experiments
    fan out over ``jobs`` worker processes and replay from the point
    cache, with checks identical to a serial run (the engine assembles
    byte-identical results at any job count).
    """
    from ..exec import execute_experiments  # lazy: exec imports core

    ids = [
        exp_id for exp_id in OBSERVATION_EXPERIMENTS
        if not (skip_interference and exp_id in INTERFERENCE_EXPERIMENTS)
    ]
    results, _report = execute_experiments(
        ids, config, jobs=jobs, cache_dir=cache_dir, progress=progress,
    )
    return check_all(results)
