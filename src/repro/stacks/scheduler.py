"""The mq-deadline I/O-scheduler model for zoned block devices.

What matters for the paper's observations (and what we model):

* **per-zone write serialization** — at most one (merged) write command
  in flight per zone, which is what lets applications issue many
  outstanding writes to one zone through the kernel at all;
* **contiguous-request merging** — queued writes whose LBAs abut are
  folded into one larger command before dispatch. At QD16 the paper
  measures 92.35 % of 4 KiB sequential writes merged, which is how
  intra-zone kernel writes reach 293 KIOPS, far above the device's
  ~186 K per-command cap (Observation #7).

Reads and zone-management commands pass straight through.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..hostif.commands import Command, Completion, Opcode
from ..hostif.queuepair import DeviceTarget
from ..obs.tracer import NULL_TRACER
from ..sim.engine import Event, Simulator
from .base import StackStats

__all__ = ["MqDeadlineScheduler"]

#: The block layer's default cap on a merged request (max_sectors_kb-ish).
DEFAULT_MAX_MERGE_BYTES = 512 * 1024


class MqDeadlineScheduler:
    """Per-zone write queues with contiguous merging and 1-dispatch rule."""

    name = "mq-deadline"

    #: Added host latency per request (paper: "1.85 µs out of 14.47 µs").
    overhead_ns = 1_850

    def __init__(self, device: DeviceTarget, stats: StackStats,
                 max_merge_bytes: int = DEFAULT_MAX_MERGE_BYTES):
        if max_merge_bytes <= 0:
            raise ValueError("max_merge_bytes must be positive")
        self.device = device
        self.sim: Simulator = device.sim
        self.stats = stats
        self.max_merge_bytes = max_merge_bytes
        self.tracer = getattr(device, "tracer", NULL_TRACER)
        self._queues: dict[Optional[int], deque[tuple[Command, Event]]] = {}
        self._dispatching: set[Optional[int]] = set()

    # -- protocol ----------------------------------------------------------
    def wants(self, command: Command) -> bool:
        """Only writes are queued/merged; everything else passes through."""
        return command.opcode is Opcode.WRITE

    def enqueue(self, command: Command, done: Event) -> None:
        key = self._zone_key(command)
        queue = self._queues.setdefault(key, deque())
        queue.append((command, done))
        if key not in self._dispatching:
            self._dispatching.add(key)
            self.sim.process(self._dispatch(key), name=f"mqd-zone-{key}")

    # -- internals ----------------------------------------------------------
    def _zone_key(self, command: Command) -> Optional[int]:
        zones = getattr(self.device, "zones", None)
        if zones is None:
            return None
        zone = zones.zone_containing(command.slba)
        return None if zone is None else zone.index

    def _block_size(self) -> int:
        return self.device.namespace.block_size

    def _dispatch(self, key: Optional[int]):
        queue = self._queues[key]
        block_size = self._block_size()
        max_merge_lbas = self.max_merge_bytes // block_size
        while queue:
            batch = [queue.popleft()]
            head_cmd = batch[0][0]
            next_lba = head_cmd.slba + head_cmd.nlb
            total_nlb = head_cmd.nlb
            while queue and queue[0][0].slba == next_lba and (
                total_nlb + queue[0][0].nlb <= max_merge_lbas
            ):
                cmd, done = queue.popleft()
                batch.append((cmd, done))
                next_lba += cmd.nlb
                total_nlb += cmd.nlb
            merged = Command(Opcode.WRITE, slba=head_cmd.slba, nlb=total_nlb)
            self.stats.dispatched += 1
            self.stats.merged_away += len(batch) - 1
            if self.tracer.enabled:
                self.tracer.instant("host", "mqd.dispatch", self.sim.now,
                                    track="host", zone=key,
                                    batch=len(batch), nlb=total_nlb)
            completion: Completion = yield self.device.submit(merged)
            for cmd, done in batch:
                done.succeed(
                    Completion(
                        command=cmd,
                        status=completion.status,
                        completed_at=self.sim.now,
                        merged_from=len(batch),
                    )
                )
        self._dispatching.discard(key)
