"""The SPDK-like stack: userspace polling, no scheduler, lowest overhead.

Calibration: paper Observation #2 — SPDK 4 KiB writes at 11.36 µs vs
12.62 µs through the kernel without a scheduler. With the device-side
write path at 10.79 µs (profile constants), SPDK's host overhead is
~0.56 µs, split between submission and completion-polling.

SPDK has no I/O scheduler, so the host must keep writes to a zone
strictly serialized itself; by default the stack *checks* this contract
and surfaces violations as :class:`UnsupportedOperation`, mirroring the
paper's "we are restricted to issuing only one write per zone at a time
with SPDK".
"""

from __future__ import annotations

from ..hostif.commands import Command, Opcode
from ..hostif.queuepair import DeviceTarget
from ..sim.engine import Event
from .base import StorageStack, UnsupportedOperation

__all__ = ["SpdkStack"]


class SpdkStack(StorageStack):
    name = "spdk"

    def __init__(self, device: DeviceTarget, enforce_write_serialization: bool = True):
        super().__init__(device, submit_overhead_ns=360, complete_overhead_ns=200)
        self.enforce_write_serialization = enforce_write_serialization
        self._inflight_zone_writes: dict[int, int] = {}
        self._zones = getattr(device, "zones", None)

    def _zone_index_for(self, command: Command):
        if command.opcode is not Opcode.WRITE or self._zones is None:
            return None
        zone = self._zones.zone_containing(command.slba)
        return None if zone is None else zone.index

    def submit(self, command: Command) -> Event:
        zone_index = self._zone_index_for(command)
        if zone_index is not None:
            if (
                self.enforce_write_serialization
                and self._inflight_zone_writes.get(zone_index, 0) > 0
            ):
                raise UnsupportedOperation(
                    f"SPDK has no scheduler: zone {zone_index} already has an "
                    "in-flight write (issue appends or serialize writes)"
                )
            self._inflight_zone_writes[zone_index] = (
                self._inflight_zone_writes.get(zone_index, 0) + 1
            )
        done = super().submit(command)
        if zone_index is not None:
            done.add_callback(lambda _e: self._release_zone(zone_index))
        return done

    def _release_zone(self, zone_index: int) -> None:
        self._inflight_zone_writes[zone_index] -= 1
