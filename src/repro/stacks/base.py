"""Host storage-stack abstraction.

A stack sits between workload threads and a device, adding the host-side
costs and policies the paper compares in §III-A:

* **SPDK** — bare-bones polling stack, lowest overhead, no scheduler,
  append support, one in-flight write per zone.
* **io_uring (Linux block layer)** — higher per-request overhead; with
  the **mq-deadline** scheduler it buffers, merges, and serializes writes
  per zone (enabling intra-zone write QD > 1); no append support.

Latency accounting: the stack stamps ``submitted_at`` when the request
enters the stack (what fio reports), so queueing and merging delays are
part of the measured latency, exactly as in the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hostif.commands import Command
from ..hostif.queuepair import DeviceTarget
from ..obs.tracer import NULL_TRACER
from ..sim.engine import Event, Simulator

__all__ = ["StackStats", "StorageStack", "UnsupportedOperation"]


class UnsupportedOperation(RuntimeError):
    """The stack cannot issue this command (e.g. append via io_uring)."""


@dataclass
class StackStats:
    """Per-stack request accounting (exposes fio's merge percentage)."""

    requests: int = 0
    dispatched: int = 0
    merged_away: int = 0  # requests folded into another dispatched command

    @property
    def merge_fraction(self) -> float:
        """Fraction of requests merged into a larger command (fio's
        "percentage merged"; the paper reports 92.35 % at QD16)."""
        if self.requests == 0:
            return 0.0
        return self.merged_away / self.requests


class StorageStack:
    """Base class: overhead bookkeeping + passthrough submission."""

    name = "base"

    def __init__(self, device: DeviceTarget, submit_overhead_ns: int,
                 complete_overhead_ns: int):
        self.device = device
        self.sim: Simulator = device.sim
        self.submit_overhead_ns = submit_overhead_ns
        self.complete_overhead_ns = complete_overhead_ns
        self.stats = StackStats()
        # Share the device's tracer so host-side spans land in the same
        # timeline as the device's command spans (NULL_TRACER when the
        # device model doesn't carry one).
        self.tracer = getattr(device, "tracer", NULL_TRACER)

    # -- protocol -----------------------------------------------------------
    def submit(self, command: Command) -> Event:
        """Issue a command through the stack; fires with its Completion."""
        command.submitted_at = self.sim.now
        self.stats.requests += 1
        # The issue process doubles as the completion event (its return
        # value is the Completion) — no separate done event per command.
        return self.sim.process(self._issue(command))

    def _issue(self, command: Command):
        traced = self.tracer.enabled
        entered = self.sim.now if traced else 0
        yield self.sim.timeout(self.submit_overhead_ns)
        self.stats.dispatched += 1
        target = self.device.submit(command)
        cid = 0
        if traced:
            # The device assigns the command's trace id in submit(); read
            # it back immediately (single-threaded, deterministic) so
            # host-side spans correlate with the device's spans.
            cid = getattr(self.device, "last_cid", 0)
            self.tracer.span("host", f"{self.name}.submit", entered,
                             self.sim.now, track="host", cid=cid,
                             opcode=command.opcode.value)
        completion = yield target
        complete_started = self.sim.now if traced else 0
        yield self.sim.timeout(self.complete_overhead_ns)
        completion.completed_at = self.sim.now
        if traced:
            self.tracer.span("host", f"{self.name}.complete", complete_started,
                             self.sim.now, track="host", cid=cid)
        return completion
