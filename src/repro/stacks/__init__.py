"""Host storage stacks: SPDK-like, thread-pool async, io_uring-like."""

from .base import StackStats, StorageStack, UnsupportedOperation
from .iouring import IoUringStack
from .scheduler import MqDeadlineScheduler
from .spdk import SpdkStack
from .thrpool import ThreadPoolStack

__all__ = [
    "IoUringStack",
    "MqDeadlineScheduler",
    "SpdkStack",
    "StackStats",
    "StorageStack",
    "ThreadPoolStack",
    "UnsupportedOperation",
]
