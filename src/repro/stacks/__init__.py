"""Host storage stacks: SPDK-like and io_uring-like (with mq-deadline)."""

from .base import StackStats, StorageStack, UnsupportedOperation
from .iouring import IoUringStack
from .scheduler import MqDeadlineScheduler
from .spdk import SpdkStack

__all__ = [
    "IoUringStack",
    "MqDeadlineScheduler",
    "SpdkStack",
    "StackStats",
    "StorageStack",
    "UnsupportedOperation",
]
