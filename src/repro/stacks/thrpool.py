"""Thread-pool async stack: completion callbacks over bounded workers.

Modeled on xNVMe's ``posix_async_thrpool`` backend: the caller enqueues
a command into a FIFO work queue and returns immediately; one of a
bounded set of worker threads dequeues it, performs the I/O through the
synchronous passthrough path, and invokes the completion callback
before picking up its next piece of work.

The cost structure sits between the paper's two measured stacks:

* cheaper than io_uring — no syscall or kernel block-layer transit,
  just a userspace queue hand-off and a thread wake-up;
* dearer than SPDK — the submitting thread never touches the device
  itself, so every command pays a cross-thread hop on both the submit
  and the completion side that SPDK's inline polling loop avoids.

Calibrated at 1.10 µs of host overhead per command (enqueue 310 ns +
worker dispatch 430 ns + completion callback 360 ns), so a 4 KiB QD1
write lands at 11.89 µs: between SPDK's 11.36 µs and io_uring's
12.62 µs — the third point on the Observation #2 overhead axis.

Worker threads are modeled as a :class:`~repro.sim.resources.Resource`
with FIFO slot grants, so the schedule is a pure function of the sim
clock and the submission order: results stay byte-identical at any
``--jobs`` count like every other stack. Because the backend wraps the
sync passthrough, all opcodes are supported (append and zone management
included) — unlike io_uring, which cannot issue appends.
"""

from __future__ import annotations

from ..hostif.commands import Command
from ..hostif.queuepair import DeviceTarget
from ..sim.resources import Resource
from .base import StorageStack

__all__ = ["ThreadPoolStack"]

#: Producer side: queue append + worker wake-up signal.
ENQUEUE_NS = 310
#: Worker side: wake from the condition variable + dequeue.
DISPATCH_NS = 430
#: Completion callback invoked on the worker before it takes new work.
CALLBACK_NS = 360

DEFAULT_THREADS = 4


class ThreadPoolStack(StorageStack):
    name = "thrpool"

    def __init__(self, device: DeviceTarget, num_threads: int = DEFAULT_THREADS):
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        super().__init__(device, submit_overhead_ns=ENQUEUE_NS + DISPATCH_NS,
                         complete_overhead_ns=CALLBACK_NS)
        self.num_threads = num_threads
        self._workers = Resource(self.sim, capacity=num_threads,
                                 name="thrpool.workers")

    def _issue(self, command: Command):
        traced = self.tracer.enabled
        entered = self.sim.now if traced else 0
        # The submitting thread only appends to the work queue; the
        # command then waits for a worker slot in FIFO order (this wait
        # is the stack's queueing delay and is part of the measured
        # latency, exactly like mq-deadline's scheduler hold time).
        yield self.sim.timeout(ENQUEUE_NS)
        slot = self._workers.request()
        yield slot
        try:
            yield self.sim.timeout(DISPATCH_NS)
            self.stats.dispatched += 1
            target = self.device.submit(command)
            cid = 0
            if traced:
                cid = getattr(self.device, "last_cid", 0)
                self.tracer.span("host", f"{self.name}.submit", entered,
                                 self.sim.now, track="host", cid=cid,
                                 opcode=command.opcode.value)
            completion = yield target
            complete_started = self.sim.now if traced else 0
            # The callback runs on the worker thread; the slot frees
            # only after it returns (xNVMe invokes cb before the worker
            # loops for more work).
            yield self.sim.timeout(CALLBACK_NS)
            completion.completed_at = self.sim.now
            if traced:
                self.tracer.span("host", f"{self.name}.complete",
                                 complete_started, self.sim.now,
                                 track="host", cid=cid)
        finally:
            self._workers.release(slot)
        return completion
