"""The Linux io_uring block-layer stack (with optional mq-deadline).

Calibration (Observation #2): kernel writes without a scheduler complete
in 12.62 µs vs 10.79 µs of device time → ~1.83 µs of block-layer + ring
overhead. The mq-deadline scheduler adds 1.85 µs more (paper: "1.85 µs
out of 14.47 µs, or 12.81 %") and enables per-zone write queueing with
merging.

Like fio through the kernel, this stack cannot issue ``append`` or
zone-management commands — use SPDK for those (paper §III-A).
"""

from __future__ import annotations

from typing import Optional

from ..hostif.commands import Command, Opcode
from ..hostif.queuepair import DeviceTarget
from ..sim.engine import Event
from .base import StorageStack, UnsupportedOperation
from .scheduler import MqDeadlineScheduler

__all__ = ["IoUringStack"]


class IoUringStack(StorageStack):
    name = "io_uring"

    def __init__(self, device: DeviceTarget, scheduler: Optional[str] = "none",
                 max_merge_bytes: Optional[int] = None):
        super().__init__(device, submit_overhead_ns=1_230, complete_overhead_ns=600)
        if scheduler in (None, "none"):
            self.scheduler = None
        elif scheduler == "mq-deadline":
            kwargs = {} if max_merge_bytes is None else {"max_merge_bytes": max_merge_bytes}
            self.scheduler = MqDeadlineScheduler(device, self.stats, **kwargs)
        else:
            raise ValueError(f"unknown scheduler {scheduler!r} (none | mq-deadline)")

    @property
    def scheduler_name(self) -> str:
        return "none" if self.scheduler is None else self.scheduler.name

    def submit(self, command: Command) -> Event:
        if command.opcode in (Opcode.APPEND, Opcode.ZONE_MGMT):
            raise UnsupportedOperation(
                f"fio/io_uring cannot issue {command.opcode.value} commands; "
                "use the SPDK stack (paper §III-A)"
            )
        if self.scheduler is None or not self.scheduler.wants(command):
            return super().submit(command)
        command.submitted_at = self.sim.now
        self.stats.requests += 1
        return self.sim.process(self._issue_scheduled(command))

    def _issue_scheduled(self, command: Command):
        yield self.sim.timeout(self.submit_overhead_ns + self.scheduler.overhead_ns)
        inner = self.sim.event()
        self.scheduler.enqueue(command, inner)
        completion = yield inner
        yield self.sim.timeout(self.complete_overhead_ns)
        completion.completed_at = self.sim.now
        return completion
