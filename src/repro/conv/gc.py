"""Garbage-collection policy and accounting for the conventional SSD.

Greedy victim selection with watermark hysteresis: GC starts when the
free-block fraction drops below the low watermark and runs until the high
watermark is restored. The hysteresis (plus whole-block relocation
bursts) is what makes user throughput *fluctuate* on the conventional
device — the behaviour Fig. 6 contrasts with ZNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GcPolicy", "GcStats"]


@dataclass(frozen=True)
class GcPolicy:
    """Watermark hysteresis thresholds (fractions of total blocks)."""

    low_watermark: float = 0.03
    high_watermark: float = 0.055

    def __post_init__(self) -> None:
        if not 0 < self.low_watermark < self.high_watermark < 1:
            raise ValueError(
                f"require 0 < low ({self.low_watermark}) < high "
                f"({self.high_watermark}) < 1"
            )

    def should_start(self, free_fraction: float) -> bool:
        return free_fraction < self.low_watermark

    def should_stop(self, free_fraction: float) -> bool:
        return free_fraction >= self.high_watermark


@dataclass
class GcStats:
    """Counters describing GC activity over a run."""

    activations: int = 0
    victims_erased: int = 0
    pages_copied: int = 0
    busy_ns: int = 0
    _run_started_at: int = field(default=-1, repr=False)

    def start_run(self, now: int) -> None:
        self.activations += 1
        self._run_started_at = now

    def end_run(self, now: int) -> None:
        if self._run_started_at >= 0:
            self.busy_ns += now - self._run_started_at
            self._run_started_at = -1
