"""The simulated conventional (block-interface) NVMe SSD.

Shares the ZN540's controller/buffer/flash mechanics (the paper stresses
both test devices "have the same hardware specifications") but replaces
the zone layer with a page-mapped FTL plus device-internal garbage
collection. GC relocation traffic flows through the same dies as user
I/O at the same priority — producing exactly the §III-F phenomena: user
write throughput swinging between a few MiB/s and the device limit, and
read tail latencies inflated by orders of magnitude.

The shared mechanics literally are the ZNS device's: both models extend
:class:`repro.device.core.DeviceCore` (controller front-end, completion
path, write buffer, flush tail) and draw precomputed per-request costs
from the shared :class:`repro.device.planner.RequestPlanner`; this
module holds only the FTL and GC machinery (DESIGN.md §11).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..device.core import PRIO_IO, DeviceCore, DeviceCounters
from ..flash.backend import FlashBackend
from ..hostif.commands import Command, Opcode
from ..hostif.namespace import LBA_4K, LbaFormat
from ..hostif.status import Status
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..sim.engine import Simulator
from ..sim.rng import StreamFactory
from ..zns.profiles import DeviceProfile
from .ftl import FtlFullError, PageMappedFtl
from .gc import GcPolicy, GcStats

__all__ = ["ConvDevice", "DeviceCounters", "PRIO_GC_URGENT"]

#: GC only activates below the low free-space watermark, where it must
#: outrank user traffic at the dies or the (buffer-deep) backlog of user
#: programs would starve it and deadlock the FTL. This urgency is also
#: what collapses user throughput during GC bursts (Fig. 6a) and stretches
#: read tails to hundreds of milliseconds (Observation #11).
PRIO_GC_URGENT = -1


class ConvDevice(DeviceCore):
    """A conventional SSD: page-mapped FTL + greedy GC over shared flash."""

    kind = "conv"

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        lba_format: LbaFormat = LBA_4K,
        streams: Optional[StreamFactory] = None,
        gc_policy: Optional[GcPolicy] = None,
        gc_window: int = 16,
        gc_priority: int = PRIO_GC_URGENT,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
        telemetry=None,
    ):
        #: Factory spares per die for bad-block remapping — reserved only
        #: when the plan can actually fail erases, so fault-free (and
        #: erase-fault-free) runs keep the exact historical block pools.
        spares = 2 if faults is not None and faults.erase_faults_enabled else 0
        self.ftl = PageMappedFtl(profile.geometry, profile.overprovision,
                                 spare_blocks_per_die=spares)
        # Round the namespace down to a whole number of logical pages.
        logical_bytes = self.ftl.logical_pages * profile.geometry.page_size
        super().__init__(
            sim, profile, logical_bytes, lba_format, streams or StreamFactory(),
            tracer, metrics, io_stream="conv-io", faults=faults,
            telemetry=telemetry,
        )
        self.backend = FlashBackend(
            sim, profile.geometry, profile.nand, profile.channel_bandwidth,
            tracer=self.tracer,
            metrics=self.metrics if self.observing else None,
            faults=self.faults,
        )
        #: Power-loss cancellation tokens of page flushes that have not
        #: committed to the media yet (fault mode only; see DeviceCore).
        self._pending_flushes: list = []
        self._gc_victim_counter = self.metrics.counter("gc.victims_erased")
        self._gc_copy_counter = self.metrics.counter("gc.pages_copied")
        self.gc_policy = gc_policy or GcPolicy(
            profile.gc_low_watermark, profile.gc_high_watermark
        )
        self.gc_stats = GcStats()
        self._gc_wakeup = sim.event()
        self._space_freed = sim.event()
        self._gc_running = False
        #: Free blocks only GC may allocate from — guarantees relocation
        #: destinations so GC can always make forward progress.
        self._gc_reserve = profile.geometry.total_dies
        #: Victim blocks processed concurrently. Real FTLs pipeline GC
        #: deeply; this is what piles relocation traffic onto the dies in
        #: front of user reads (the §III-F conventional read tails).
        if gc_window < 1:
            raise ValueError(f"gc_window must be >= 1, got {gc_window}")
        self.gc_window = gc_window
        #: Die-scheduling priority of GC traffic; PRIO_GC_URGENT by
        #: default (see module note). The ablation benchmarks set this to
        #: PRIO_IO to demonstrate the starvation failure mode.
        self.gc_priority = gc_priority
        self._gc_inflight_blocks: set[int] = set()
        sim.process(self._gc_loop(), name="conv-gc")

    # ------------------------------------------------------------------ api
    def _dispatch(self, command: Command, cid: int) -> Generator:
        opcode = command.opcode
        if opcode is Opcode.READ:
            return self._exec_read(command, cid)
        elif opcode is Opcode.WRITE:
            return self._exec_write(command, cid)
        elif opcode is Opcode.TRIM:
            return self._exec_trim(command, cid)
        raise ValueError(
            f"conventional device does not support {command.opcode.value}"
        )

    def _telemetry_levels(self) -> dict:
        levels = super()._telemetry_levels()
        levels["ftl.free_frac"] = round(self.ftl.free_fraction, 6)
        levels["ftl.bad_blocks"] = len(self.ftl.bad_blocks)
        levels["gc.running"] = 1 if self._gc_running else 0
        levels["gc.inflight_blocks"] = len(self._gc_inflight_blocks)
        return levels

    def age(self, epochs: int, churn_erases: int = 4) -> int:
        """Fast-forward ``epochs`` "days" of GC/write churn as wear.

        The conventional-FTL counterpart of :meth:`ZnsDevice.age`: every
        erase block gains 1..2×``churn_erases`` cycles per epoch, drawn
        deterministically from the ``"aging"`` stream, so wear-curve
        failure rates (and eventually bad-block remaps) start from an
        aged baseline. A no-op when no fault plan is armed. Returns 0
        (conv blocks retire through GC erase failures, not thresholds).
        """
        if epochs <= 0 or self.faults is None:
            return 0
        injector = self.faults
        rng = self._streams.stream("aging")
        blocks = self.ftl.blocks
        wears = [injector.wear.unit(block.block_id) for block in blocks]
        for _ in range(epochs):
            erases = rng.integers(
                1, 2 * churn_erases + 1, size=len(blocks)
            ).tolist()
            for wear, count in zip(wears, erases):
                wear.erase_count += count
                wear.reads_since_erase = 0
        high = max(wear.erase_count for wear in wears)
        if high > injector.max_erase_count.value:
            injector.max_erase_count.set(high)
        return 0

    def _require_reformattable(self) -> None:
        if self._gc_running or self.buffer.level:
            raise RuntimeError(
                "reformat requires a quiescent device: buffered writes or "
                "GC in flight; run the simulator to exhaustion first"
            )

    def precondition(self, utilization: float = 1.0,
                     steady_state_churn: float = 0.0, seed: int = 99) -> None:
        """Metadata-only stand-in for the hours-long fill + churn a real
        measurement runs before Fig. 6.

        Fills ``utilization`` of the logical space sequentially, then
        overwrites ``steady_state_churn`` × that volume at uniformly
        random addresses with synchronous (untimed) watermark GC — which
        drives the per-block validity distribution to the greedy-GC
        steady state, so the measured run starts with realistic write
        amplification instead of spending hundreds of simulated seconds
        converging.
        """
        if not 0 <= utilization <= 1:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        if steady_state_churn < 0:
            raise ValueError("steady_state_churn must be >= 0")
        mapped = int(self.ftl.logical_pages * utilization)
        for logical in range(mapped):
            self.ftl.commit_write(logical)
        if steady_state_churn > 0 and mapped > 0:
            import numpy as np

            rng = np.random.default_rng(seed)
            for logical in rng.integers(0, mapped, round(mapped * steady_state_churn)):
                if self.gc_policy.should_start(self.ftl.free_fraction):
                    self._metadata_gc(self.gc_policy.high_watermark)
                self.ftl.commit_write(int(logical))
        # The fill is preconditioning, not measured traffic.
        self.ftl.total_user_pages_written = 0
        self.ftl.total_gc_pages_copied = 0

    def _metadata_gc(self, target_free_fraction: float) -> None:
        """Instantaneous GC used only during preconditioning."""
        while self.ftl.free_fraction < target_free_fraction:
            victim = self.ftl.pick_victim()
            if victim is None:
                break
            for slot in range(self.ftl.pages_per_block):
                self.ftl.relocate(victim, slot)
            self.ftl.erase(victim)

    # ----------------------------------------------------------------- paths
    def _exec_read(self, command: Command, cid: int = 0) -> Generator:
        shape = self._read_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.READ, command.nlb)
        if self.tracer.enabled:
            yield from self._controller_service(shape.service_ns, cid)
        else:
            # Untraced fast path: the controller handshake inlined (same
            # events in the same order as _controller_service).
            req = self.controller.request(PRIO_IO)
            yield req
            yield self.sim.timeout(self._io_jitter.jitter(shape.service_ns))
            self.controller.release(req)
        if command.slba + command.nlb > self._capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        start_page, n_pages, take = self.planner.page_plan(command.slba, command.nlb)
        nand_started = self.sim.now if self.tracer.enabled else 0
        sim = self.sim
        lookup = self.ftl.lookup
        die_of = self.ftl.die_of_physical
        read_page = self.backend.read_page
        injector = self.backend.faults
        fault_out = [] if injector is not None else None
        pages_per_block = self.ftl.pages_per_block
        remapped_blocks = self.ftl.remapped_blocks
        remapped = 0
        reads = []
        for logical in range(start_page, start_page + n_pages):
            physical = lookup(logical)
            if physical is None:
                continue  # unwritten data: served from the map, no NAND
            wear = None
            if injector is not None:
                block_id = physical // pages_per_block
                wear = injector.wear.unit(block_id)
                if block_id in remapped_blocks:
                    remapped += 1
            reads.append(
                sim.process(
                    read_page(die_of(physical), priority=PRIO_IO,
                              transfer_bytes=take, cid=cid,
                              fault_out=fault_out, wear=wear)
                )
            )
        if remapped:
            # Remap-table indirection: pages on promoted spares pay an
            # extra firmware lookup before the NAND ops are issued.
            yield sim.timeout(remapped * injector.plan.bad_block_remap_ns)
        if len(reads) == 1:
            yield reads[0]
        elif reads:
            yield sim.all_of(reads)
            if self.tracer.enabled:
                self.tracer.span("nand", "read.fanout", nand_started,
                                 self.sim.now, track="nand", cid=cid,
                                 dies=len(reads))
        if fault_out:
            return self._complete(command, Status.MEDIA_UNRECOVERED_READ, cid=cid)
        return self._complete(command, Status.SUCCESS, nbytes=shape.nbytes, cid=cid)

    def _exec_write(self, command: Command, cid: int = 0) -> Generator:
        shape = self._write_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.WRITE, command.nlb)
        if self.tracer.enabled:
            yield from self._controller_service(shape.service_ns, cid)
        else:
            req = self.controller.request(PRIO_IO)
            yield req
            yield self.sim.timeout(self._io_jitter.jitter(shape.service_ns))
            self.controller.release(req)
        if command.slba + command.nlb > self._capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        nbytes = shape.nbytes
        start_page, n_pages, _ = self.planner.page_plan(command.slba, command.nlb)
        flash_bytes = n_pages * self._page_size
        admit_started = self.sim.now if self.tracer.enabled else 0
        yield self.sim.timeout(shape.admit_ns)
        yield self.buffer.put(flash_bytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        if self.tracer.enabled:
            self.tracer.span("buffer", "write.admit", admit_started,
                             self.sim.now, track="buffer", cid=cid, nbytes=nbytes)
        start_process = self.sim.process
        flush = self._flush_page
        if self.faults is None:
            for logical in range(start_page, start_page + n_pages):
                start_process(flush(logical))
        else:
            for logical in range(start_page, start_page + n_pages):
                token = [False, False]  # [cancelled, program started]
                self._pending_flushes.append(token)
                start_process(flush(logical, token))
        self._maybe_wake_gc()
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    def _flush_page(self, logical: int, token: list | None = None) -> Generator:
        if token is not None and token[0]:
            # Power cut dropped this page before the flush began; the
            # mapping keeps the old data and the bytes were drained.
            self._pending_flushes.remove(token)
            return
        while True:
            try:
                physical = self.ftl.commit_write(logical, reserve=self._gc_reserve)
                break
            except FtlFullError:
                # Out of allocatable blocks: stall this flush (and, via
                # the full buffer, user writes) until GC frees a block —
                # the mechanism behind Fig. 6a's throughput collapses.
                self._maybe_wake_gc()
                yield self._space_freed
        wear = None
        if self.backend.faults is not None:
            block_id = physical // self.ftl.pages_per_block
            wear = self.faults.wear.unit(block_id)
            if block_id in self.ftl.remapped_blocks:
                yield self.sim.timeout(self.faults.plan.bad_block_remap_ns)
        failures = yield from self._flush_page_to_die(
            self.ftl.die_of_physical(physical), cancel=token, wear=wear
        )
        if wear is not None and failures > 0:
            wear.program_failures += failures
        if token is not None:
            try:
                self._pending_flushes.remove(token)
            except ValueError:
                pass

    # ------------------------------------------------------------ power loss
    def _power_loss_drop(self, target: int) -> tuple[int, int]:
        """Cancel queued-but-uncommitted page flushes, newest first.

        The recovery unit count is the FTL's mapped-page population: on
        boot a conventional controller rebuilds (or at least verifies)
        its L2P table, so the replay cost scales with mapped pages.
        """
        page = self._page_size
        dropped = 0
        for token in reversed(self._pending_flushes):
            if target - dropped < page:
                break
            if token[1]:  # already programming; PLP completes it
                continue
            token[0] = True
            dropped += page
        return dropped, self.ftl.mapped_pages()

    def _recovery_ns(self, units: int) -> int:
        return units * self.faults.plan.recovery_per_page_ns

    def _exec_trim(self, command: Command, cid: int = 0) -> Generator:
        """NVMe deallocate: unmap pages so GC can reclaim them for free.

        Like the ZNS reset, trim is metadata work whose cost grows with
        the number of mapped pages it touches (the paper cites trim's
        metadata overheads when explaining reset cost, §III-E). We model
        it as per-page mapping updates on the controller.

        (The service-time class is deliberately the WRITE formula: trim
        rides the write command path on real controllers.)
        """
        shape = self._write_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.WRITE, command.nlb)
        yield from self._controller_service(shape.service_ns, cid)
        if command.slba + command.nlb > self._capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        start_page, n_pages, _ = self.planner.page_plan(command.slba, command.nlb)
        unmapped = 0
        for logical in range(start_page, start_page + n_pages):
            if self.ftl.trim(logical):
                unmapped += 1
        # Mapping-table updates: same per-LBA cost class as the ZNS
        # reset's unmapping work, scaled to the pages actually touched.
        map_started = self.sim.now
        yield self.sim.timeout(unmapped * self.profile.per_lba_ns_4k * 4)
        if self.tracer.enabled:
            self.tracer.span("firmware", "trim.unmap", map_started,
                             self.sim.now, track="firmware", cid=cid,
                             pages=unmapped)
        return self._complete(command, Status.SUCCESS, cid=cid)

    # ----------------------------------------------------------------- GC
    def _maybe_wake_gc(self) -> None:
        if not self._gc_running and self.gc_policy.should_start(self.ftl.free_fraction):
            if not self._gc_wakeup.triggered:
                self._gc_wakeup.succeed()

    def _gc_loop(self) -> Generator:
        while True:
            if not self.gc_policy.should_start(self.ftl.free_fraction):
                yield self._gc_wakeup
                self._gc_wakeup = self.sim.event()
            self._gc_running = True
            run_started = self.sim.now
            victims_before = self.gc_stats.victims_erased
            copied_before = self.gc_stats.pages_copied
            self.gc_stats.start_run(self.sim.now)
            active: list = []
            while True:
                # Keep the victim pipeline full while below the stop mark.
                while (
                    len(active) < self.gc_window
                    and not self.gc_policy.should_stop(self.ftl.free_fraction)
                ):
                    victim = self.ftl.pick_victim(exclude=self._gc_inflight_blocks)
                    if victim is None:
                        break
                    self._gc_inflight_blocks.add(victim.block_id)
                    active.append(self.sim.process(self._gc_victim(victim)))
                if not active:
                    break
                yield self.sim.any_of(active)
                active = [p for p in active if p.is_alive]
            self.gc_stats.end_run(self.sim.now)
            if self.tracer.enabled:
                self.tracer.span(
                    "gc", "gc.run", run_started, self.sim.now, track="gc",
                    victims=self.gc_stats.victims_erased - victims_before,
                    pages_copied=self.gc_stats.pages_copied - copied_before,
                )
            self._gc_running = False

    def _gc_victim(self, victim) -> Generator:
        """Relocate one victim's valid pages, then erase and recycle it."""
        started = self.sim.now
        try:
            copies = []
            for slot in range(self.ftl.pages_per_block):
                new_physical = self.ftl.relocate(victim, slot)
                if new_physical is None:
                    continue
                copies.append(
                    self.sim.process(
                        self._gc_copy(victim.die, self.ftl.die_of_physical(new_physical))
                    )
                )
            if copies:
                yield self.sim.all_of(copies)
                self.gc_stats.pages_copied += len(copies)
                self._gc_copy_counter.inc(len(copies))
            wear = (self.backend.faults.wear.unit(victim.block_id)
                    if self.backend.faults is not None else None)
            bad = yield self.sim.process(
                self.backend.erase_block(
                    victim.die, priority=self.gc_priority, label="gc.erase",
                    wear=wear
                )
            )
            freed = True
            if bad:
                # Erase retries exhausted: retire the block and promote a
                # factory spare (later accesses to the spare pay the
                # remap indirection). An empty spare pool just shrinks
                # the die.
                spare = self.ftl.retire_block(victim)
                if spare is not None:
                    self.faults.bad_blocks_remapped.inc()
                else:
                    freed = False
            else:
                self.ftl.erase(victim)
                self.gc_stats.victims_erased += 1
                self._gc_victim_counter.inc()
            if self.tracer.enabled:
                self.tracer.span("gc", "gc.victim", started, self.sim.now,
                                 track="gc", die=victim.die,
                                 pages_copied=len(copies))
            if freed:
                self._space_freed.succeed()
                self._space_freed = self.sim.event()
        finally:
            self._gc_inflight_blocks.discard(victim.block_id)

    def _gc_copy(self, src_die: int, dst_die: int) -> Generator:
        yield from self.backend.read_page(src_die, priority=self.gc_priority,
                                          label="gc.read")
        yield from self.backend.program_page(dst_die, priority=self.gc_priority,
                                             label="gc.program")
