"""The simulated conventional (block-interface) NVMe SSD.

Shares the ZN540's controller/buffer/flash mechanics (the paper stresses
both test devices "have the same hardware specifications") but replaces
the zone layer with a page-mapped FTL plus device-internal garbage
collection. GC relocation traffic flows through the same dies as user
I/O at the same priority — producing exactly the §III-F phenomena: user
write throughput swinging between a few MiB/s and the device limit, and
read tail latencies inflated by orders of magnitude.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..flash.backend import FlashBackend
from ..hostif.commands import Command, Completion, Opcode
from ..hostif.namespace import LBA_4K, LbaFormat, Namespace
from ..hostif.status import Status
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_NS, MetricsRegistry
from ..obs.tracer import Tracer, resolve_tracer
from ..sim.engine import Event, Simulator
from ..sim.resources import Container, Resource
from ..sim.rng import LatencySampler, StreamFactory
from ..zns.device import PRIO_IO, DeviceCounters
from ..zns.profiles import DeviceProfile
from .ftl import FtlFullError, PageMappedFtl
from .gc import GcPolicy, GcStats

__all__ = ["ConvDevice", "PRIO_GC_URGENT"]

#: GC only activates below the low free-space watermark, where it must
#: outrank user traffic at the dies or the (buffer-deep) backlog of user
#: programs would starve it and deadlock the FTL. This urgency is also
#: what collapses user throughput during GC bursts (Fig. 6a) and stretches
#: read tails to hundreds of milliseconds (Observation #11).
PRIO_GC_URGENT = -1


class ConvDevice:
    """A conventional SSD: page-mapped FTL + greedy GC over shared flash."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        lba_format: LbaFormat = LBA_4K,
        streams: Optional[StreamFactory] = None,
        gc_policy: Optional[GcPolicy] = None,
        gc_window: int = 16,
        gc_priority: int = PRIO_GC_URGENT,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.profile = profile
        streams = streams or StreamFactory()
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: True when the caller asked for observability (same contract as
        #: ZnsDevice.observing): hot-path metric updates gate on this.
        self.observing = metrics is not None or self.tracer.enabled
        self.tracer.register_process(f"conv:{profile.name}")
        self.ftl = PageMappedFtl(profile.geometry, profile.overprovision)
        page_size = profile.geometry.page_size
        logical_bytes = self.ftl.logical_pages * page_size
        # Round the namespace down to a whole number of logical pages.
        self.namespace = Namespace(logical_bytes, lba_format)
        self.backend = FlashBackend(
            sim, profile.geometry, profile.nand, profile.channel_bandwidth,
            tracer=self.tracer,
            metrics=self.metrics if self.observing else None,
        )
        self.controller = Resource(sim, capacity=1, name="controller")
        self.buffer = Container(sim, capacity=profile.write_buffer_bytes, name="wbuf")
        self._io_jitter = LatencySampler(streams.stream("conv-io"), profile.jitter_sigma)
        self.counters = DeviceCounters(self.metrics)
        self._latency_hist = {
            op: self.metrics.histogram(
                f"device.latency_ns.{op.value}", DEFAULT_LATENCY_BUCKETS_NS
            )
            for op in Opcode
        }
        self._wbuf_gauge = self.metrics.gauge("device.wbuf.level_bytes")
        self._gc_victim_counter = self.metrics.counter("gc.victims_erased")
        self._gc_copy_counter = self.metrics.counter("gc.pages_copied")
        self.last_cid = 0
        self.gc_policy = gc_policy or GcPolicy(
            profile.gc_low_watermark, profile.gc_high_watermark
        )
        self.gc_stats = GcStats()
        self._gc_wakeup = sim.event()
        self._space_freed = sim.event()
        self._gc_running = False
        #: Free blocks only GC may allocate from — guarantees relocation
        #: destinations so GC can always make forward progress.
        self._gc_reserve = profile.geometry.total_dies
        #: Victim blocks processed concurrently. Real FTLs pipeline GC
        #: deeply; this is what piles relocation traffic onto the dies in
        #: front of user reads (the §III-F conventional read tails).
        if gc_window < 1:
            raise ValueError(f"gc_window must be >= 1, got {gc_window}")
        self.gc_window = gc_window
        #: Die-scheduling priority of GC traffic; PRIO_GC_URGENT by
        #: default (see module note). The ablation benchmarks set this to
        #: PRIO_IO to demonstrate the starvation failure mode.
        self.gc_priority = gc_priority
        self._gc_inflight_blocks: set[int] = set()
        sim.process(self._gc_loop(), name="conv-gc")

    # ------------------------------------------------------------------ api
    def submit(self, command: Command) -> Event:
        if command.submitted_at < 0:
            command.submitted_at = self.sim.now
        cid = (
            self.tracer.begin_command(command.opcode.value)
            if self.tracer.enabled
            else 0
        )
        self.last_cid = cid
        if command.opcode is Opcode.READ:
            gen = self._exec_read(command, cid)
        elif command.opcode is Opcode.WRITE:
            gen = self._exec_write(command, cid)
        elif command.opcode is Opcode.TRIM:
            gen = self._exec_trim(command, cid)
        else:
            raise ValueError(
                f"conventional device does not support {command.opcode.value}"
            )
        # The process event is the completion event (the generator returns
        # the Completion) — one event per command instead of two.
        return self.sim.process(gen)

    def precondition(self, utilization: float = 1.0,
                     steady_state_churn: float = 0.0, seed: int = 99) -> None:
        """Metadata-only stand-in for the hours-long fill + churn a real
        measurement runs before Fig. 6.

        Fills ``utilization`` of the logical space sequentially, then
        overwrites ``steady_state_churn`` × that volume at uniformly
        random addresses with synchronous (untimed) watermark GC — which
        drives the per-block validity distribution to the greedy-GC
        steady state, so the measured run starts with realistic write
        amplification instead of spending hundreds of simulated seconds
        converging.
        """
        if not 0 <= utilization <= 1:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        if steady_state_churn < 0:
            raise ValueError("steady_state_churn must be >= 0")
        mapped = int(self.ftl.logical_pages * utilization)
        for logical in range(mapped):
            self.ftl.commit_write(logical)
        if steady_state_churn > 0 and mapped > 0:
            import numpy as np

            rng = np.random.default_rng(seed)
            for logical in rng.integers(0, mapped, round(mapped * steady_state_churn)):
                if self.gc_policy.should_start(self.ftl.free_fraction):
                    self._metadata_gc(self.gc_policy.high_watermark)
                self.ftl.commit_write(int(logical))
        # The fill is preconditioning, not measured traffic.
        self.ftl.total_user_pages_written = 0
        self.ftl.total_gc_pages_copied = 0

    def _metadata_gc(self, target_free_fraction: float) -> None:
        """Instantaneous GC used only during preconditioning."""
        while self.ftl.free_fraction < target_free_fraction:
            victim = self.ftl.pick_victim()
            if victim is None:
                break
            for slot in range(self.ftl.pages_per_block):
                self.ftl.relocate(victim, slot)
            self.ftl.erase(victim)

    # ----------------------------------------------------------------- paths
    def _complete(self, command: Command, status: Status, nbytes: int = 0,
                  cid: int = 0) -> Completion:
        completion = Completion(command=command, status=status, completed_at=self.sim.now)
        self.counters.record(completion, nbytes)
        if self.observing and status.ok and command.submitted_at >= 0:
            self._latency_hist[command.opcode].observe(
                self.sim.now - command.submitted_at
            )
        if self.tracer.enabled:
            self.tracer.span(
                "command", command.opcode.value,
                command.submitted_at if command.submitted_at >= 0 else self.sim.now,
                self.sim.now, track="commands", cid=cid,
                opcode=command.opcode.value, status=status.value,
                slba=command.slba, nlb=command.nlb,
            )
        return completion

    def _controller_service(self, service_ns: int, cid: int = 0) -> Generator:
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = self.controller.request(PRIO_IO)
        yield req
        granted_at = self.sim.now if traced else 0
        yield self.sim.timeout(self._io_jitter.jitter(service_ns))
        self.controller.release(req)
        if traced:
            if granted_at > queued_at:
                self.tracer.span("queue", "controller.wait", queued_at,
                                 granted_at, track="controller", cid=cid)
            self.tracer.span("controller", "controller.service", granted_at,
                             self.sim.now, track="controller", cid=cid)

    def _pages_spanned(self, command: Command) -> range:
        page_size = self.profile.geometry.page_size
        start = self.namespace.bytes_of(command.slba)
        end = start + self.namespace.bytes_of(command.nlb)
        return range(start // page_size, -(-end // page_size))

    def _exec_read(self, command: Command, cid: int = 0) -> Generator:
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.READ, nbytes, command.nlb, self.namespace.block_size
        )
        yield from self._controller_service(service, cid)
        if command.slba + command.nlb > self.namespace.capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        nand_started = self.sim.now if self.tracer.enabled else 0
        reads = []
        for logical in self._pages_spanned(command):
            physical = self.ftl.lookup(logical)
            if physical is None:
                continue  # unwritten data: served from the map, no NAND
            die = self.ftl.die_of_physical(physical)
            take = min(self.profile.geometry.page_size, nbytes)
            reads.append(
                self.sim.process(
                    self.backend.read_page(die, priority=PRIO_IO,
                                           transfer_bytes=take, cid=cid)
                )
            )
        if len(reads) == 1:
            yield reads[0]
        elif reads:
            yield self.sim.all_of(reads)
            if self.tracer.enabled:
                self.tracer.span("nand", "read.fanout", nand_started,
                                 self.sim.now, track="nand", cid=cid,
                                 dies=len(reads))
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    def _exec_write(self, command: Command, cid: int = 0) -> Generator:
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.WRITE, nbytes, command.nlb, self.namespace.block_size
        )
        yield from self._controller_service(service, cid)
        if command.slba + command.nlb > self.namespace.capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        pages = list(self._pages_spanned(command))
        flash_bytes = len(pages) * self.profile.geometry.page_size
        admit_started = self.sim.now if self.tracer.enabled else 0
        yield self.sim.timeout(self.profile.dma_ns(nbytes) + self.profile.write_admit_ns)
        yield self.buffer.put(flash_bytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        if self.tracer.enabled:
            self.tracer.span("buffer", "write.admit", admit_started,
                             self.sim.now, track="buffer", cid=cid, nbytes=nbytes)
        for logical in pages:
            self.sim.process(self._flush_page(logical))
        self._maybe_wake_gc()
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    def _flush_page(self, logical: int) -> Generator:
        while True:
            try:
                physical = self.ftl.commit_write(logical, reserve=self._gc_reserve)
                break
            except FtlFullError:
                # Out of allocatable blocks: stall this flush (and, via
                # the full buffer, user writes) until GC frees a block —
                # the mechanism behind Fig. 6a's throughput collapses.
                self._maybe_wake_gc()
                yield self._space_freed
        die = self.ftl.die_of_physical(physical)
        yield from self.backend.program_page(die, priority=PRIO_IO, label="flush")
        yield self.buffer.get(self.profile.geometry.page_size)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)

    def _exec_trim(self, command: Command, cid: int = 0) -> Generator:
        """NVMe deallocate: unmap pages so GC can reclaim them for free.

        Like the ZNS reset, trim is metadata work whose cost grows with
        the number of mapped pages it touches (the paper cites trim's
        metadata overheads when explaining reset cost, §III-E). We model
        it as per-page mapping updates on the controller.
        """
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.WRITE, nbytes, command.nlb, self.namespace.block_size
        )
        yield from self._controller_service(service, cid)
        if command.slba + command.nlb > self.namespace.capacity_lbas:
            return self._complete(command, Status.LBA_OUT_OF_RANGE, cid=cid)
        unmapped = 0
        for logical in self._pages_spanned(command):
            if self.ftl.trim(logical):
                unmapped += 1
        # Mapping-table updates: same per-LBA cost class as the ZNS
        # reset's unmapping work, scaled to the pages actually touched.
        map_started = self.sim.now
        yield self.sim.timeout(unmapped * self.profile.per_lba_ns_4k * 4)
        if self.tracer.enabled:
            self.tracer.span("firmware", "trim.unmap", map_started,
                             self.sim.now, track="firmware", cid=cid,
                             pages=unmapped)
        return self._complete(command, Status.SUCCESS, cid=cid)

    # ----------------------------------------------------------------- GC
    def _maybe_wake_gc(self) -> None:
        if not self._gc_running and self.gc_policy.should_start(self.ftl.free_fraction):
            if not self._gc_wakeup.triggered:
                self._gc_wakeup.succeed()

    def _gc_loop(self) -> Generator:
        while True:
            if not self.gc_policy.should_start(self.ftl.free_fraction):
                yield self._gc_wakeup
                self._gc_wakeup = self.sim.event()
            self._gc_running = True
            run_started = self.sim.now
            victims_before = self.gc_stats.victims_erased
            copied_before = self.gc_stats.pages_copied
            self.gc_stats.start_run(self.sim.now)
            active: list = []
            while True:
                # Keep the victim pipeline full while below the stop mark.
                while (
                    len(active) < self.gc_window
                    and not self.gc_policy.should_stop(self.ftl.free_fraction)
                ):
                    victim = self.ftl.pick_victim(exclude=self._gc_inflight_blocks)
                    if victim is None:
                        break
                    self._gc_inflight_blocks.add(victim.block_id)
                    active.append(self.sim.process(self._gc_victim(victim)))
                if not active:
                    break
                yield self.sim.any_of(active)
                active = [p for p in active if p.is_alive]
            self.gc_stats.end_run(self.sim.now)
            if self.tracer.enabled:
                self.tracer.span(
                    "gc", "gc.run", run_started, self.sim.now, track="gc",
                    victims=self.gc_stats.victims_erased - victims_before,
                    pages_copied=self.gc_stats.pages_copied - copied_before,
                )
            self._gc_running = False

    def _gc_victim(self, victim) -> Generator:
        """Relocate one victim's valid pages, then erase and recycle it."""
        started = self.sim.now
        try:
            copies = []
            for slot in range(self.ftl.pages_per_block):
                new_physical = self.ftl.relocate(victim, slot)
                if new_physical is None:
                    continue
                copies.append(
                    self.sim.process(
                        self._gc_copy(victim.die, self.ftl.die_of_physical(new_physical))
                    )
                )
            if copies:
                yield self.sim.all_of(copies)
                self.gc_stats.pages_copied += len(copies)
                self._gc_copy_counter.inc(len(copies))
            yield self.sim.process(
                self.backend.erase_block(
                    victim.die, priority=self.gc_priority, label="gc.erase"
                )
            )
            self.ftl.erase(victim)
            self.gc_stats.victims_erased += 1
            self._gc_victim_counter.inc()
            if self.tracer.enabled:
                self.tracer.span("gc", "gc.victim", started, self.sim.now,
                                 track="gc", die=victim.die,
                                 pages_copied=len(copies))
            self._space_freed.succeed()
            self._space_freed = self.sim.event()
        finally:
            self._gc_inflight_blocks.discard(victim.block_id)

    def _gc_copy(self, src_die: int, dst_die: int) -> Generator:
        yield from self.backend.read_page(src_die, priority=self.gc_priority,
                                          label="gc.read")
        yield from self.backend.program_page(dst_die, priority=self.gc_priority,
                                             label="gc.program")
