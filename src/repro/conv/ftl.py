"""Page-mapped FTL for the conventional (block-interface) SSD model.

This is the substrate that makes the §III-F comparison meaningful: unlike
ZNS — where the host controls reclamation via ``reset`` — a conventional
SSD hides flash erase-before-write behind a logical-to-physical page map
and reclaims space with device-internal garbage collection.

Structure:

* the logical space is ``(1 - overprovision)`` of the raw flash capacity,
* each die keeps a pool of free blocks, one *user* active block and one
  *GC* active block (separated write streams),
* writes allocate the next slot of the user active block on a
  round-robin die cursor, remap the logical page, and invalidate the old
  physical page,
* GC picks greedy victims (fewest valid pages), relocates the survivors,
  and erases.

The FTL is pure bookkeeping (no simulated time); the device model drives
the matching NAND operations through the shared flash backend.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..flash.geometry import FlashGeometry

__all__ = ["Block", "PageMappedFtl", "FtlFullError"]


class FtlFullError(RuntimeError):
    """Raised when an allocation finds no free block anywhere."""


class Block:
    """One erase block: slot→logical back-map and validity accounting."""

    __slots__ = ("block_id", "die", "slot_to_logical", "write_slot", "valid_count")

    def __init__(self, block_id: int, die: int, pages_per_block: int):
        self.block_id = block_id
        self.die = die
        self.slot_to_logical = [-1] * pages_per_block
        self.write_slot = 0
        self.valid_count = 0

    @property
    def is_full(self) -> bool:
        return self.write_slot >= len(self.slot_to_logical)

    def garbage_pages(self) -> int:
        return self.write_slot - self.valid_count


class PageMappedFtl:
    """Logical→physical page mapping with per-die block pools."""

    def __init__(self, geometry: FlashGeometry, overprovision: float = 0.07,
                 spare_blocks_per_die: int = 0):
        if not 0 <= overprovision < 1:
            raise ValueError(f"overprovision must be in [0, 1), got {overprovision}")
        self.geometry = geometry
        self.overprovision = overprovision
        self.pages_per_block = geometry.pages_per_block
        self.logical_pages = int(geometry.total_pages * (1 - overprovision))
        if self.logical_pages <= 0:
            raise ValueError("geometry too small for any logical capacity")
        self._l2p: dict[int, int] = {}
        blocks_per_die = geometry.planes_per_die * geometry.blocks_per_plane
        if not 0 <= spare_blocks_per_die < blocks_per_die:
            raise ValueError(
                f"spare_blocks_per_die must be in [0, {blocks_per_die}), "
                f"got {spare_blocks_per_die}")
        self.blocks: list[Block] = []
        self._free: list[deque[int]] = [deque() for _ in range(geometry.total_dies)]
        #: Bad-block management (DESIGN.md §17): factory spares held out
        #: of circulation until an erase failure retires a block, plus
        #: the retired set and the replacement blocks promoted from the
        #: spare pool (accesses to those pay the remap indirection).
        self._spare: list[deque[int]] = [deque() for _ in range(geometry.total_dies)]
        self.bad_blocks: set[int] = set()
        self.remapped_blocks: set[int] = set()
        for die in range(geometry.total_dies):
            for b in range(blocks_per_die):
                block_id = die * blocks_per_die + b
                self.blocks.append(Block(block_id, die, self.pages_per_block))
                if b >= blocks_per_die - spare_blocks_per_die:
                    self._spare[die].append(block_id)
                else:
                    self._free[die].append(block_id)
        self._user_active: list[Optional[Block]] = [None] * geometry.total_dies
        self._gc_active: list[Optional[Block]] = [None] * geometry.total_dies
        self._die_cursor = 0
        self.free_block_count = (
            geometry.total_blocks - spare_blocks_per_die * geometry.total_dies
        )
        self.total_user_pages_written = 0
        self.total_gc_pages_copied = 0

    # -- introspection -----------------------------------------------------
    @property
    def free_fraction(self) -> float:
        return self.free_block_count / self.geometry.total_blocks

    def mapped_pages(self) -> int:
        return len(self._l2p)

    def write_amplification(self) -> float:
        """Cumulative WA = (user + GC copies) / user pages."""
        if self.total_user_pages_written == 0:
            return 1.0
        return (
            self.total_user_pages_written + self.total_gc_pages_copied
        ) / self.total_user_pages_written

    def lookup(self, logical_page: int) -> Optional[int]:
        """Physical page id of a logical page, or None if unmapped."""
        self._check_logical(logical_page)
        return self._l2p.get(logical_page)

    def die_of_physical(self, physical_page: int) -> int:
        return self.blocks[physical_page // self.pages_per_block].die

    def block_of_physical(self, physical_page: int) -> int:
        return physical_page // self.pages_per_block

    def is_remapped(self, physical_page: int) -> bool:
        """True if the page lives on a spare promoted after a bad block
        (accesses pay the firmware's remap-table indirection)."""
        return physical_page // self.pages_per_block in self.remapped_blocks

    def spare_blocks_left(self, die: int) -> int:
        return len(self._spare[die])

    # -- writes --------------------------------------------------------------
    def commit_write(self, logical_page: int, reserve: int = 0) -> int:
        """Remap a logical page to a fresh slot; returns the physical page.

        Invalidates the previous physical location (the flash "overwrite
        illusion"). The caller is responsible for simulating the program
        operation on the returned page's die.

        ``reserve`` free blocks are kept untouchable by this (user-path)
        allocation so garbage collection always has relocation
        destinations; :class:`FtlFullError` signals the caller to wait
        for GC rather than a corrupted state.
        """
        self._check_logical(logical_page)
        physical = self._allocate(self._user_active, logical_page, reserve)
        old = self._l2p.get(logical_page)
        if old is not None:
            self._invalidate_physical(old)
        self._l2p[logical_page] = physical
        self.total_user_pages_written += 1
        return physical

    def trim(self, logical_page: int) -> bool:
        """Unmap a logical page (NVMe deallocate); True if it was mapped."""
        self._check_logical(logical_page)
        old = self._l2p.pop(logical_page, None)
        if old is None:
            return False
        self._invalidate_physical(old)
        return True

    # -- garbage collection ----------------------------------------------------
    def pick_victim(self, exclude: Optional[set[int]] = None) -> Optional[Block]:
        """Greedy victim: the full, non-active block with fewest valid pages.

        ``exclude`` skips blocks already being collected (lets a pipelined
        GC pick several victims concurrently).
        """
        # A full block no longer accepts writes, so it is collectable even
        # while still referenced as a stream's most-recent active block.
        active = {
            b.block_id
            for b in (*self._user_active, *self._gc_active)
            if b is not None and not b.is_full
        }
        if exclude:
            active |= exclude
        best: Optional[Block] = None
        for block in self.blocks:
            if block.block_id in active or not block.is_full:
                continue
            if block.block_id in self.bad_blocks:
                continue
            if block.garbage_pages() == 0 and block.valid_count > 0:
                # Fully valid blocks yield nothing; skip unless no choice.
                continue
            if best is None or block.valid_count < best.valid_count:
                best = block
                if best.valid_count == 0:
                    break
        return best

    def relocate(self, victim: Block, slot: int) -> Optional[int]:
        """Move one valid page out of a victim; returns the new physical page.

        Returns None when the slot holds no valid page. The caller
        simulates the read (victim die) + program (returned page's die).
        """
        logical = victim.slot_to_logical[slot]
        if logical < 0:
            return None
        physical = victim.block_id * self.pages_per_block + slot
        if self._l2p.get(logical) != physical:
            return None  # stale: overwritten since GC scanned
        self._invalidate_physical(physical)
        new_physical = self._allocate(self._gc_active, logical)
        self._l2p[logical] = new_physical
        self.total_gc_pages_copied += 1
        return new_physical

    def erase(self, victim: Block) -> None:
        """Recycle a victim block (caller simulates the NAND erase)."""
        if victim.valid_count != 0:
            raise ValueError(
                f"erasing block {victim.block_id} with {victim.valid_count} valid pages"
            )
        victim.slot_to_logical = [-1] * self.pages_per_block
        victim.write_slot = 0
        self._free[victim.die].append(victim.block_id)
        self.free_block_count += 1

    def retire_block(self, victim: Block) -> Optional[Block]:
        """Bad-block management: pull a failed-erase victim out of
        circulation and promote a factory spare in its place.

        The victim must be collected (no valid pages). Returns the
        promoted spare ``Block`` — flagged in ``remapped_blocks`` so the
        device charges the remap-table indirection on later accesses —
        or ``None`` when the die's spare pool is exhausted (the die
        simply shrinks: one fewer block in rotation).
        """
        if victim.valid_count != 0:
            raise ValueError(
                f"retiring block {victim.block_id} with "
                f"{victim.valid_count} valid pages"
            )
        self.bad_blocks.add(victim.block_id)
        victim.slot_to_logical = [-1] * self.pages_per_block
        victim.write_slot = self.pages_per_block  # full forever: never allocated
        spares = self._spare[victim.die]
        if not spares:
            return None
        spare_id = spares.popleft()
        self.remapped_blocks.add(spare_id)
        self._free[victim.die].append(spare_id)
        self.free_block_count += 1
        return self.blocks[spare_id]

    # -- internals ----------------------------------------------------------
    def _check_logical(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.logical_pages:
            raise ValueError(
                f"logical page {logical_page} out of range [0, {self.logical_pages})"
            )

    def _invalidate_physical(self, physical: int) -> None:
        block = self.blocks[physical // self.pages_per_block]
        slot = physical % self.pages_per_block
        if block.slot_to_logical[slot] < 0:
            raise ValueError(f"double invalidate of physical page {physical}")
        block.slot_to_logical[slot] = -1
        block.valid_count -= 1

    def _allocate(self, active_set: list[Optional[Block]], logical: int,
                  reserve: int = 0) -> int:
        dies = self.geometry.total_dies
        for _ in range(dies):
            die = self._die_cursor
            self._die_cursor = (self._die_cursor + 1) % dies
            block = active_set[die]
            if block is None or block.is_full:
                if self.free_block_count <= reserve:
                    continue  # don't eat into the GC reserve
                block = self._take_free_block(die)
                if block is None:
                    continue
                active_set[die] = block
            slot = block.write_slot
            block.write_slot += 1
            block.slot_to_logical[slot] = logical
            block.valid_count += 1
            return block.block_id * self.pages_per_block + slot
        raise FtlFullError("no allocatable block outside the GC reserve")

    def _take_free_block(self, die: int) -> Optional[Block]:
        if not self._free[die]:
            return None
        block_id = self._free[die].popleft()
        self.free_block_count -= 1
        return self.blocks[block_id]
