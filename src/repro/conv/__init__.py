"""Conventional (block-interface) SSD: page-mapped FTL + greedy GC."""

from .device import ConvDevice
from .ftl import Block, FtlFullError, PageMappedFtl
from .gc import GcPolicy, GcStats

__all__ = ["Block", "ConvDevice", "FtlFullError", "GcPolicy", "GcStats", "PageMappedFtl"]
