"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``env``          print the simulated testbed configuration (Table II)
``run``          run paper experiments and print their tables; ``--trace``
                 / ``--trace-perfetto`` / ``--metrics`` record and export
                 command-lifecycle observability data
``profile``      run one experiment traced and print the per-layer
                 simulated-time breakdown (``--self`` for a built-in
                 smoke workload)
``observations`` run the experiments needed for the 13 observations and
                 report which reproduce (Table I)
``fidelity``     run the §IV emulator-fidelity matrix
``list``         list available experiment ids
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .core import ExperimentConfig, check_all, run_experiments, table1, table2
from .core.report import EXPERIMENT_RUNNERS
from .obs import MetricsRegistry, Tracer
from .sim.engine import ms


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(seed=args.seed)
    if args.fast:
        config = ExperimentConfig(
            seed=args.seed,
            point_runtime_ns=ms(3),
            ramp_ns=ms(0.5),
            zones_per_level=5,
            interference_reset_zones=12,
            interference_runtime_ns=ms(600),
        )
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the CLUSTER'23 ZNS characterization paper "
                    "on a simulated device.",
    )
    parser.add_argument("--seed", type=int, default=0x5EED,
                        help="root seed for all random streams")
    parser.add_argument("--fast", action="store_true",
                        help="reduced statistical scale (quick look)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply experiment durations/sweeps")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("env", help="print the simulated environment (Table II)")
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run experiments, print tables")
    run_parser.add_argument("ids", nargs="*",
                            help="experiment ids (default: all; see 'list')")
    run_parser.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes for the sweep points "
                                 "(default 1 = in-process; output is "
                                 "byte-identical at any job count)")
    run_parser.add_argument("--cache", metavar="DIR", default=".repro_cache",
                            help="point-result cache directory (default "
                                 "%(default)s); doubles as a checkpoint "
                                 "for interrupted sweeps")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="recompute every point; neither read nor "
                                 "write the cache")
    run_parser.add_argument("--trace", metavar="PATH",
                            help="record command-lifecycle spans to a "
                                 "JSON-lines file (ns timestamps); forces "
                                 "a serial in-process run")
    run_parser.add_argument("--trace-perfetto", metavar="PATH",
                            help="also export the Chrome trace_event JSON "
                                 "(loadable in Perfetto / chrome://tracing)")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the metrics-registry table after "
                                 "the run")
    profile_parser = sub.add_parser(
        "profile", help="trace one experiment, print per-layer breakdown")
    profile_parser.add_argument("experiment", nargs="?",
                                help="experiment id (see 'list')")
    profile_parser.add_argument("--self", dest="self_profile",
                                action="store_true",
                                help="profile a built-in smoke workload "
                                     "instead of an experiment")
    profile_parser.add_argument("--trace", metavar="PATH",
                                help="also write the JSON-lines trace")
    profile_parser.add_argument("--points", action="store_true",
                                help="report per-point wall-clock instead "
                                     "of the simulated-time breakdown")
    profile_parser.add_argument("--jobs", "-j", type=int, default=1,
                                help="worker processes for --points")
    obs_parser = sub.add_parser(
        "observations", help="evaluate the 13 observations (Table I)")
    obs_parser.add_argument(
        "--skip-interference", action="store_true",
        help="skip the minutes-long fig6/obs11/fig7 experiments")
    sub.add_parser("fidelity", help="run the emulator-fidelity matrix (§IV)")

    args = parser.parse_args(argv)

    if args.command == "env":
        print(table2())
        return 0

    if args.command == "list":
        for exp_id in EXPERIMENT_RUNNERS():
            print(exp_id)
        return 0

    if args.command == "run":
        config = _config_from_args(args)
        tracer = Tracer() if (args.trace or args.trace_perfetto) else None
        metrics = MetricsRegistry() if args.metrics else None
        if tracer is not None or metrics is not None:
            config = dataclasses.replace(config, tracer=tracer, metrics=metrics)
        if tracer is not None:
            # Tracing records one in-process timeline; spans cannot be
            # merged across workers, so traced runs stay serial.
            if args.jobs != 1:
                print("[exec] --trace forces a serial in-process run; "
                      "ignoring --jobs", file=sys.stderr)
            run_experiments(args.ids or None, config, verbose=True)
        else:
            from .exec import execute_experiments

            results, _report = execute_experiments(
                args.ids or None, config, jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache,
                progress=lambda message: print(message, file=sys.stderr),
            )
            for result in results.values():
                print(result.table())
                print()
        if tracer is not None:
            if args.trace:
                count = tracer.write_jsonl(args.trace)
                print(f"[trace] {count} events -> {args.trace}")
            if args.trace_perfetto:
                count = tracer.write_chrome_trace(args.trace_perfetto)
                print(f"[trace] {count} trace_event records -> "
                      f"{args.trace_perfetto}")
        if metrics is not None:
            print()
            print(metrics.table())
        return 0

    if args.command == "profile":
        from .obs.profile import profile_experiment, run_self_profile

        if args.points:
            if not args.experiment:
                profile_parser.error("--points needs an experiment id")
            from .exec import execute_experiments

            config = _config_from_args(args)
            _results, report = execute_experiments(
                [args.experiment], config, jobs=args.jobs,
                progress=lambda message: print(message, file=sys.stderr),
            )
            print(f"[profile] experiment {args.experiment} (wall clock)")
            print(report.table())
            return 0
        if args.self_profile:
            tracer, breakdown = run_self_profile()
            print("[profile] built-in smoke workload (zn540_small)")
        elif args.experiment:
            config = _config_from_args(args)
            tracer, breakdown, _result = profile_experiment(
                args.experiment, config)
            print(f"[profile] experiment {args.experiment}")
        else:
            profile_parser.error("give an experiment id or --self")
        print(breakdown.table())
        if args.trace:
            count = tracer.write_jsonl(args.trace)
            print(f"[trace] {count} events -> {args.trace}")
        return 0

    if args.command == "observations":
        config = _config_from_args(args)
        # The experiments the 13 observations consume (fig8 and the
        # ablations are not observation inputs).
        ids = ["fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c",
               "obs9", "fig5a", "fig5b", "fig6", "obs11", "fig7"]
        if args.skip_interference:
            for heavy in ("fig6", "obs11", "fig7"):
                ids.remove(heavy)
        results = run_experiments(ids, config, verbose=False)
        checks = check_all(results)
        for check in checks:
            print(check)
        print()
        print(table1(checks))
        return 0 if all(c.passed for c in checks) else 1

    if args.command == "fidelity":
        from .emulators import run_fidelity_matrix

        print(run_fidelity_matrix().table())
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
