"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``env``          print the simulated testbed configuration (Table II)
``run``          run paper experiments and print their tables; ``--trace``
                 / ``--trace-perfetto`` / ``--metrics`` record and export
                 command-lifecycle observability data; ``--telemetry``
                 samples windowed timeseries and persists a run
                 directory (``--run-dir``) for ``repro report``
``report``       render a run directory written by ``run --telemetry``
                 into a self-contained HTML dashboard (tables + inline
                 SVG sparklines, no external assets)
``profile``      run one experiment traced and print the per-layer
                 simulated-time breakdown (``--self`` for a built-in
                 smoke workload)
``observations`` run the experiments needed for the 13 observations and
                 report which reproduce (Table I); points fan out over
                 ``--jobs`` workers and replay from ``--cache``
``fidelity``     run the §IV emulator-fidelity matrix (one point per
                 latency model, through the same ``--jobs``/``--cache``
                 engine)
``bench``        benchmark the suite: per-experiment wall clock and
                 simulated events/sec, written to ``BENCH_sim.json``;
                 ``--reps`` adds rep-to-rep variance, ``--baseline``
                 turns it into a perf regression gate
``cache``        manage the point-result cache (``cache prune`` deletes
                 entries orphaned by code changes)
``faults``       inspect fault-injection profiles (``faults list`` shows
                 the built-in presets accepted by ``run --faults``)
``list``         list available experiment ids
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from .core import ExperimentConfig, run_experiments, table1, table2
from .core.report import EXPERIMENT_RUNNERS
from .obs import MetricsRegistry, Tracer
from .obs.telemetry import DEFAULT_INTERVAL_US
from .sim.engine import ms


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(seed=args.seed)
    if args.fast:
        config = ExperimentConfig(
            seed=args.seed,
            point_runtime_ns=ms(3),
            ramp_ns=ms(0.5),
            zones_per_level=5,
            interference_reset_zones=12,
            interference_runtime_ns=ms(600),
        )
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    if getattr(args, "faults", None):
        config = dataclasses.replace(config, faults=args.faults)
    if getattr(args, "stack", None):
        config = dataclasses.replace(config, stacks=tuple(args.stack))
    if getattr(args, "tenants", None):
        config = dataclasses.replace(config, fleet_tenants=args.tenants)
    return config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the CLUSTER'23 ZNS characterization paper "
                    "on a simulated device.",
    )
    parser.add_argument("--seed", type=int, default=0x5EED,
                        help="root seed for all random streams")
    parser.add_argument("--fast", action="store_true",
                        help="reduced statistical scale (quick look)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply experiment durations/sweeps")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("env", help="print the simulated environment (Table II)")
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run experiments, print tables")
    run_parser.add_argument("ids", nargs="*",
                            help="experiment ids (default: all; see 'list')")
    run_parser.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes for the sweep points "
                                 "(default 1 = in-process; output is "
                                 "byte-identical at any job count)")
    run_parser.add_argument("--cache", metavar="DIR", default=".repro_cache",
                            help="point-result cache directory (default "
                                 "%(default)s); doubles as a checkpoint "
                                 "for interrupted sweeps")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="recompute every point; neither read nor "
                                 "write the cache")
    run_parser.add_argument("--trace", metavar="PATH",
                            help="record command-lifecycle spans to a "
                                 "JSON-lines file (ns timestamps); forces "
                                 "a serial in-process run")
    run_parser.add_argument("--trace-perfetto", metavar="PATH",
                            help="also export the Chrome trace_event JSON "
                                 "(loadable in Perfetto / chrome://tracing)")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the metrics-registry table after "
                                 "the run")
    run_parser.add_argument("--stack", metavar="NAME", action="append",
                            default=None,
                            help="restrict the stack-comparison sweeps "
                                 "(fig2a/fig2b) to this stack; repeatable. "
                                 "Choices: spdk, thrpool, iouring-none, "
                                 "iouring-mq-deadline")
    run_parser.add_argument("--faults", metavar="SPEC", default=None,
                            help="inject faults: a preset name (see "
                                 "'faults list') or a JSON profile path; "
                                 "deterministic under --seed and --jobs")
    run_parser.add_argument("--tenants", metavar="N", type=int, default=None,
                            help="serving tenants sharing the fig7_fleet "
                                 "device (default 3); flows through cache "
                                 "keys like every other config knob")
    run_parser.add_argument("--telemetry", metavar="US", nargs="?",
                            type=float, const=DEFAULT_INTERVAL_US,
                            default=None,
                            help="sample windowed telemetry every US "
                                 "simulated microseconds (default "
                                 f"{DEFAULT_INTERVAL_US:g}) and persist a "
                                 "run directory; timeseries are "
                                 "byte-identical at any --jobs")
    run_parser.add_argument("--run-dir", metavar="DIR", default=None,
                            help="run-directory path (default "
                                 "runs/<timestamp> when --telemetry is "
                                 "on); view with 'repro report DIR'")
    report_parser = sub.add_parser(
        "report", help="render a run directory to a self-contained "
                       "HTML dashboard")
    report_parser.add_argument("run_dir",
                               help="directory written by run --telemetry")
    report_parser.add_argument("--output", "-o", metavar="PATH",
                               default=None,
                               help="output HTML path (default "
                                    "<run_dir>/report.html; '-' prints "
                                    "to stdout)")
    profile_parser = sub.add_parser(
        "profile", help="trace one experiment, print per-layer breakdown")
    profile_parser.add_argument("experiment", nargs="?",
                                help="experiment id (see 'list')")
    profile_parser.add_argument("--self", dest="self_profile",
                                action="store_true",
                                help="profile a built-in smoke workload "
                                     "instead of an experiment")
    profile_parser.add_argument("--trace", metavar="PATH",
                                help="also write the JSON-lines trace")
    profile_parser.add_argument("--points", action="store_true",
                                help="report per-point wall-clock instead "
                                     "of the simulated-time breakdown")
    profile_parser.add_argument("--jobs", "-j", type=int, default=1,
                                help="worker processes for --points")
    profile_parser.add_argument("--by-layer", action="store_true",
                                help="with --self: also attribute Python "
                                     "compute time to code layers "
                                     "(core-pipeline vs model-specific)")
    obs_parser = sub.add_parser(
        "observations", help="evaluate the 13 observations (Table I)")
    obs_parser.add_argument(
        "--skip-interference", action="store_true",
        help="skip the minutes-long fig6/obs11/fig7 experiments")
    obs_parser.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes for the sweep points "
                                 "(default 1 = in-process; checks are "
                                 "identical at any job count)")
    obs_parser.add_argument("--cache", metavar="DIR", default=".repro_cache",
                            help="point-result cache directory (default "
                                 "%(default)s)")
    obs_parser.add_argument("--no-cache", action="store_true",
                            help="recompute every point; neither read nor "
                                 "write the cache")
    fidelity_parser = sub.add_parser(
        "fidelity", help="run the emulator-fidelity matrix (§IV)")
    fidelity_parser.add_argument("--jobs", "-j", type=int, default=1,
                                 help="worker processes (one point per "
                                      "latency model; default 1)")
    fidelity_parser.add_argument("--cache", metavar="DIR",
                                 default=".repro_cache",
                                 help="point-result cache directory "
                                      "(default %(default)s)")
    fidelity_parser.add_argument("--no-cache", action="store_true",
                                 help="recompute every model probe")
    bench_parser = sub.add_parser(
        "bench", help="benchmark the suite, write BENCH_sim.json")
    bench_parser.add_argument("ids", nargs="*",
                              help="experiment ids (default: all)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI smoke mode: the cheap sweep subset "
                                   "at --fast scale")
    bench_parser.add_argument("--jobs", "-j", type=int, default=1,
                              help="worker processes (default 1)")
    bench_parser.add_argument("--reps", type=int, default=1,
                              help="benchmark repetitions; > 1 records "
                                   "rep-to-rep stdev of wall seconds and "
                                   "events/sec (and disables the cache so "
                                   "every rep carries timing signal)")
    bench_parser.add_argument("--output", "-o", metavar="PATH",
                              default="BENCH_sim.json",
                              help="where to write the benchmark JSON "
                                   "(default %(default)s; '-' skips)")
    bench_parser.add_argument("--cache", metavar="DIR", default=None,
                              help="serve points from this cache (default: "
                                   "no cache — benchmark everything fresh)")
    bench_parser.add_argument("--baseline", metavar="PATH",
                              help="compare against a previous BENCH_sim.json "
                                   "and fail on regression")
    bench_parser.add_argument("--max-regression", type=float, default=0.20,
                              metavar="FRACTION",
                              help="allowed aggregate events/sec drop vs "
                                   "the baseline, and the per-experiment "
                                   "floor allowance (default %(default)s)")
    bench_parser.add_argument("--stdev-k", type=float, default=6.0,
                              metavar="K",
                              help="per-experiment gates fail below "
                                   "baseline mean - K x recorded stdev "
                                   "(recorded reps; default %(default)s)")
    cache_parser = sub.add_parser(
        "cache", help="manage the point-result cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    prune_parser = cache_sub.add_parser(
        "prune", help="delete cache entries from older code versions")
    prune_parser.add_argument("--cache", metavar="DIR",
                              default=".repro_cache",
                              help="cache directory (default %(default)s)")
    prune_parser.add_argument("--dry-run", action="store_true",
                              help="report what would be deleted, delete "
                                   "nothing")
    faults_parser = sub.add_parser(
        "faults", help="inspect fault-injection profiles")
    faults_sub = faults_parser.add_subparsers(dest="faults_command",
                                              required=True)
    faults_sub.add_parser(
        "list", help="list the built-in fault presets (for run --faults)")

    args = parser.parse_args(argv)

    if args.command == "env":
        print(table2())
        return 0

    if args.command == "list":
        for exp_id in EXPERIMENT_RUNNERS():
            print(exp_id)
        return 0

    if args.command == "run":
        config = _config_from_args(args)
        if config.stacks is not None:
            from .core.experiments.common import STACKS

            unknown = [name for name in config.stacks if name not in STACKS]
            if unknown:
                run_parser.error(
                    f"unknown stack(s) {', '.join(unknown)} "
                    f"(choose from {', '.join(STACKS)})"
                )
        if config.faults is not None:
            from .faults.plan import FaultPlanError, resolve

            try:
                plan = resolve(config.faults)
            except FaultPlanError as exc:
                run_parser.error(str(exc))
            if plan is not None:
                print(f"[faults] profile {plan.name!r} active "
                      "(deterministic under --seed)", file=sys.stderr)
        tracer = Tracer() if (args.trace or args.trace_perfetto) else None
        metrics = MetricsRegistry() if args.metrics else None
        if tracer is not None or metrics is not None:
            config = dataclasses.replace(config, tracer=tracer, metrics=metrics)
        telemetry_us = args.telemetry
        if telemetry_us is not None:
            if tracer is not None:
                run_parser.error("--telemetry cannot be combined with "
                                 "--trace (traced runs bypass the "
                                 "execution engine)")
            if telemetry_us <= 0:
                run_parser.error("--telemetry interval must be > 0 µs")
            config = dataclasses.replace(
                config, telemetry_interval_ns=int(telemetry_us * 1000))
        if tracer is not None:
            # Tracing records one in-process timeline; spans cannot be
            # merged across workers, so traced runs stay serial.
            if args.jobs != 1:
                print("[exec] --trace forces a serial in-process run; "
                      "ignoring --jobs", file=sys.stderr)
            run_experiments(args.ids or None, config, verbose=True)
        else:
            from .exec import execute_experiments

            results, report = execute_experiments(
                args.ids or None, config, jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache,
                progress=lambda message: print(message, file=sys.stderr),
            )
            for result in results.values():
                print(result.table())
                print()
            if args.run_dir is not None or telemetry_us is not None:
                import time

                from .obs.report import write_run

                run_dir = args.run_dir or time.strftime("runs/%Y%m%d-%H%M%S")
                manifest = {
                    "ids": sorted(results),
                    "seed": args.seed,
                    "fast": args.fast,
                    "scale": args.scale,
                    "faults": config.faults,
                    "interval_us": telemetry_us,
                    "jobs": args.jobs,
                    "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                }
                paths = write_run(run_dir, results, report, manifest)
                print(f"[run] wrote {len(paths)} artifacts -> {run_dir} "
                      f"(view: repro report {run_dir})", file=sys.stderr)
        if tracer is not None:
            if args.trace:
                count = tracer.write_jsonl(args.trace)
                print(f"[trace] {count} events -> {args.trace}")
            if args.trace_perfetto:
                count = tracer.write_chrome_trace(args.trace_perfetto)
                print(f"[trace] {count} trace_event records -> "
                      f"{args.trace_perfetto}")
        if metrics is not None:
            print()
            print(metrics.table())
        return 0

    if args.command == "report":
        from .obs.report import load_run, render_html

        try:
            run = load_run(args.run_dir)
        except (FileNotFoundError, ValueError) as exc:
            report_parser.error(str(exc))
        page = render_html(run)
        if args.output == "-":
            sys.stdout.write(page)
            return 0
        out_path = args.output or os.path.join(args.run_dir, "report.html")
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(page)
        segments = sum(len(v) for v in run["telemetry"].values())
        print(f"[report] {len(run['results'])} experiments, "
              f"{segments} telemetry segments -> {out_path}")
        return 0

    if args.command == "profile":
        from .obs.profile import profile_experiment, run_self_profile

        if args.by_layer and not args.self_profile:
            profile_parser.error("--by-layer needs --self")
        if args.points:
            if not args.experiment:
                profile_parser.error("--points needs an experiment id")
            from .exec import execute_experiments

            config = _config_from_args(args)
            _results, report = execute_experiments(
                [args.experiment], config, jobs=args.jobs,
                progress=lambda message: print(message, file=sys.stderr),
            )
            print(f"[profile] experiment {args.experiment} (wall clock)")
            print(report.table())
            return 0
        if args.self_profile:
            import time

            from .sim.engine import events_total

            events_before = events_total()
            wall_started = time.perf_counter()
            tracer, breakdown = run_self_profile()
            wall_s = time.perf_counter() - wall_started
            events = events_total() - events_before
            print("[profile] built-in smoke workload (zn540_small)")
            print(f"[profile] {events} events in {wall_s * 1e3:.1f} ms "
                  f"({events / wall_s:,.0f} events/sec)")
            if args.by_layer:
                from .obs.profile import run_self_profile_by_layer

                _shares, layer_table = run_self_profile_by_layer()
                print(breakdown.table())
                print()
                print(layer_table)
                if args.trace:
                    count = tracer.write_jsonl(args.trace)
                    print(f"[trace] {count} events -> {args.trace}")
                return 0
        elif args.experiment:
            config = _config_from_args(args)
            tracer, breakdown, _result = profile_experiment(
                args.experiment, config)
            print(f"[profile] experiment {args.experiment}")
        else:
            profile_parser.error("give an experiment id or --self")
        print(breakdown.table())
        if args.trace:
            count = tracer.write_jsonl(args.trace)
            print(f"[trace] {count} events -> {args.trace}")
        return 0

    if args.command == "observations":
        from .core.observations import run_observation_suite

        config = _config_from_args(args)
        checks = run_observation_suite(
            config, jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache,
            skip_interference=args.skip_interference,
            progress=lambda message: print(message, file=sys.stderr),
        )
        for check in checks:
            print(check)
        print()
        print(table1(checks))
        return 0 if all(c.passed for c in checks) else 1

    if args.command == "fidelity":
        from .exec import execute_experiments

        config = _config_from_args(args)
        results, _report = execute_experiments(
            ["sec4"], config, jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(results["sec4"].table())
        return 0

    if args.command == "bench":
        import json

        from .exec import bench

        if args.quick:
            config = _config_from_args(
                argparse.Namespace(seed=args.seed, fast=True,
                                   scale=args.scale))
            ids = args.ids or bench.QUICK_IDS
        else:
            config = _config_from_args(args)
            ids = args.ids or None
        doc = bench.run_bench(
            ids, config, jobs=args.jobs, cache_dir=args.cache,
            reps=args.reps,
            progress=lambda message: print(message, file=sys.stderr),
        )
        baseline = bench.load(args.baseline) if args.baseline else None
        bench.render(doc, baseline)
        if args.output and args.output != "-":
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"[bench] wrote {args.output}")
        if baseline is not None:
            failures = bench.compare(doc, baseline, args.max_regression,
                                     stdev_k=args.stdev_k)
            for failure in failures:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(f"[bench] within baseline gates ({args.baseline}: "
                  f"aggregate {args.max_regression:.0%}, per-experiment "
                  f"mean - {args.stdev_k:g} x stdev)")
        return 0

    if args.command == "cache":
        from .exec.cache import ResultCache

        if args.cache_command == "prune":
            cache = ResultCache(args.cache)
            stale, kept = cache.prune(dry_run=args.dry_run)
            verb = "would delete" if args.dry_run else "deleted"
            print(f"[cache] {verb} {len(stale)} stale entr"
                  f"{'y' if len(stale) == 1 else 'ies'}, "
                  f"kept {kept} current ({args.cache})")
            if args.dry_run:
                for path in stale:
                    print(f"[cache]   {path}")
            return 0

    if args.command == "faults":
        from .faults.plan import describe_presets

        if args.faults_command == "list":
            pairs = describe_presets()
            width = max(len(name) for name, _ in pairs)
            for name, note in pairs:
                print(f"{name:<{width}}  {note}")
            print()
            print("Use with: repro run --faults <name>  (or a JSON "
                  "profile path; see DESIGN.md section 12)")
            return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
