"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``env``          print the simulated testbed configuration (Table II)
``run``          run paper experiments and print their tables
``observations`` run the experiments needed for the 13 observations and
                 report which reproduce (Table I)
``fidelity``     run the §IV emulator-fidelity matrix
``list``         list available experiment ids
"""

from __future__ import annotations

import argparse
import sys

from .core import ExperimentConfig, check_all, run_experiments, table1, table2
from .core.report import EXPERIMENT_RUNNERS
from .sim.engine import ms


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(seed=args.seed)
    if args.fast:
        config = ExperimentConfig(
            seed=args.seed,
            point_runtime_ns=ms(3),
            ramp_ns=ms(0.5),
            zones_per_level=5,
            interference_reset_zones=12,
            interference_runtime_ns=ms(600),
        )
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the CLUSTER'23 ZNS characterization paper "
                    "on a simulated device.",
    )
    parser.add_argument("--seed", type=int, default=0x5EED,
                        help="root seed for all random streams")
    parser.add_argument("--fast", action="store_true",
                        help="reduced statistical scale (quick look)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply experiment durations/sweeps")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("env", help="print the simulated environment (Table II)")
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run experiments, print tables")
    run_parser.add_argument("ids", nargs="*",
                            help="experiment ids (default: all; see 'list')")
    obs_parser = sub.add_parser(
        "observations", help="evaluate the 13 observations (Table I)")
    obs_parser.add_argument(
        "--skip-interference", action="store_true",
        help="skip the minutes-long fig6/obs11/fig7 experiments")
    sub.add_parser("fidelity", help="run the emulator-fidelity matrix (§IV)")

    args = parser.parse_args(argv)

    if args.command == "env":
        print(table2())
        return 0

    if args.command == "list":
        for exp_id in EXPERIMENT_RUNNERS():
            print(exp_id)
        return 0

    if args.command == "run":
        config = _config_from_args(args)
        run_experiments(args.ids or None, config, verbose=True)
        return 0

    if args.command == "observations":
        config = _config_from_args(args)
        # The experiments the 13 observations consume (fig8 and the
        # ablations are not observation inputs).
        ids = ["fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig4c",
               "obs9", "fig5a", "fig5b", "fig6", "obs11", "fig7"]
        if args.skip_interference:
            for heavy in ("fig6", "obs11", "fig7"):
                ids.remove(heavy)
        results = run_experiments(ids, config, verbose=False)
        checks = check_all(results)
        for check in checks:
            print(check)
        print()
        print(table1(checks))
        return 0 if all(c.passed for c in checks) else 1

    if args.command == "fidelity":
        from .emulators import run_fidelity_matrix

        print(run_fidelity_matrix().table())
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
