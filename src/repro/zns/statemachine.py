"""The zone manager: state transitions with open/active-limit enforcement.

All transition legality and resource-limit logic lives here, separate
from timing, so the state machine is testable (including with
property-based random operation sequences) without running a simulator.

Semantics follow the NVMe ZNS spec as the paper describes it:

* a write/append to an EMPTY or CLOSED zone *implicitly opens* it,
* open zones count against ``max_open``; open + closed count against
  ``max_active``,
* ``close`` on an open zone with an untouched write pointer returns it to
  EMPTY (nothing was written, so nothing stays active),
* ``finish`` moves any writable-lifecycle zone to FULL, recording how
  much capacity had to be padded (the pad size drives finish latency and
  the later reset cost, §III-E). Per the ZNS spec's Zone Finish
  semantics this includes EMPTY→FULL (the whole writable capacity is
  padded) and a FULL zone, where it is an idempotent no-op success —
  the same idempotency ``open`` and ``close`` already have,
* ``reset`` returns any writable-lifecycle zone to EMPTY (a reset of an
  already-EMPTY zone is a legal cheap no-op; Fig. 5a includes 0 %
  occupancy),
* opening a zone (implicitly by a write/append, or explicitly) while
  ``max_open`` zones are open *implicitly closes* the lowest-indexed
  implicitly-opened zone to free the slot (the controller-managed
  transition ZSIO→ZSC from the spec's resource-management rules, as
  Linux null_blk models it); only when every open slot is explicitly
  held does the command fail with TOO_MANY_OPEN_ZONES.
"""

from __future__ import annotations

from typing import Callable

from ..hostif.status import Status
from .spec import ACTIVE_STATES, OPEN_STATES, ZoneState
from .zone import Zone

__all__ = ["ZoneManager"]


class ZoneManager:
    """Owns all zones of a namespace and their state transitions."""

    def __init__(self, num_zones: int, size_lbas: int, cap_lbas: int,
                 max_open: int, max_active: int):
        if num_zones <= 0:
            raise ValueError(f"num_zones must be positive, got {num_zones}")
        if max_open <= 0 or max_active <= 0:
            raise ValueError("zone limits must be positive")
        if max_open > max_active:
            raise ValueError(
                f"max_open ({max_open}) cannot exceed max_active ({max_active})"
            )
        self.zones = [
            Zone(i, i * size_lbas, size_lbas, cap_lbas) for i in range(num_zones)
        ]
        self.size_lbas = size_lbas
        self.cap_lbas = cap_lbas
        self.max_open = max_open
        self.max_active = max_active
        self._open_count = 0
        self._active_count = 0
        #: Optional observer called as ``on_transition(zone, old, new)``
        #: after every state change. Pure observation: the device wires
        #: this to its tracer/metrics; the state machine itself stays
        #: simulator-free and the hook must not mutate zone state.
        self.on_transition: Callable[[Zone, ZoneState, ZoneState], None] | None = None

    # -- introspection -------------------------------------------------------
    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def open_count(self) -> int:
        return self._open_count

    @property
    def active_count(self) -> int:
        return self._active_count

    def zone_containing(self, lba: int) -> Zone | None:
        """The zone owning an LBA, or None when out of range."""
        index = lba // self.size_lbas
        if 0 <= index < len(self.zones):
            return self.zones[index]
        return None

    def zone_at_start(self, zslba: int) -> Zone | None:
        """The zone whose start LBA is exactly ``zslba`` (for zone cmds)."""
        zone = self.zone_containing(zslba)
        if zone is not None and zone.zslba == zslba:
            return zone
        return None

    def state_snapshot(self) -> list[tuple[str, int, int]]:
        """Portable image of the mutable per-zone state.

        One ``(state, wp, finished_pad_lbas)`` tuple per zone, in index
        order. Geometry (zslba/size/cap) is immutable and not captured.
        """
        return [(z.state.value, z.wp, z.finished_pad_lbas) for z in self.zones]

    def restore_state(self, snapshot: list[tuple[str, int, int]]) -> None:
        """Reinstate a :meth:`state_snapshot` image.

        A fixture, like :meth:`force_state`: states are assigned
        directly (``on_transition`` observers do not fire — restoring is
        not a simulated transition) and the open/active counters are
        recomputed from the restored states.
        """
        if len(snapshot) != len(self.zones):
            raise ValueError(
                f"snapshot covers {len(snapshot)} zones, "
                f"manager has {len(self.zones)}"
            )
        for zone, (state, wp, pad) in zip(self.zones, snapshot):
            zone.state = ZoneState(state)
            zone.wp = wp
            zone.finished_pad_lbas = pad
        self._open_count = sum(
            1 for z in self.zones if z.state in OPEN_STATES
        )
        self._active_count = sum(
            1 for z in self.zones if z.state in ACTIVE_STATES
        )
        self.check_invariants()

    def check_invariants(self) -> None:
        """Assert the counter/limit invariants (used by property tests)."""
        open_zones = sum(1 for z in self.zones if z.state in OPEN_STATES)
        active_zones = sum(1 for z in self.zones if z.state in ACTIVE_STATES)
        assert open_zones == self._open_count, "open-count drift"
        assert active_zones == self._active_count, "active-count drift"
        assert self._open_count <= self.max_open, "max_open violated"
        assert self._active_count <= self.max_active, "max_active violated"
        for zone in self.zones:
            assert zone.zslba <= zone.wp <= zone.writable_end, "wp out of range"
            if zone.state is ZoneState.EMPTY:
                assert zone.wp == zone.zslba, "EMPTY zone with advanced wp"
            if zone.state is ZoneState.FULL and zone.finished_pad_lbas == 0:
                assert zone.wp == zone.writable_end, "unpadded FULL zone not at cap"

    # -- state bookkeeping ---------------------------------------------------
    def _enter(self, zone: Zone, new_state: ZoneState) -> None:
        old = zone.state
        self._open_count += (new_state in OPEN_STATES) - (old in OPEN_STATES)
        self._active_count += (new_state in ACTIVE_STATES) - (old in ACTIVE_STATES)
        zone.state = new_state
        if self.on_transition is not None:
            self.on_transition(zone, old, new_state)

    # -- I/O admission ---------------------------------------------------------
    def admit_write(self, zone: Zone, slba: int, nlb: int) -> tuple[Status, bool]:
        """Validate a write and apply implicit transitions.

        Returns (status, implicitly_opened). On success the write pointer
        is advanced and the zone may become FULL.
        """
        state = zone.state
        if (state not in (ZoneState.FULL, ZoneState.READ_ONLY,
                          ZoneState.OFFLINE)
                and slba != zone.wp):
            # Checked before admission (QEMU's zns_check_zone_write
            # order): a misplaced write must not open the zone or evict
            # an implicit-open victim.
            return Status.ZONE_INVALID_WRITE, False
        status, opened = self._admit_common(zone, nlb)
        if not status.ok:
            return status, False
        self._advance(zone, nlb)
        return Status.SUCCESS, opened

    def admit_append(self, zone: Zone, zslba: int, nlb: int) -> tuple[Status, bool, int]:
        """Validate an append; returns (status, implicitly_opened, lba).

        The device assigns the target LBA (the current write pointer) —
        this is the defining semantics of the append operation.
        """
        if zslba != zone.zslba:
            return Status.INVALID_FIELD, False, -1
        status, opened = self._admit_common(zone, nlb)
        if not status.ok:
            return status, False, -1
        assigned = zone.wp
        self._advance(zone, nlb)
        return Status.SUCCESS, opened, assigned

    def _admit_common(self, zone: Zone, nlb: int) -> tuple[Status, bool]:
        state = zone.state
        if state is ZoneState.FULL:
            return Status.ZONE_IS_FULL, False
        if state is ZoneState.READ_ONLY:
            return Status.ZONE_IS_READ_ONLY, False
        if state is ZoneState.OFFLINE:
            return Status.ZONE_IS_OFFLINE, False
        if zone.wp + nlb > zone.writable_end:
            return Status.ZONE_BOUNDARY_ERROR, False
        opened = False
        if state in (ZoneState.EMPTY, ZoneState.CLOSED):
            status = self._can_open(zone)
            if not status.ok:
                return status, False
            self._enter(zone, ZoneState.IMPLICIT_OPEN)
            opened = True
        return Status.SUCCESS, opened

    def _advance(self, zone: Zone, nlb: int) -> None:
        zone.wp += nlb
        if zone.wp == zone.writable_end:
            self._enter(zone, ZoneState.FULL)

    def _can_open(self, zone: Zone) -> Status:
        needs_active = zone.state is ZoneState.EMPTY
        if needs_active and self._active_count >= self.max_active:
            return Status.TOO_MANY_ACTIVE_ZONES
        if self._open_count >= self.max_open and not self._implicitly_close_one():
            return Status.TOO_MANY_OPEN_ZONES
        return Status.SUCCESS

    def _implicitly_close_one(self) -> bool:
        """Free an open slot by closing an implicitly-opened zone.

        The spec's open-resource management rule: when a zone must be
        opened while ``max_open`` zones are open, the controller may
        transition an *implicitly* opened zone to CLOSED and proceed.
        The victim must be deterministic for reproducibility — like
        Linux null_blk we take the lowest zone index and apply the rule
        to explicit opens as well as write-triggered ones. A victim
        with an untouched write pointer returns to EMPTY (regular close
        semantics — nothing was written, nothing stays active).
        Explicitly-opened zones are never evicted: if every slot is
        held explicitly the caller gets TOO_MANY_OPEN_ZONES.
        """
        for zone in self.zones:
            if zone.state is ZoneState.IMPLICIT_OPEN:
                self._enter(zone, ZoneState.EMPTY if zone.wp == zone.zslba
                            else ZoneState.CLOSED)
                return True
        return False

    def force_state(self, zone: Zone, state: ZoneState) -> None:
        """Failure injection: push a zone into READ_ONLY or OFFLINE.

        Models media wear-out/failure (paper §II-A: limited P/E endurance
        and read disturbs cause zones to degrade). OFFLINE zones lose
        their data (write pointer becomes meaningless); READ_ONLY zones
        keep it. Counter accounting stays consistent.
        """
        if state not in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            raise ValueError(f"force_state only injects failures, not {state}")
        self._enter(zone, state)
        if state is ZoneState.OFFLINE:
            zone.wp = zone.zslba
            zone.finished_pad_lbas = 0

    # -- fault/recovery arcs -----------------------------------------------------
    def retire(self, zone: Zone, state: ZoneState) -> None:
        """Firmware wear retirement arc (DESIGN.md §12).

        Past the fault plan's program-failure threshold the firmware
        takes the zone out of the writable lifecycle: ``READ_ONLY``
        still serves reads, ``OFFLINE`` rejects everything (including
        reset) and loses its data. Same mechanics as the
        :meth:`force_state` fixture, but this is the *modeled* arc —
        ``on_transition`` observers see it like any other transition.
        """
        self.force_state(zone, state)

    def power_loss_rollback(self, zone: Zone, nlb: int) -> bool:
        """Power-loss recovery arc: rewind ``nlb`` unpersisted LBAs.

        On boot after a power cut, the firmware discards write-pointer
        advancement whose data never reached the media (the dropped
        write-buffer tail). A zone rewound to its start returns to
        EMPTY; a FULL zone whose tail was lost reopens as CLOSED — or,
        if the active-zone limit is already saturated, is torn down to
        EMPTY entirely (the firmware cannot exceed its own limits).
        Returns True when the zone was actually rolled back.
        """
        if nlb <= 0:
            return False
        if zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            return False
        if zone.finished_pad_lbas:
            # Finish padding is metadata, not buffered data; rewinding
            # through it is not modeled.
            return False
        old_state = zone.state
        zone.wp = max(zone.zslba, zone.wp - nlb)
        if zone.wp == zone.zslba:
            if old_state is not ZoneState.EMPTY:
                self._enter(zone, ZoneState.EMPTY)
        elif old_state is ZoneState.FULL:
            if self._active_count < self.max_active:
                self._enter(zone, ZoneState.CLOSED)
            else:
                zone.wp = zone.zslba
                self._enter(zone, ZoneState.EMPTY)
        # Open/closed zones keep their state with the rewound pointer.
        return True

    # -- explicit management ----------------------------------------------------
    def open(self, zone: Zone) -> Status:
        state = zone.state
        if state is ZoneState.EXPLICIT_OPEN:
            return Status.SUCCESS  # idempotent
        if state in (ZoneState.EMPTY, ZoneState.CLOSED, ZoneState.IMPLICIT_OPEN):
            if state is not ZoneState.IMPLICIT_OPEN:
                status = self._can_open(zone)
                if not status.ok:
                    return status
            self._enter(zone, ZoneState.EXPLICIT_OPEN)
            return Status.SUCCESS
        return Status.INVALID_ZONE_STATE_TRANSITION

    def close(self, zone: Zone) -> Status:
        state = zone.state
        if state is ZoneState.CLOSED:
            return Status.SUCCESS  # idempotent
        if state in (ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN):
            if zone.wp == zone.zslba:
                self._enter(zone, ZoneState.EMPTY)
            else:
                self._enter(zone, ZoneState.CLOSED)
            return Status.SUCCESS
        return Status.INVALID_ZONE_STATE_TRANSITION

    def finish(self, zone: Zone) -> tuple[Status, int]:
        """Finish a zone; returns (status, padded_lbas).

        Legal from every writable-lifecycle state: EMPTY pads the whole
        writable capacity, open/closed zones pad what remains, and a
        FULL zone is an idempotent no-op success (pad 0, the recorded
        pad untouched) — Zone Finish in the ZSF state completes
        successfully per the spec, like ``open``/``close`` idempotency.
        """
        state = zone.state
        if state is ZoneState.FULL:
            return Status.SUCCESS, 0
        if state in (ZoneState.EMPTY, ZoneState.IMPLICIT_OPEN,
                     ZoneState.EXPLICIT_OPEN, ZoneState.CLOSED):
            pad = zone.remaining_lbas
            zone.finished_pad_lbas = pad
            zone.wp = zone.writable_end
            self._enter(zone, ZoneState.FULL)
            return Status.SUCCESS, pad
        return Status.INVALID_ZONE_STATE_TRANSITION, 0

    def reset(self, zone: Zone) -> tuple[Status, int, int]:
        """Reset a zone; returns (status, occupied_lbas, padded_lbas).

        The returned occupancy/pad sizes existed *before* the reset and
        drive the latency model (reset cost grows with occupancy,
        Observation #10).
        """
        state = zone.state
        if state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            return Status.INVALID_ZONE_STATE_TRANSITION, 0, 0
        occupied = zone.occupancy_lbas - zone.finished_pad_lbas
        pad = zone.finished_pad_lbas
        zone.wp = zone.zslba
        zone.finished_pad_lbas = 0
        self._enter(zone, ZoneState.EMPTY)
        return Status.SUCCESS, occupied, pad
