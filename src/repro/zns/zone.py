"""A single zone: addressing, write pointer, and occupancy bookkeeping."""

from __future__ import annotations

from .spec import ZoneState

__all__ = ["Zone"]


class Zone:
    """One zone of a zoned namespace.

    Addresses are in LBAs. ``zslba`` is the zone start LBA; the zone spans
    ``size_lbas`` of address space of which only ``cap_lbas`` are writable
    (the ZN540 has 2,048 MiB zones with 1,077 MiB capacity). The write
    pointer ``wp`` is absolute and lives in ``[zslba, zslba + cap_lbas]``.
    """

    __slots__ = ("index", "zslba", "size_lbas", "cap_lbas", "state", "wp", "finished_pad_lbas")

    def __init__(self, index: int, zslba: int, size_lbas: int, cap_lbas: int):
        if cap_lbas <= 0 or size_lbas <= 0:
            raise ValueError("zone size and capacity must be positive")
        if cap_lbas > size_lbas:
            raise ValueError(
                f"zone capacity {cap_lbas} exceeds zone size {size_lbas}"
            )
        self.index = index
        self.zslba = zslba
        self.size_lbas = size_lbas
        self.cap_lbas = cap_lbas
        self.state = ZoneState.EMPTY
        self.wp = zslba
        #: LBAs the device marked (not wrote) when the zone was finished
        #: while partially full; affects later reset cost (§III-E).
        self.finished_pad_lbas = 0

    # -- derived -----------------------------------------------------------
    @property
    def occupancy_lbas(self) -> int:
        """Number of LBAs actually written (the paper's zone occupancy)."""
        return self.wp - self.zslba

    @property
    def occupancy_fraction(self) -> float:
        return self.occupancy_lbas / self.cap_lbas

    @property
    def remaining_lbas(self) -> int:
        return self.cap_lbas - self.occupancy_lbas

    @property
    def writable_end(self) -> int:
        """One past the last writable LBA."""
        return self.zslba + self.cap_lbas

    @property
    def end(self) -> int:
        """One past the last addressable LBA of the zone."""
        return self.zslba + self.size_lbas

    def contains(self, lba: int) -> bool:
        return self.zslba <= lba < self.end

    def io_within_capacity(self, slba: int, nlb: int) -> bool:
        """Whether [slba, slba+nlb) fits in the writable capacity."""
        return self.zslba <= slba and slba + nlb <= self.writable_end

    def __repr__(self) -> str:
        return (
            f"Zone(#{self.index}, state={self.state.value}, "
            f"wp={self.wp - self.zslba}/{self.cap_lbas})"
        )
