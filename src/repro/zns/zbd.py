"""A libzbd-style convenience wrapper around the simulated ZNS device.

The paper's artifact drives real hardware through libzbd / nvme-cli;
this wrapper offers the same ergonomics over the simulation: synchronous
byte-addressed calls that internally run the simulator until completion.
Ideal for tests, notebooks, and porting host software written against
zoned block devices.

All offsets/lengths are in **bytes** (like libzbd's ``zbd_pwrite``);
conversions to LBAs happen inside. Errors surface as
:class:`repro.hostif.StatusError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hostif.commands import Command, Completion, Opcode, ZoneAction
from ..hostif.status import StatusError
from .device import ZnsDevice
from .spec import ZoneState

__all__ = ["ZoneInfo", "ZonedBlockDevice"]


@dataclass(frozen=True)
class ZoneInfo:
    """One entry of a zone report (``zbd_report_zones`` equivalent)."""

    index: int
    start: int       # bytes
    length: int      # bytes (zone size)
    capacity: int    # bytes (writable)
    wp: int          # bytes (absolute write-pointer position)
    state: ZoneState

    @property
    def occupancy(self) -> int:
        return self.wp - self.start


class ZonedBlockDevice:
    """Synchronous zoned-block-device facade over device (+ optional stack)."""

    def __init__(self, device: ZnsDevice, stack=None):
        self.device = device
        self.sim = device.sim
        self._target = stack if stack is not None else device
        self._block = device.namespace.block_size

    # -- geometry -----------------------------------------------------------
    @property
    def nr_zones(self) -> int:
        return self.device.zones.num_zones

    @property
    def zone_size(self) -> int:
        return self.device.profile.zone_size_bytes

    @property
    def zone_capacity(self) -> int:
        return self.device.profile.zone_cap_bytes

    @property
    def max_open_zones(self) -> int:
        return self.device.profile.max_open_zones

    @property
    def max_active_zones(self) -> int:
        return self.device.profile.max_active_zones

    # -- reporting -------------------------------------------------------------
    def report_zones(self, start: int = 0, count: Optional[int] = None) -> list[ZoneInfo]:
        zones = self.device.report_zones()[start: None if count is None else start + count]
        return [
            ZoneInfo(
                index=z.index,
                start=z.zslba * self._block,
                length=z.size_lbas * self._block,
                capacity=z.cap_lbas * self._block,
                wp=z.wp * self._block,
                state=z.state,
            )
            for z in zones
        ]

    # -- I/O ----------------------------------------------------------------------
    def _sync(self, command: Command) -> Completion:
        completion = self.sim.run(until=self._target.submit(command))
        if not completion.ok:
            raise StatusError(completion.status, f"{command.opcode.value} @ {command.slba}")
        return completion

    def _check_aligned(self, offset: int, nbytes: int) -> tuple[int, int]:
        if offset % self._block or nbytes <= 0 or nbytes % self._block:
            raise ValueError(
                f"offset/length must be positive multiples of the "
                f"{self._block} B block size (got {offset}, {nbytes})"
            )
        return offset // self._block, nbytes // self._block

    def pwrite(self, offset: int, nbytes: int) -> Completion:
        """Write ``nbytes`` at byte ``offset`` (must equal the zone's wp)."""
        slba, nlb = self._check_aligned(offset, nbytes)
        return self._sync(Command(Opcode.WRITE, slba=slba, nlb=nlb))

    def pread(self, offset: int, nbytes: int) -> Completion:
        slba, nlb = self._check_aligned(offset, nbytes)
        return self._sync(Command(Opcode.READ, slba=slba, nlb=nlb))

    def append(self, zone_index: int, nbytes: int) -> tuple[int, Completion]:
        """Zone append; returns (assigned byte offset, completion)."""
        zone = self._zone(zone_index)
        _, nlb = self._check_aligned(0, nbytes)
        completion = self._sync(Command(Opcode.APPEND, slba=zone.zslba, nlb=nlb))
        return completion.assigned_lba * self._block, completion

    # -- zone management ----------------------------------------------------------
    def _zone(self, zone_index: int):
        if not 0 <= zone_index < self.nr_zones:
            raise ValueError(f"zone {zone_index} out of range [0, {self.nr_zones})")
        return self.device.zones.zones[zone_index]

    def _mgmt(self, zone_index: int, action: ZoneAction) -> Completion:
        zone = self._zone(zone_index)
        return self._sync(Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=action))

    def open_zone(self, zone_index: int) -> Completion:
        return self._mgmt(zone_index, ZoneAction.OPEN)

    def close_zone(self, zone_index: int) -> Completion:
        return self._mgmt(zone_index, ZoneAction.CLOSE)

    def finish_zone(self, zone_index: int) -> Completion:
        return self._mgmt(zone_index, ZoneAction.FINISH)

    def reset_zone(self, zone_index: int) -> Completion:
        return self._mgmt(zone_index, ZoneAction.RESET)

    def reset_all(self) -> int:
        """Reset every non-empty zone (``blkzone reset`` equivalent);
        returns the number of zones reset."""
        count = 0
        for zone in self.device.zones.zones:
            if zone.state is not ZoneState.EMPTY:
                self.reset_zone(zone.index)
                count += 1
        return count
