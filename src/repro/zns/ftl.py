"""Zone-to-flash striping: which die serves which page of a zone.

Large-zone ZNS devices stripe each zone across all channels/dies so a
single zone can absorb the device's full bandwidth (the paper's §III-D
observes intra-zone parallelism matching inter-zone parallelism, and
cites Bae et al. [50] on zone striping). We stripe consecutive zone pages
round-robin over the global die list, with a per-zone rotation offset so
concurrently written zones do not march over the same dies in lockstep.

A narrower ``stripe_width`` partitions the dies into groups and confines
each zone to one group — the design point small-zone devices take (and
the axis ConfZNS-style emulators explore): per-zone bandwidth shrinks to
the group's share, zones in the same group interfere, zones in different
groups do not. :mod:`repro.zns.inference` recovers this mapping from the
outside, as Bae et al.'s host-side tool does on real hardware.
"""

from __future__ import annotations

from typing import Optional

from ..flash.geometry import FlashGeometry

__all__ = ["ZoneStriping"]

#: Per-zone die-rotation stride; coprime with any realistic die count so
#: zone starting positions spread evenly.
_ZONE_STRIDE = 7


class ZoneStriping:
    """Deterministic zone-page → die mapping (optionally group-confined)."""

    def __init__(self, geometry: FlashGeometry, zone_size_bytes: int,
                 stripe_width: Optional[int] = None):
        if zone_size_bytes <= 0 or zone_size_bytes % geometry.page_size != 0:
            raise ValueError(
                f"zone size {zone_size_bytes} must be a positive multiple of "
                f"the {geometry.page_size} B flash page"
            )
        width = geometry.total_dies if stripe_width is None else stripe_width
        if width < 1 or geometry.total_dies % width != 0:
            raise ValueError(
                f"stripe width {width} must divide the die count "
                f"{geometry.total_dies}"
            )
        self.geometry = geometry
        self.zone_size_bytes = zone_size_bytes
        self.stripe_width = width

    @property
    def die_groups(self) -> int:
        """Number of disjoint die groups zones are assigned to."""
        return self.geometry.total_dies // self.stripe_width

    def group_of_zone(self, zone_index: int) -> int:
        """The die group a zone's data lives on."""
        if zone_index < 0:
            raise ValueError(f"zone index must be >= 0, got {zone_index}")
        return zone_index % self.die_groups

    def die_for_page(self, zone_index: int, zone_page: int) -> int:
        """Global die index serving the ``zone_page``-th page of a zone."""
        if zone_page < 0:
            raise ValueError(f"zone page must be >= 0, got {zone_page}")
        base = self.group_of_zone(zone_index) * self.stripe_width
        offset = (zone_index * _ZONE_STRIDE + zone_page) % self.stripe_width
        return base + offset

    def dies_for_span(self, zone_index: int, offset_bytes: int, nbytes: int) -> list[tuple[int, int]]:
        """Dies (with per-die byte counts) covering a byte span of a zone.

        Returns ``[(die_index, bytes_from_that_die), ...]`` in page order —
        the fan-out set for a read request.
        """
        if offset_bytes < 0 or nbytes <= 0:
            raise ValueError("span must have non-negative offset and positive size")
        if offset_bytes + nbytes > self.zone_size_bytes:
            raise ValueError("span exceeds the zone")
        page_size = self.geometry.page_size
        spans: list[tuple[int, int]] = []
        cursor = offset_bytes
        end = offset_bytes + nbytes
        while cursor < end:
            page = cursor // page_size
            page_end = (page + 1) * page_size
            take = min(end, page_end) - cursor
            spans.append((self.die_for_page(zone_index, page), take))
            cursor += take
        return spans
