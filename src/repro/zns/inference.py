"""Host-side zone-parallelism inference (the Bae et al. [50] tool).

The paper's §V describes "a host-side inference tool to identify zone
parallelism mappings by inter-zone interference measurements": zones
sharing flash dies interfere with each other; zones on disjoint dies do
not. This module implements that black-box tool against any ZNS device
(simulated here, but the method is device-agnostic):

1. measure each probe zone's **solo** append bandwidth,
2. measure every pair's **combined** bandwidth,
3. pairs whose combined bandwidth is far below the sum of their solo
   bandwidths share dies; cluster the interference graph (union-find)
   into die groups.

On the ZN540 profile (full-width striping) every zone shares dies with
every other, so the tool reports one group — exactly what the paper's
large-zone observations imply. On a narrow-stripe profile it recovers
the hidden group structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hostif.commands import Command, Opcode, ZoneAction
from ..sim.engine import ms
from ..workload.job import IoKind, JobSpec
from ..workload.runner import JobRunner
from ..stacks.spdk import SpdkStack
from .device import ZnsDevice

__all__ = ["InterferenceReport", "infer_zone_groups"]

KIB = 1024


@dataclass
class InterferenceReport:
    """Outcome of a zone-parallelism inference run."""

    zones: list[int]
    solo_mibs: dict[int, float]
    pair_mibs: dict[tuple[int, int], float]
    #: zone -> inferred group id (0-based, ordered by first appearance).
    groups: dict[int, int]

    @property
    def group_count(self) -> int:
        return len(set(self.groups.values()))

    def interferes(self, a: int, b: int) -> bool:
        """Whether the measured pair bandwidth indicates shared dies."""
        key = (a, b) if (a, b) in self.pair_mibs else (b, a)
        combined = self.pair_mibs[key]
        return combined < 0.75 * (self.solo_mibs[a] + self.solo_mibs[b])

    def table(self) -> str:
        lines = ["zone  group  solo MiB/s"]
        for z in self.zones:
            lines.append(f"{z:>4}  {self.groups[z]:>5}  {self.solo_mibs[z]:>10.1f}")
        return "\n".join(lines)


def _quiesce(device: ZnsDevice) -> None:
    """Let the device's write buffer drain fully before the next probe.

    The buffer is shared across zones, so leftovers from a previous
    probe would cross-contaminate the next bandwidth measurement.
    """
    sim = device.sim
    while device.buffer.level > 0:
        sim.run(until=sim.now + ms(2))


def _measure_bandwidth(device: ZnsDevice, zones: list[int], runtime_ns: int,
                       block_size: int, qd: int, seed: int) -> float:
    """Steady-state append bandwidth over the given zones (then reset).

    The ramp must outlast the write-buffer fill transient: only once the
    buffer is full does host-visible throughput equal the probed zones'
    die-group program rate (which is what reveals the grouping).
    """
    job = JobSpec(
        op=IoKind.APPEND, block_size=block_size, runtime_ns=runtime_ns,
        ramp_ns=runtime_ns * 3 // 5, iodepth=qd, numjobs=len(zones),
        zones=zones, zone_per_thread=True, reset_when_full=False, seed=seed,
    )
    runner = JobRunner(device, SpdkStack(device), job)
    result = runner.run()
    for z in zones:
        cpl = device.sim.run(until=device.submit(Command(
            Opcode.ZONE_MGMT, slba=device.zones.zones[z].zslba,
            action=ZoneAction.RESET)))
        assert cpl.ok, cpl.status
    _quiesce(device)
    return result.bandwidth_mibs


def infer_zone_groups(
    device: ZnsDevice,
    zones: list[int] | None = None,
    runtime_ns: int = ms(70),
    block_size: int = 32 * KIB,
    qd: int = 8,
    seed: int = 0x5EED,
) -> InterferenceReport:
    """Infer which probe zones share flash dies.

    Uses large saturating appends so each zone alone reaches its die
    group's bandwidth ceiling; a shared-group pair then splits that
    ceiling instead of doubling it.
    """
    if zones is None:
        zones = list(range(min(6, device.zones.num_zones)))
    if len(zones) < 2:
        raise ValueError("need at least two zones to infer grouping")
    if len(set(zones)) != len(zones):
        raise ValueError("duplicate probe zones")

    solo = {
        z: _measure_bandwidth(device, [z], runtime_ns, block_size, qd, seed)
        for z in zones
    }
    pairs: dict[tuple[int, int], float] = {}
    for i, a in enumerate(zones):
        for b in zones[i + 1:]:
            pairs[(a, b)] = _measure_bandwidth(
                device, [a, b], runtime_ns, block_size, qd, seed
            )

    # Union-find over the interference graph.
    parent = {z: z for z in zones}

    def find(z: int) -> int:
        while parent[z] != z:
            parent[z] = parent[parent[z]]
            z = parent[z]
        return z

    report = InterferenceReport(zones=zones, solo_mibs=solo, pair_mibs=pairs,
                                groups={})
    for (a, b) in pairs:
        if report.interferes(a, b):
            parent[find(a)] = find(b)
    group_ids: dict[int, int] = {}
    for z in zones:
        root = find(z)
        if root not in group_ids:
            group_ids[root] = len(group_ids)
        report.groups[z] = group_ids[root]
    return report
