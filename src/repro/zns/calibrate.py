"""Calibration regression: the paper's anchor numbers as executable checks.

``measure_anchors`` runs the quick subset of measurements that pin the
ZN540 profile down (QD1 latencies through each stack, transition costs,
occupancy endpoints) and compares them against the paper's published
values. The test suite runs this as a regression gate: any change to the
profile or the device mechanics that drifts an anchor by more than its
tolerance fails loudly.

The slow anchors (scaling plateaus, interference) are covered by the
benchmark harness; see EXPERIMENTS.md for the complete ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hostif.commands import Command, Opcode, ZoneAction
from ..hostif.namespace import LBA_4K
from ..sim.engine import Simulator
from ..sim.rng import StreamFactory
from ..stacks.iouring import IoUringStack
from ..stacks.spdk import SpdkStack
from ..workload.stats import LatencyStats
from .device import ZnsDevice
from .profiles import zn540

__all__ = ["Anchor", "AnchorResult", "PAPER_ANCHORS", "measure_anchors"]

KIB = 1024


@dataclass(frozen=True)
class Anchor:
    """One published number and the tolerance we hold ourselves to."""

    name: str
    paper_value: float
    unit: str
    tolerance: float  # relative
    source: str  # paper location


@dataclass
class AnchorResult:
    anchor: Anchor
    measured: float

    @property
    def ok(self) -> bool:
        return abs(self.measured - self.anchor.paper_value) <= (
            self.anchor.tolerance * self.anchor.paper_value
        )

    def __str__(self) -> str:
        mark = "ok " if self.ok else "OFF"
        return (
            f"[{mark}] {self.anchor.name}: paper {self.anchor.paper_value} "
            f"{self.anchor.unit}, measured {self.measured:.2f} "
            f"(±{self.anchor.tolerance * 100:.0f}%, {self.anchor.source})"
        )


PAPER_ANCHORS: tuple[Anchor, ...] = (
    Anchor("spdk write 4KiB QD1", 11.36, "us", 0.03, "§III-C Obs #2"),
    Anchor("spdk append 8KiB QD1", 14.02, "us", 0.03, "§III-C Obs #4"),
    Anchor("kernel none write 4KiB QD1", 12.62, "us", 0.03, "§III-C Obs #2"),
    Anchor("mq-deadline write 4KiB QD1", 14.47, "us", 0.03, "§III-C Obs #2"),
    Anchor("scheduler overhead", 1.85, "us", 0.06, "§III-C Obs #2"),
    Anchor("zone open", 9.56, "us", 0.12, "§III-E Obs #9"),
    Anchor("zone close", 11.01, "us", 0.12, "§III-E Obs #9"),
    Anchor("implicit-open write penalty", 2.02, "us", 0.25, "§III-E Obs #9"),
    Anchor("implicit-open append penalty", 2.83, "us", 0.25, "§III-E Obs #9"),
    Anchor("reset half-full zone", 11.60, "ms", 0.08, "§III-E Obs #10"),
    Anchor("reset full zone", 16.19, "ms", 0.08, "§III-E Obs #10"),
    Anchor("finish <0.1% zone", 907.51, "ms", 0.08, "§III-E Obs #10"),
    Anchor("finish ~100% zone", 3.07, "ms", 0.10, "§III-E Obs #10"),
)


class _Bench:
    """Minimal measurement rig over a fresh simulated ZN540."""

    def __init__(self, seed: int):
        self.sim = Simulator()
        self.device = ZnsDevice(
            self.sim, zn540(num_zones=16), lba_format=LBA_4K,
            streams=StreamFactory(seed),
        )

    def _run(self, event):
        return self.sim.run(until=event)

    def qd1_io_us(self, stack, opcode: Opcode, nbytes: int, reps: int = 24) -> float:
        zone = self.device.zones.zones[0]
        nlb = self.device.namespace.lbas(nbytes)
        stats = LatencyStats()
        for i in range(reps + 1):
            slba = zone.wp if opcode is Opcode.WRITE else zone.zslba
            cpl = self._run(stack.submit(Command(opcode, slba=slba, nlb=nlb)))
            assert cpl.ok, cpl.status
            if i > 0:  # drop the implicit-open first op
                stats.record(cpl.latency_ns)
        self._run(self.device.submit(
            Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
        return stats.mean_us

    def mgmt_us(self, zone_index: int, action: ZoneAction) -> float:
        zslba = self.device.zones.zones[zone_index].zslba
        cpl = self._run(self.device.submit(
            Command(Opcode.ZONE_MGMT, slba=zslba, action=action)))
        assert cpl.ok, cpl.status
        return cpl.latency_ns / 1e3

    def mgmt_at_occupancy_ms(self, action: ZoneAction, fraction: float,
                             reps: int = 10) -> float:
        zone = self.device.zones.zones[1]
        stats = LatencyStats()
        for _ in range(reps):
            nlb = round(zone.cap_lbas * fraction)
            if fraction >= 1.0:
                nlb = zone.cap_lbas if action is ZoneAction.RESET else zone.cap_lbas - 4
            elif fraction <= 0.0:
                nlb = 4  # one page: finish needs a non-empty zone
            assert self.device.force_fill(zone.index, nlb).ok
            cpl = self._run(self.device.submit(
                Command(Opcode.ZONE_MGMT, slba=zone.zslba, action=action)))
            assert cpl.ok, cpl.status
            stats.record(cpl.latency_ns)
            if action is not ZoneAction.RESET:
                self._run(self.device.submit(Command(
                    Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
        return stats.mean_ns / 1e6

    def implicit_penalty_us(self, opcode: Opcode, reps: int = 24) -> float:
        zone = self.device.zones.zones[2]
        nlb = self.device.namespace.lbas(4 * KIB)
        first, later = LatencyStats(), LatencyStats()
        for _ in range(reps):
            slba = zone.wp if opcode is Opcode.WRITE else zone.zslba
            first.record(self._run(self.device.submit(
                Command(opcode, slba=slba, nlb=nlb))).latency_ns)
            slba = zone.wp if opcode is Opcode.WRITE else zone.zslba
            later.record(self._run(self.device.submit(
                Command(opcode, slba=slba, nlb=nlb))).latency_ns)
            self._run(self.device.submit(Command(
                Opcode.ZONE_MGMT, slba=zone.zslba, action=ZoneAction.RESET)))
        return (first.mean_ns - later.mean_ns) / 1e3


def measure_anchors(seed: int = 0x5EED) -> list[AnchorResult]:
    """Measure every quick anchor; returns paper-vs-measured results."""
    values: dict[str, float] = {}

    bench = _Bench(seed)
    values["spdk write 4KiB QD1"] = bench.qd1_io_us(
        SpdkStack(bench.device), Opcode.WRITE, 4 * KIB)
    bench = _Bench(seed)
    values["spdk append 8KiB QD1"] = bench.qd1_io_us(
        SpdkStack(bench.device), Opcode.APPEND, 8 * KIB)
    bench = _Bench(seed)
    values["kernel none write 4KiB QD1"] = bench.qd1_io_us(
        IoUringStack(bench.device, "none"), Opcode.WRITE, 4 * KIB)
    bench = _Bench(seed)
    values["mq-deadline write 4KiB QD1"] = bench.qd1_io_us(
        IoUringStack(bench.device, "mq-deadline"), Opcode.WRITE, 4 * KIB)
    values["scheduler overhead"] = (
        values["mq-deadline write 4KiB QD1"] - values["kernel none write 4KiB QD1"]
    )

    bench = _Bench(seed)
    values["zone open"] = bench.mgmt_us(0, ZoneAction.OPEN)
    bench.device.zones.zones[0].wp += 4  # pretend a write landed
    values["zone close"] = bench.mgmt_us(0, ZoneAction.CLOSE)
    values["implicit-open write penalty"] = bench.implicit_penalty_us(Opcode.WRITE)
    values["implicit-open append penalty"] = bench.implicit_penalty_us(Opcode.APPEND)
    values["reset half-full zone"] = bench.mgmt_at_occupancy_ms(ZoneAction.RESET, 0.5)
    values["reset full zone"] = bench.mgmt_at_occupancy_ms(ZoneAction.RESET, 1.0)
    values["finish <0.1% zone"] = bench.mgmt_at_occupancy_ms(ZoneAction.FINISH, 0.0)
    values["finish ~100% zone"] = bench.mgmt_at_occupancy_ms(ZoneAction.FINISH, 1.0)

    return [AnchorResult(anchor, values[anchor.name]) for anchor in PAPER_ANCHORS]
