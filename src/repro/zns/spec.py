"""ZNS zone states and the legal state-transition table (paper Fig. 1).

The zone state machine governs which I/O and management operations a zone
accepts. Transitions are either *explicit* (host-issued ``open``,
``close``, ``finish``, ``reset``) or *implicit* (a write/append to an
EMPTY or CLOSED zone opens it; a write reaching the zone capacity fills
it). Observation #9 of the paper compares the costs of these paths.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["ZoneState", "WRITABLE_STATES", "OPEN_STATES", "ACTIVE_STATES"]


class ZoneState(Enum):
    EMPTY = "empty"
    IMPLICIT_OPEN = "implicit_open"
    EXPLICIT_OPEN = "explicit_open"
    CLOSED = "closed"
    FULL = "full"
    READ_ONLY = "read_only"
    OFFLINE = "offline"


#: States a zone may be in (or transition through) to accept writes.
WRITABLE_STATES = frozenset(
    {ZoneState.EMPTY, ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN, ZoneState.CLOSED}
)

#: States counted against the device's max-open-zones limit.
OPEN_STATES = frozenset({ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN})

#: States counted against the device's max-active-zones limit.
ACTIVE_STATES = frozenset(
    {ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN, ZoneState.CLOSED}
)
