"""The simulated ZNS SSD.

Command flow (see DESIGN.md §5 for the calibration story):

* every command first passes through the **controller front-end**, a
  single-server resource whose per-command service time sets the per-op
  IOPS caps (write ≈ 186 K/s, append ≈ 132 K/s, read ≈ 424 K/s);
* **writes/appends** are then DMA'd and admitted into the capacitor-backed
  write buffer (completion happens here — hence ~11 µs write latency);
  a background flusher programs buffered pages to the zone's die stripe,
  capping sustained bandwidth at the flash program rate and creating the
  die backlogs that inflate concurrent read latency (§III-F);
* **reads** fan out to the dies holding the spanned pages (NAND tR + bus
  transfer), queueing FIFO behind any flush programs at those dies;
* **zone management** runs on the firmware engine. Management work is
  *lower priority than I/O mapping updates*: each completed I/O adds
  mapping-update debt that stalls in-progress management work, so
  concurrent I/O inflates ``reset`` latency while resets never delay I/O
  (Observations #12/#13).

The controller/buffer/completion plumbing lives in
:class:`repro.device.core.DeviceCore` (shared with the conventional
model); this module holds only the zone state machine, striping and the
firmware management engine. Per-request costs and die spans come
precomputed from the :class:`repro.device.planner.RequestPlanner`
(DESIGN.md §11).
"""

from __future__ import annotations

from typing import Generator, Optional

# DeviceCounters/PRIO_* are re-exported from their historical home here.
from ..device.core import PRIO_IO, PRIO_MGMT, DeviceCore, DeviceCounters
from ..flash.backend import FlashBackend
from ..hostif.commands import Command, Opcode, ZoneAction
from ..hostif.namespace import LBA_4K, LbaFormat
from ..hostif.status import Status
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..sim.rng import LatencySampler, StreamFactory
from .ftl import ZoneStriping
from .profiles import DeviceProfile
from .spec import ZoneState
from .statemachine import ZoneManager
from .zone import Zone

__all__ = ["ZnsDevice", "DeviceCounters", "PRIO_IO", "PRIO_MGMT"]


class ZnsDevice(DeviceCore):
    """A calibrated, mechanistic ZNS SSD model."""

    kind = "zns"

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        lba_format: LbaFormat = LBA_4K,
        streams: Optional[StreamFactory] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
        telemetry=None,
    ):
        streams = streams or StreamFactory()
        super().__init__(
            sim, profile, profile.capacity_bytes, lba_format, streams,
            tracer, metrics, io_stream="zns-io", faults=faults,
            telemetry=telemetry,
        )
        block = self.namespace.block_size
        self.zones = ZoneManager(
            num_zones=profile.num_zones,
            size_lbas=profile.zone_size_bytes // block,
            cap_lbas=profile.zone_cap_bytes // block,
            max_open=profile.max_open_zones,
            max_active=profile.max_active_zones,
        )
        self.zones.on_transition = self._on_zone_transition
        self.backend = FlashBackend(
            sim, profile.geometry, profile.nand, profile.channel_bandwidth,
            tracer=self.tracer,
            metrics=self.metrics if self.observing else None,
            faults=self.faults,
            # The ZNS model has no GC: every die/bus acquisition is
            # PRIO_IO, so FIFO queues are grant-order-identical and
            # skip the priority-heap bookkeeping.
            fifo_queues=True,
        )
        self.striping = ZoneStriping(
            profile.geometry, profile.zone_size_bytes, profile.stripe_width
        )
        self.planner.bind_striping(self.striping)
        self.firmware = Resource(sim, capacity=1, name="firmware")
        self._mgmt_jitter = LatencySampler(
            streams.stream("zns-mgmt"), profile.mgmt_jitter_sigma
        )
        self._open_gauge = self.metrics.gauge("device.zones.open")
        self._active_gauge = self.metrics.gauge("device.zones.active")
        self._transition_counter = self.metrics.counter("device.zones.transitions")
        self._inflight_writes: dict[int, int] = {}
        self._mgmt_busy: set[int] = set()
        self._zone_residual: dict[int, int] = {}
        self._zone_page_cursor: dict[int, int] = {}
        #: Fault-mode bookkeeping (unused — and unallocated per zone —
        #: when ``self.faults is None``): power-loss cancellation tokens
        #: for spawned-but-uncommitted page flushes. Per-zone wear
        #: odometers (erase counts, cumulative program failures, read
        #: exposure) live on ``self.faults.wear`` (DESIGN.md §17).
        self._zone_pending: dict[int, list] = {}
        #: Cumulative firmware mapping-update work generated by I/O; see
        #: the priority note in the module docstring.
        self._fw_debt_ns = 0
        # Per-opcode dispatch table, resolved once at construction: the
        # default (untraced, unobserved, fault-free) configuration runs
        # probe-free executor variants that are event-for-event identical
        # to the instrumented ones but skip every per-command tracer/
        # metrics/faults conditional (DESIGN.md §15). ``observing``,
        # ``tracer.enabled`` and ``faults`` are construction-time facts,
        # so the choice never needs re-evaluation.
        fast = (
            not self.tracer.enabled and not self.observing and self.faults is None
        )
        self._flush_fn = (
            self._flush_page_to_die_fast if fast else self._flush_page_to_die
        )
        self._exec_table = {
            Opcode.READ: self._exec_read_fast if fast else self._exec_read,
            Opcode.WRITE: self._exec_write_fast if fast else self._exec_write,
            Opcode.APPEND: self._exec_append_fast if fast else self._exec_append,
            Opcode.ZONE_MGMT: self._exec_zone_mgmt,
        }

    def _bind_plan_caches(self) -> None:
        super()._bind_plan_caches()
        self._append_shapes = self.planner.shape_map(Opcode.APPEND)

    # ------------------------------------------------------------------ api
    def _dispatch(self, command: Command, cid: int) -> Generator:
        exec_fn = self._exec_table.get(command.opcode)
        if exec_fn is None:
            raise ValueError(
                f"ZNS device does not support {command.opcode.value} "
                "(reclaim whole zones with reset instead of trim)"
            )
        return exec_fn(command, cid)

    def report_zones(self) -> list[Zone]:
        """Zone report (the nvme-cli ``zns report-zones`` equivalent)."""
        return list(self.zones.zones)

    def force_fill(self, zone_index: int, nlb: int) -> Status:
        """Test/bench fixture: set a zone's occupancy without timed I/O.

        Equivalent (for the state machine and latency model) to writing
        ``nlb`` blocks and closing the zone — the shortcut the occupancy
        benchmarks use instead of issuing ~270 K real 4 KiB writes per
        zone. Unit tests assert the equivalence on small zones.
        """
        zone = self.zones.zones[zone_index]
        if zone.state is not ZoneState.EMPTY:
            return Status.INVALID_ZONE_STATE_TRANSITION
        if nlb < 0 or nlb > zone.cap_lbas:
            return Status.ZONE_BOUNDARY_ERROR
        if nlb == 0:
            return Status.SUCCESS
        status, _ = self.zones.admit_write(zone, zone.wp, nlb)
        if not status.ok:
            return status
        if zone.state is not ZoneState.FULL:
            self.zones.close(zone)
        block = self.namespace.block_size
        self._zone_page_cursor[zone_index] = (nlb * block) // self.profile.geometry.page_size
        return Status.SUCCESS

    def state_snapshot(self) -> dict:
        """Fixture: capture the quiescent device state for :meth:`restore_state`.

        Captures everything that makes later commands behave differently
        — zone states/write pointers, per-zone flush residuals and page
        cursors, and the accumulated firmware mapping debt. RNG streams
        and observability counters are deliberately *not* captured:
        restoring rewinds the device, not the experiment's statistics.

        Requires a quiescent device: no in-flight commands and no pending
        page flushes (``sim.run()`` with no deadline drains everything;
        stable sub-page residuals may remain buffered and are captured).
        The occupancy sweeps use this to rewind between repetitions
        instead of replaying their fill sequences.
        """
        self._require_quiescent("state_snapshot")
        snapshot = {
            "zones": self.zones.state_snapshot(),
            "residual": dict(self._zone_residual),
            "page_cursor": dict(self._zone_page_cursor),
            "fw_debt_ns": self._fw_debt_ns,
        }
        if self.faults is not None:
            # Wear odometers age coherently across multi-point plans:
            # rewinding the device rewinds its lifetime too (§17).
            snapshot["wear"] = self.faults.wear.snapshot()
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        """Reinstate a :meth:`state_snapshot` image (quiescent device only)."""
        self._require_quiescent("restore_state")
        self.zones.restore_state(snapshot["zones"])
        self._zone_residual = dict(snapshot["residual"])
        self._zone_page_cursor = dict(snapshot["page_cursor"])
        self._fw_debt_ns = snapshot["fw_debt_ns"]
        if self.faults is not None and "wear" in snapshot:
            self.faults.wear.restore(snapshot["wear"])
        # At quiescence the buffered bytes are exactly the stable
        # sub-page residuals; reinstate the snapshot's.
        self.buffer.force_level(sum(self._zone_residual.values()))
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)

    def _require_quiescent(self, what: str) -> None:
        if self._mgmt_busy or any(self._inflight_writes.values()):
            raise RuntimeError(
                f"{what} requires a quiescent device: commands in flight"
            )
        residual = sum(self._zone_residual.values())
        if self.buffer.level != residual:
            raise RuntimeError(
                f"{what} requires a quiescent device: "
                f"{self.buffer.level - residual} buffered bytes await "
                "page flush; run the simulator to exhaustion first"
            )

    def _require_reformattable(self) -> None:
        self._require_quiescent("reformat")

    def _after_reformat(self) -> None:
        # A format wipes the data: rebuild the zone table in the new LBA
        # denomination and discard buffered residuals/cursors.
        block = self.namespace.block_size
        profile = self.profile
        self.zones = ZoneManager(
            num_zones=profile.num_zones,
            size_lbas=profile.zone_size_bytes // block,
            cap_lbas=profile.zone_cap_bytes // block,
            max_open=profile.max_open_zones,
            max_active=profile.max_active_zones,
        )
        self.zones.on_transition = self._on_zone_transition
        self._zone_residual.clear()
        self._zone_page_cursor.clear()
        self.buffer.force_level(0)
        if self.observing:
            self._wbuf_gauge.set(0)

    def age(self, epochs: int, churn_erases: int = 4) -> int:
        """Fast-forward ``epochs`` "days" of wear without simulating them.

        Each epoch replays one day of reset/write churn deterministically
        from the dedicated ``"aging"`` RNG stream: every zone gains
        1..2×``churn_erases`` erase cycles (uneven by design — real fleets
        don't wear uniformly) and its read-disturb exposure resets, as an
        erase would in-run. Only the *erase odometer* carries over —
        scattered program failures during background churn are transient
        (the firmware already handled them), so they do not feed the
        in-run failure-retirement ladder. Erase-count retirement
        thresholds apply exactly as they would in-run, so a heavily aged
        device boots with some zones already READ_ONLY/OFFLINE. A no-op
        (zero draws, zero state change) when no fault plan is armed, so
        fault-free output stays byte-identical. Returns the number of
        zones retired by the call.

        Draw counts are fixed per epoch (one vector draw) and
        independent of zone state, so aging is bit-reproducible per
        (seed, salt, epochs) at any ``--jobs`` (DESIGN.md §17).
        """
        if epochs <= 0 or self.faults is None:
            return 0
        injector = self.faults
        rng = self._streams.stream("aging")
        zones = self.zones.zones
        wears = [injector.wear.unit(zone.index) for zone in zones]
        retired = 0
        for _ in range(epochs):
            erases = rng.integers(
                1, 2 * churn_erases + 1, size=len(zones)
            ).tolist()
            for wear, count in zip(wears, erases):
                wear.erase_count += count
                wear.reads_since_erase = 0
        high = max(wear.erase_count for wear in wears)
        if high > injector.max_erase_count.value:
            injector.max_erase_count.set(high)
        for zone, wear in zip(zones, wears):
            if self._apply_wear_retirement(zone, wear):
                retired += 1
        return retired

    def inject_zone_failure(self, zone_index: int, state: ZoneState) -> None:
        """Failure injection: mark a zone READ_ONLY or OFFLINE.

        READ_ONLY zones reject writes/appends/finish but still serve
        reads; OFFLINE zones reject everything including reset. Used by
        the failure-injection tests and available to applications that
        model device wear (paper §II-A).
        """
        self.zones.force_state(self.zones.zones[zone_index], state)

    def debug_prefill_buffer(self, zone_index: int = 0, fraction: float = 1.0) -> int:
        """Experiment warm start: load the write buffer as if the host had
        already written ``fraction`` of its capacity to ``zone_index``.

        Write workloads that overdrive the flash program rate only show
        their steady-state (backpressured) throughput once the buffer is
        full — a transient of up to ~1 s of simulated time. Pre-filling
        removes the transient so short measurement windows report
        steady-state bandwidth exactly. Returns the bytes pre-filled.
        """
        if not 0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        page = self.profile.geometry.page_size
        nbytes = int(self.profile.write_buffer_bytes * fraction) // page * page
        headroom = self.profile.write_buffer_bytes - self.buffer.level
        nbytes = min(nbytes, headroom // page * page)
        if nbytes <= 0:
            return 0
        self.buffer.put(nbytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        self._enqueue_flush(zone_index, nbytes)
        return nbytes

    # --------------------------------------------------------------- helpers
    def _telemetry_levels(self) -> dict:
        levels = super()._telemetry_levels()
        census: dict[str, int] = {}
        for zone in self.zones.zones:
            key = zone.state.value
            census[key] = census.get(key, 0) + 1
        for state, count in census.items():
            levels[f"zones.{state}"] = count
        levels["zones.retired"] = (
            census.get(ZoneState.READ_ONLY.value, 0)
            + census.get(ZoneState.OFFLINE.value, 0)
        )
        levels["fw.debt_ns"] = self._fw_debt_ns
        return levels

    def _on_zone_transition(self, zone: Zone, old: ZoneState,
                            new: ZoneState) -> None:
        if not self.observing:
            return
        self._open_gauge.set(self.zones.open_count)
        self._active_gauge.set(self.zones.active_count)
        self._transition_counter.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "zone", f"{old.name}->{new.name}", self.sim.now,
                track="zones", zone=zone.index,
                open=self.zones.open_count, active=self.zones.active_count,
            )

    def _zone_for_io(self, command: Command) -> tuple[Optional[Zone], Status]:
        nlb = command.nlb
        if command.slba + nlb > self._capacity_lbas:
            return None, Status.LBA_OUT_OF_RANGE
        zone = self.zones.zone_containing(command.slba)
        if zone is None:
            return None, Status.LBA_OUT_OF_RANGE
        if command.slba + nlb > zone.end:
            return None, Status.ZONE_BOUNDARY_ERROR
        return zone, Status.SUCCESS

    # ------------------------------------------------------------------ read
    def _exec_read(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        shape = self._read_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.READ, command.nlb)
        if self.tracer.enabled:
            yield from self._controller_service(shape.service_ns, cid)
        else:
            # Untraced fast path: the controller handshake inlined (same
            # events in the same order as _controller_service).
            req = self.controller.request(PRIO_IO)
            yield req
            yield self.sim.timeout(self._io_jitter.jitter(shape.service_ns))
            self.controller.release(req)
        if status.ok and zone.state is ZoneState.OFFLINE:
            status = Status.ZONE_IS_OFFLINE  # data is gone; READ_ONLY still reads
        if not status.ok:
            return self._complete(command, status, cid=cid)
        nbytes = shape.nbytes
        offset = (command.slba - zone.zslba) * self._block_size
        spans = self.planner.read_spans(zone.index, offset, nbytes)
        nand_started = self.sim.now if self.tracer.enabled else 0
        sim = self.sim
        read_page = self.backend.read_page
        if self.backend.faults is not None:
            fault_out = []
            wear = self.backend.faults.wear.unit(zone.index)
        else:
            fault_out = None
            wear = None
        if len(spans) == 1:
            die, take = spans[0]
            yield sim.process(
                read_page(die, priority=PRIO_IO, transfer_bytes=take, cid=cid,
                          fault_out=fault_out, wear=wear)
            )
        else:
            yield sim.all_of([
                sim.process(
                    read_page(die, priority=PRIO_IO, transfer_bytes=take,
                              cid=cid, fault_out=fault_out, wear=wear)
                )
                for die, take in spans
            ])
        if self.tracer.enabled:
            self.tracer.span("nand", "read.fanout", nand_started, self.sim.now,
                             track="nand", cid=cid, dies=len(spans))
        if fault_out:
            # The read-retry ladder exhausted on at least one spanned
            # page: NVMe media error, DNR (the host must not retry).
            return self._complete(command, Status.MEDIA_UNRECOVERED_READ, cid=cid)
        self._fw_debt_ns += shape.fw_ns
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    def _exec_read_fast(self, command: Command, cid: int = 0) -> Generator:
        # Probe-free _exec_read for the fast dispatch table: identical
        # events in identical order, zero tracer/faults/metrics branches.
        zone, status = self._zone_for_io(command)
        shape = self._read_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.READ, command.nlb)
        req = self.controller.request()
        yield req
        yield self.sim.timeout(self._io_jitter.jitter(shape.service_ns))
        self.controller.release(req)
        if status.ok and zone.state is ZoneState.OFFLINE:
            status = Status.ZONE_IS_OFFLINE  # data is gone; READ_ONLY still reads
        if not status.ok:
            return self._complete(command, status, cid=cid)
        nbytes = shape.nbytes
        offset = (command.slba - zone.zslba) * self._block_size
        spans = self.planner.read_spans(zone.index, offset, nbytes)
        sim = self.sim
        read_page = self.backend.read_page_fast
        if len(spans) == 1:
            die, take = spans[0]
            yield sim.process(read_page(die, take))
        else:
            yield sim.all_of(
                [sim.process(read_page(die, take)) for die, take in spans]
            )
        self._fw_debt_ns += shape.fw_ns
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    # ----------------------------------------------------------------- write
    def _exec_write(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        shape = self._write_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.WRITE, command.nlb)
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if status.ok and self._inflight_writes.get(zone.index, 0) > 0:
            # One in-flight write per zone: the device may reorder
            # requests internally, so a second concurrent write risks a
            # sequential-write violation and is rejected (§II-B).
            status = Status.ZONE_INVALID_WRITE
        if not status.ok:
            yield from self._controller_service(shape.service_ns, cid)
            return self._complete(command, status, cid=cid)
        self._inflight_writes[zone.index] = self._inflight_writes.get(zone.index, 0) + 1
        try:
            traced = self.tracer.enabled
            queued_at = self.sim.now if traced else 0
            req = self.controller.request(PRIO_IO)
            yield req
            granted_at = self.sim.now if traced else 0
            status, opened = self.zones.admit_write(zone, command.slba, command.nlb)
            service = shape.service_ns
            if status.ok and opened:
                service += self.profile.implicit_open_write_ns
            yield self.sim.timeout(self._io_jitter.jitter(service))
            self.controller.release(req)
            if traced:
                if granted_at > queued_at:
                    self.tracer.span("queue", "controller.wait", queued_at,
                                     granted_at, track="controller", cid=cid)
                self.tracer.span("controller", "controller.service", granted_at,
                                 self.sim.now, track="controller", cid=cid)
            if not status.ok:
                return self._complete(command, status, cid=cid)
            nbytes = shape.nbytes
            admit_started = self.sim.now if traced else 0
            yield self.sim.timeout(shape.admit_ns)
            yield self.buffer.put(nbytes)
            if self.observing:
                self._wbuf_gauge.set(self.buffer.level)
            if traced:
                self.tracer.span("buffer", "write.admit", admit_started,
                                 self.sim.now, track="buffer", cid=cid,
                                 nbytes=nbytes)
            self._enqueue_flush(zone.index, nbytes)
            self._fw_debt_ns += shape.fw_ns
            return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)
        finally:
            self._inflight_writes[zone.index] -= 1

    def _exec_write_fast(self, command: Command, cid: int = 0) -> Generator:
        # Probe-free _exec_write for the fast dispatch table (see
        # _exec_read_fast).
        zone, status = self._zone_for_io(command)
        shape = self._write_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.WRITE, command.nlb)
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if status.ok and self._inflight_writes.get(zone.index, 0) > 0:
            # One in-flight write per zone (§II-B), as in _exec_write.
            status = Status.ZONE_INVALID_WRITE
        if not status.ok:
            yield from self._controller_service(shape.service_ns, cid)
            return self._complete(command, status, cid=cid)
        self._inflight_writes[zone.index] = (
            self._inflight_writes.get(zone.index, 0) + 1
        )
        try:
            req = self.controller.request()
            yield req
            status, opened = self.zones.admit_write(zone, command.slba, command.nlb)
            service = shape.service_ns
            if status.ok and opened:
                service += self.profile.implicit_open_write_ns
            yield self.sim.timeout(self._io_jitter.jitter(service))
            self.controller.release(req)
            if not status.ok:
                return self._complete(command, status, cid=cid)
            nbytes = shape.nbytes
            yield self.sim.timeout(shape.admit_ns)
            yield self.buffer.put(nbytes)
            self._enqueue_flush(zone.index, nbytes)
            self._fw_debt_ns += shape.fw_ns
            return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)
        finally:
            self._inflight_writes[zone.index] -= 1

    # ---------------------------------------------------------------- append
    def _exec_append(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        shape = self._append_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.APPEND, command.nlb)
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if not status.ok:
            yield from self._controller_service(shape.service_ns, cid)
            return self._complete(command, status, cid=cid)
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = self.controller.request(PRIO_IO)
        yield req
        granted_at = self.sim.now if traced else 0
        status, opened, assigned = self.zones.admit_append(
            zone, command.slba, command.nlb
        )
        service = shape.service_ns
        if status.ok and opened:
            service += self.profile.implicit_open_append_ns
        yield self.sim.timeout(self._io_jitter.jitter(service))
        self.controller.release(req)
        if traced:
            if granted_at > queued_at:
                self.tracer.span("queue", "controller.wait", queued_at,
                                 granted_at, track="controller", cid=cid)
            self.tracer.span("controller", "controller.service", granted_at,
                             self.sim.now, track="controller", cid=cid)
        if not status.ok:
            return self._complete(command, status, cid=cid)
        nbytes = shape.nbytes
        admit_started = self.sim.now if traced else 0
        yield self.sim.timeout(shape.admit_ns)
        yield self.buffer.put(nbytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        if traced:
            self.tracer.span("buffer", "append.admit", admit_started,
                             self.sim.now, track="buffer", cid=cid, nbytes=nbytes)
        self._enqueue_flush(zone.index, nbytes)
        self._fw_debt_ns += shape.fw_ns
        return self._complete(command, Status.SUCCESS, nbytes=nbytes,
                              assigned_lba=assigned, cid=cid)

    def _exec_append_fast(self, command: Command, cid: int = 0) -> Generator:
        # Probe-free _exec_append for the fast dispatch table (see
        # _exec_read_fast).
        zone, status = self._zone_for_io(command)
        shape = self._append_shapes.get(command.nlb)
        if shape is None:
            shape = self.planner.io_shape(Opcode.APPEND, command.nlb)
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if not status.ok:
            yield from self._controller_service(shape.service_ns, cid)
            return self._complete(command, status, cid=cid)
        req = self.controller.request()
        yield req
        status, opened, assigned = self.zones.admit_append(
            zone, command.slba, command.nlb
        )
        service = shape.service_ns
        if status.ok and opened:
            service += self.profile.implicit_open_append_ns
        yield self.sim.timeout(self._io_jitter.jitter(service))
        self.controller.release(req)
        if not status.ok:
            return self._complete(command, status, cid=cid)
        nbytes = shape.nbytes
        yield self.sim.timeout(shape.admit_ns)
        yield self.buffer.put(nbytes)
        self._enqueue_flush(zone.index, nbytes)
        self._fw_debt_ns += shape.fw_ns
        return self._complete(command, Status.SUCCESS, nbytes=nbytes,
                              assigned_lba=assigned, cid=cid)

    # -------------------------------------------------------------- flushing
    def _enqueue_flush(self, zone_index: int, nbytes: int) -> None:
        """Queue buffered bytes for programming to the zone's die stripe."""
        page = self._page_size
        total = self._zone_residual.get(zone_index, 0) + nbytes
        if total >= page:
            table = self.planner.zone_table(zone_index)
            width = len(table)
            cursor = self._zone_page_cursor.get(zone_index, 0)
            start_process = self.sim.process
            if self.faults is None:
                flush = self._flush_fn
                while total >= page:
                    total -= page
                    start_process(flush(table[cursor % width]))
                    cursor += 1
            else:
                # Fault-aware flushes carry a power-loss cancellation
                # token and attribute program failures to the zone.
                pending = self._zone_pending.setdefault(zone_index, [])
                flush = self._flush_zone_page
                while total >= page:
                    total -= page
                    token = [False, False]  # [cancelled, program started]
                    pending.append(token)
                    start_process(flush(zone_index, table[cursor % width], token))
                    cursor += 1
            self._zone_page_cursor[zone_index] = cursor
        self._zone_residual[zone_index] = total

    def _flush_zone_page(self, zone_index: int, die: int,
                         token: list) -> Generator:
        """Fault-aware page flush: cancellable, failure-attributed."""
        wear = (self.faults.wear.unit(zone_index)
                if self.backend.faults is not None else None)
        failures = yield from self._flush_page_to_die(die, cancel=token,
                                                      wear=wear)
        pending = self._zone_pending.get(zone_index)
        if pending is not None:
            try:
                pending.remove(token)
            except ValueError:
                pass
        if failures > 0 and wear is not None:
            wear.program_failures += failures
            self._apply_wear_retirement(self.zones.zones[zone_index], wear)

    def _apply_wear_retirement(self, zone: Zone, wear) -> bool:
        """Firmware wear accounting: retire a worn zone per the plan.

        Retirement triggers on either ledger — cumulative program
        failures (``retire_*_after``) or erase count (``retire_*_erases``)
        — whichever threshold the zone crosses first. Returns True if
        the zone's state changed.
        """
        plan = self.faults.plan
        state = zone.state
        if state is ZoneState.OFFLINE:
            return False
        if ((plan.retire_offline_after
                and wear.program_failures >= plan.retire_offline_after)
                or (plan.retire_offline_erases
                    and wear.erase_count >= plan.retire_offline_erases)):
            self.zones.retire(zone, ZoneState.OFFLINE)
            self.faults.zones_offlined.inc()
            return True
        if state is ZoneState.READ_ONLY:
            return False
        if ((plan.retire_read_only_after
                and wear.program_failures >= plan.retire_read_only_after)
                or (plan.retire_read_only_erases
                    and wear.erase_count >= plan.retire_read_only_erases)):
            self.zones.retire(zone, ZoneState.READ_ONLY)
            self.faults.zones_read_only.inc()
            return True
        return False

    # ------------------------------------------------------------ power loss
    def _power_loss_drop(self, target: int) -> tuple[int, int]:
        """Drop the unpersisted buffer tail: cancel queued page flushes
        (newest first, highest zone first — a deterministic order) and
        discard sub-page residuals, rolling each zone's write pointer
        back over the lost LBAs. Returns (bytes dropped, zones rolled).
        """
        page = self._page_size
        block = self._block_size
        dropped = 0
        zones_rolled = 0
        candidates = sorted(
            set(self._zone_residual) | set(self._zone_pending), reverse=True
        )
        for zone_index in candidates:
            remaining = target - dropped
            if remaining <= 0:
                break
            lost = 0
            residual = self._zone_residual.get(zone_index, 0)
            take = min(residual, remaining)
            if take:
                self._zone_residual[zone_index] = residual - take
                lost += take
                remaining -= take
            cancelled_pages = 0
            for token in reversed(self._zone_pending.get(zone_index, ())):
                if remaining < page:
                    break
                if token[1]:  # already programming; PLP completes it
                    continue
                token[0] = True
                cancelled_pages += 1
                lost += page
                remaining -= page
            if cancelled_pages:
                self._zone_page_cursor[zone_index] = (
                    self._zone_page_cursor.get(zone_index, 0) - cancelled_pages
                )
            if lost:
                dropped += lost
                rolled = self.zones.power_loss_rollback(
                    self.zones.zones[zone_index], lost // block
                )
                if rolled:
                    zones_rolled += 1
        return dropped, zones_rolled

    def _recovery_ns(self, units: int) -> int:
        return units * self.faults.plan.recovery_per_zone_ns

    def _drop_residual(self, zone_index: int) -> None:
        """Discard a partial buffered page (zone reset path)."""
        residual = self._zone_residual.pop(zone_index, 0)
        if residual:
            self.buffer.get(residual)
            if self.observing:
                self._wbuf_gauge.set(self.buffer.level)
        self._zone_page_cursor.pop(zone_index, None)

    # ------------------------------------------------------------- zone mgmt
    def _exec_zone_mgmt(self, command: Command, cid: int = 0) -> Generator:
        zone = self.zones.zone_at_start(command.slba)
        if zone is None:
            # Out-of-range ZSLBA is an addressing error; an in-range LBA
            # that is not a zone start is a malformed field (QEMU's
            # zns_get_zone_by_slba ordering).
            in_range = self.zones.zone_containing(command.slba) is not None
            yield self.sim.timeout(self.profile.zone_open_ns)
            return self._complete(
                command,
                Status.INVALID_FIELD if in_range else Status.LBA_OUT_OF_RANGE,
                cid=cid,
            )
        if zone.index in self._mgmt_busy:
            yield self.sim.timeout(self.profile.zone_open_ns)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        action = command.action
        if action is ZoneAction.OPEN:
            yield from self._quick_mgmt(self.profile.zone_open_ns, "open", cid)
            return self._complete(command, self.zones.open(zone), cid=cid)
        elif action is ZoneAction.CLOSE:
            yield from self._quick_mgmt(self.profile.zone_close_ns, "close", cid)
            return self._complete(command, self.zones.close(zone), cid=cid)
        elif action is ZoneAction.FINISH:
            return (yield from self._exec_finish(zone, command, cid))
        elif action is ZoneAction.RESET:
            return (yield from self._exec_reset(zone, command, cid))
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown zone action {action}")

    def _quick_mgmt(self, nominal_ns: int, name: str = "mgmt",
                    cid: int = 0) -> Generator:
        queued_at = self.sim.now
        req = self.firmware.request(PRIO_IO)
        yield req
        granted_at = self.sim.now
        yield self.sim.timeout(self._mgmt_jitter.jitter(nominal_ns))
        self.firmware.release(req)
        if self.tracer.enabled:
            if granted_at > queued_at:
                self.tracer.span("queue", "firmware.wait", queued_at,
                                 granted_at, track="firmware", cid=cid)
            self.tracer.span("firmware", f"{name}.service", granted_at,
                             self.sim.now, track="firmware", cid=cid)

    def _exec_finish(self, zone: Zone, command: Command,
                     cid: int = 0) -> Generator:
        # Zone Finish is legal from every writable-lifecycle state (the
        # spec's ZSE/ZSIO/ZSEO/ZSC→ZSF arcs): an EMPTY zone pads its
        # whole writable capacity, and finishing a FULL zone is an
        # idempotent no-op that pays only the management handshake.
        if zone.state is ZoneState.FULL:
            yield from self._quick_mgmt(self.profile.zone_open_ns, "finish", cid)
            status, _ = self.zones.finish(zone)
            return self._complete(command, status, cid=cid)
        if zone.state not in (
            ZoneState.EMPTY, ZoneState.IMPLICIT_OPEN,
            ZoneState.EXPLICIT_OPEN, ZoneState.CLOSED,
        ):
            yield from self._quick_mgmt(self.profile.zone_open_ns, "finish", cid)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        remaining_bytes = self.namespace.bytes_of(zone.remaining_lbas)
        work = self._mgmt_jitter.jitter(self.profile.finish_work_ns(remaining_bytes))
        chunk_ns = max(
            1,
            round(
                self.profile.finish_chunk_bytes * 1e9 / self.profile.finish_pad_bandwidth
            ),
        )
        self._mgmt_busy.add(zone.index)
        try:
            yield from self._mgmt_work(work, chunk_ns, "finish", cid)
        finally:
            self._mgmt_busy.discard(zone.index)
        status, _ = self.zones.finish(zone)
        return self._complete(command, status, cid=cid)

    def _exec_reset(self, zone: Zone, command: Command,
                    cid: int = 0) -> Generator:
        if zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            yield from self._quick_mgmt(self.profile.zone_open_ns, "reset", cid)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        occupied = zone.occupancy_lbas - zone.finished_pad_lbas
        pad = zone.finished_pad_lbas
        work = self._mgmt_jitter.jitter(
            self.profile.reset_work_ns(occupied, pad, self.namespace.block_size)
        )
        self._mgmt_busy.add(zone.index)
        try:
            yield from self._mgmt_work(work, self.profile.reset_chunk_ns,
                                       "reset", cid)
            if self.faults is not None:
                injector = self.faults
                wear = injector.wear.unit(zone.index)
                # A reset erases the zone's stripe: the erase can retry
                # (extra die-held time folded into the reset latency) or
                # exhaust its budget, in which case the firmware retires
                # the zone OFFLINE instead of recycling it. Failure odds
                # follow the zone's erase-count curve (DESIGN.md §17).
                retries, bad = injector.erase_outcome(wear)
                if retries:
                    yield self.sim.timeout(retries * self.profile.nand.erase_ns)
                if bad:
                    self.zones.retire(zone, ZoneState.OFFLINE)
                    injector.zones_offlined.inc()
                    self._drop_residual(zone.index)
                    return self._complete(command, Status.SUCCESS, cid=cid)
                injector.note_erase(wear)
                self.zones.reset(zone)
                self._drop_residual(zone.index)
                # Heavily cycled zones retire on erase count alone, even
                # before programs start failing.
                self._apply_wear_retirement(zone, wear)
                return self._complete(command, Status.SUCCESS, cid=cid)
        finally:
            self._mgmt_busy.discard(zone.index)
        self.zones.reset(zone)
        self._drop_residual(zone.index)
        return self._complete(command, Status.SUCCESS, cid=cid)

    def _mgmt_work(self, work_ns: int, chunk_ns: int, name: str = "mgmt",
                   cid: int = 0) -> Generator:
        """Run firmware work at lower priority than I/O mapping updates.

        Holds the firmware engine for the whole operation (management
        operations serialize) and, between work chunks, pays for any
        mapping-update debt that I/O completions generated meanwhile —
        I/O preempts management, never the other way around.
        """
        queued_at = self.sim.now
        req = self.firmware.request(PRIO_MGMT)
        yield req
        granted_at = self.sim.now
        try:
            done_work = 0
            debt_paid = 0
            debt_mark = self._fw_debt_ns
            while done_work < work_ns:
                step = min(chunk_ns, work_ns - done_work)
                new_debt = self._fw_debt_ns - debt_mark
                debt_mark = self._fw_debt_ns
                yield self.sim.timeout(step + new_debt)
                done_work += step
                debt_paid += new_debt
        finally:
            self.firmware.release(req)
            if self.tracer.enabled:
                if granted_at > queued_at:
                    self.tracer.span("queue", "firmware.wait", queued_at,
                                     granted_at, track="firmware", cid=cid)
                self.tracer.span("firmware", f"{name}.work", granted_at,
                                 self.sim.now, track="firmware", cid=cid,
                                 io_debt_ns=debt_paid)
