"""The simulated ZNS SSD.

Command flow (see DESIGN.md §5 for the calibration story):

* every command first passes through the **controller front-end**, a
  single-server resource whose per-command service time sets the per-op
  IOPS caps (write ≈ 186 K/s, append ≈ 132 K/s, read ≈ 424 K/s);
* **writes/appends** are then DMA'd and admitted into the capacitor-backed
  write buffer (completion happens here — hence ~11 µs write latency);
  a background flusher programs buffered pages to the zone's die stripe,
  capping sustained bandwidth at the flash program rate and creating the
  die backlogs that inflate concurrent read latency (§III-F);
* **reads** fan out to the dies holding the spanned pages (NAND tR + bus
  transfer), queueing FIFO behind any flush programs at those dies;
* **zone management** runs on the firmware engine. Management work is
  *lower priority than I/O mapping updates*: each completed I/O adds
  mapping-update debt that stalls in-progress management work, so
  concurrent I/O inflates ``reset`` latency while resets never delay I/O
  (Observations #12/#13).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..flash.backend import FlashBackend
from ..hostif.commands import Command, Completion, Opcode, ZoneAction
from ..hostif.namespace import LBA_4K, LbaFormat, Namespace
from ..hostif.status import Status
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_NS, Counter, MetricsRegistry
from ..obs.tracer import Tracer, resolve_tracer
from ..sim.engine import Event, Simulator
from ..sim.resources import Container, Resource
from ..sim.rng import LatencySampler, StreamFactory
from .ftl import ZoneStriping
from .profiles import DeviceProfile
from .spec import ZoneState
from .statemachine import ZoneManager
from .zone import Zone

__all__ = ["ZnsDevice", "DeviceCounters", "PRIO_IO", "PRIO_MGMT"]

#: Firmware/flash scheduling priorities (lower value served first).
PRIO_IO = 0
PRIO_MGMT = 10


class DeviceCounters:
    """Completion accounting, backed by a :class:`MetricsRegistry`.

    Historically this held plain dicts; the registry is now the single
    source of truth and the dict-style attributes (``completed``,
    ``errors``, ``bytes_written``, ``bytes_read``) are read-only views
    kept for the existing callers and tests.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._completed = {
            op: self.metrics.counter(f"device.completed.{op.value}")
            for op in Opcode
        }
        self._bytes_written = self.metrics.counter("device.bytes_written")
        self._bytes_read = self.metrics.counter("device.bytes_read")
        self._errors: dict[Status, Counter] = {}

    def record(self, completion: Completion, nbytes: int) -> None:
        if completion.ok:
            # Direct ``.value`` bumps (amounts are known non-negative):
            # this runs once per completed command even with observability
            # disabled, so it must stay as close to a plain ``+=`` as the
            # registry backing allows.
            opcode = completion.command.opcode
            self._completed[opcode].value += 1
            if opcode in (Opcode.WRITE, Opcode.APPEND):
                self._bytes_written.value += nbytes
            elif opcode is Opcode.READ:
                self._bytes_read.value += nbytes
        else:
            counter = self._errors.get(completion.status)
            if counter is None:
                counter = self.metrics.counter(
                    f"device.errors.{completion.status.value}"
                )
                self._errors[completion.status] = counter
            counter.inc()

    @property
    def completed(self) -> dict[Opcode, int]:
        return {op: counter.value for op, counter in self._completed.items()}

    @property
    def errors(self) -> dict[Status, int]:
        return {status: c.value for status, c in self._errors.items() if c.value}

    @property
    def bytes_written(self) -> int:
        return self._bytes_written.value

    @property
    def bytes_read(self) -> int:
        return self._bytes_read.value


class ZnsDevice:
    """A calibrated, mechanistic ZNS SSD model."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        lba_format: LbaFormat = LBA_4K,
        streams: Optional[StreamFactory] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.profile = profile
        streams = streams or StreamFactory()
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: True when the caller asked for observability. Hot paths gate
        #: per-command histogram/gauge updates on this so default runs
        #: pay only the always-on DeviceCounters facade.
        self.observing = metrics is not None or self.tracer.enabled
        self.tracer.register_process(f"zns:{profile.name}")
        self.namespace = Namespace(profile.capacity_bytes, lba_format)
        block = self.namespace.block_size
        self.zones = ZoneManager(
            num_zones=profile.num_zones,
            size_lbas=profile.zone_size_bytes // block,
            cap_lbas=profile.zone_cap_bytes // block,
            max_open=profile.max_open_zones,
            max_active=profile.max_active_zones,
        )
        self.zones.on_transition = self._on_zone_transition
        self.backend = FlashBackend(
            sim, profile.geometry, profile.nand, profile.channel_bandwidth,
            tracer=self.tracer,
            metrics=self.metrics if self.observing else None,
        )
        self.striping = ZoneStriping(
            profile.geometry, profile.zone_size_bytes, profile.stripe_width
        )
        self.controller = Resource(sim, capacity=1, name="controller")
        self.firmware = Resource(sim, capacity=1, name="firmware")
        self.buffer = Container(sim, capacity=profile.write_buffer_bytes, name="wbuf")
        self._io_jitter = LatencySampler(streams.stream("zns-io"), profile.jitter_sigma)
        self._mgmt_jitter = LatencySampler(
            streams.stream("zns-mgmt"), profile.mgmt_jitter_sigma
        )
        self.counters = DeviceCounters(self.metrics)
        self._latency_hist = {
            op: self.metrics.histogram(
                f"device.latency_ns.{op.value}", DEFAULT_LATENCY_BUCKETS_NS
            )
            for op in Opcode
        }
        self._wbuf_gauge = self.metrics.gauge("device.wbuf.level_bytes")
        self._open_gauge = self.metrics.gauge("device.zones.open")
        self._active_gauge = self.metrics.gauge("device.zones.active")
        self._transition_counter = self.metrics.counter("device.zones.transitions")
        #: Command id of the most recent ``submit`` (host stacks read it
        #: to tie their own spans to the device-assigned trace id).
        self.last_cid = 0
        self._inflight_writes: dict[int, int] = {}
        self._mgmt_busy: set[int] = set()
        self._zone_residual: dict[int, int] = {}
        self._zone_page_cursor: dict[int, int] = {}
        #: Cumulative firmware mapping-update work generated by I/O; see
        #: the priority note in the module docstring.
        self._fw_debt_ns = 0

    # ------------------------------------------------------------------ api
    def submit(self, command: Command) -> Event:
        """Begin executing a command; the event fires with a Completion."""
        if command.submitted_at < 0:
            command.submitted_at = self.sim.now
        cid = (
            self.tracer.begin_command(command.opcode.value)
            if self.tracer.enabled
            else 0
        )
        self.last_cid = cid
        opcode = command.opcode
        if opcode is Opcode.READ:
            gen = self._exec_read(command, cid)
        elif opcode is Opcode.WRITE:
            gen = self._exec_write(command, cid)
        elif opcode is Opcode.APPEND:
            gen = self._exec_append(command, cid)
        elif opcode is Opcode.ZONE_MGMT:
            gen = self._exec_zone_mgmt(command, cid)
        else:
            raise ValueError(
                f"ZNS device does not support {command.opcode.value} "
                "(reclaim whole zones with reset instead of trim)"
            )
        # The process event itself is the completion event (the generator
        # returns the Completion): one event instead of a done-event plus
        # a never-watched process event per command.
        return self.sim.process(gen)

    def report_zones(self) -> list[Zone]:
        """Zone report (the nvme-cli ``zns report-zones`` equivalent)."""
        return list(self.zones.zones)

    def force_fill(self, zone_index: int, nlb: int) -> Status:
        """Test/bench fixture: set a zone's occupancy without timed I/O.

        Equivalent (for the state machine and latency model) to writing
        ``nlb`` blocks and closing the zone — the shortcut the occupancy
        benchmarks use instead of issuing ~270 K real 4 KiB writes per
        zone. Unit tests assert the equivalence on small zones.
        """
        zone = self.zones.zones[zone_index]
        if zone.state is not ZoneState.EMPTY:
            return Status.INVALID_ZONE_STATE_TRANSITION
        if nlb < 0 or nlb > zone.cap_lbas:
            return Status.ZONE_BOUNDARY_ERROR
        if nlb == 0:
            return Status.SUCCESS
        status, _ = self.zones.admit_write(zone, zone.wp, nlb)
        if not status.ok:
            return status
        if zone.state is not ZoneState.FULL:
            self.zones.close(zone)
        block = self.namespace.block_size
        self._zone_page_cursor[zone_index] = (nlb * block) // self.profile.geometry.page_size
        return Status.SUCCESS

    def state_snapshot(self) -> dict:
        """Fixture: capture the quiescent device state for :meth:`restore_state`.

        Captures everything that makes later commands behave differently
        — zone states/write pointers, per-zone flush residuals and page
        cursors, and the accumulated firmware mapping debt. RNG streams
        and observability counters are deliberately *not* captured:
        restoring rewinds the device, not the experiment's statistics.

        Requires a quiescent device: no in-flight commands and no pending
        page flushes (``sim.run()`` with no deadline drains everything;
        stable sub-page residuals may remain buffered and are captured).
        The occupancy sweeps use this to rewind between repetitions
        instead of replaying their fill sequences.
        """
        self._require_quiescent("state_snapshot")
        return {
            "zones": self.zones.state_snapshot(),
            "residual": dict(self._zone_residual),
            "page_cursor": dict(self._zone_page_cursor),
            "fw_debt_ns": self._fw_debt_ns,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Reinstate a :meth:`state_snapshot` image (quiescent device only)."""
        self._require_quiescent("restore_state")
        self.zones.restore_state(snapshot["zones"])
        self._zone_residual = dict(snapshot["residual"])
        self._zone_page_cursor = dict(snapshot["page_cursor"])
        self._fw_debt_ns = snapshot["fw_debt_ns"]
        # At quiescence the buffered bytes are exactly the stable
        # sub-page residuals; reinstate the snapshot's.
        self.buffer.force_level(sum(self._zone_residual.values()))
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)

    def _require_quiescent(self, what: str) -> None:
        if self._mgmt_busy or any(self._inflight_writes.values()):
            raise RuntimeError(
                f"{what} requires a quiescent device: commands in flight"
            )
        residual = sum(self._zone_residual.values())
        if self.buffer.level != residual:
            raise RuntimeError(
                f"{what} requires a quiescent device: "
                f"{self.buffer.level - residual} buffered bytes await "
                "page flush; run the simulator to exhaustion first"
            )

    def inject_zone_failure(self, zone_index: int, state: ZoneState) -> None:
        """Failure injection: mark a zone READ_ONLY or OFFLINE.

        READ_ONLY zones reject writes/appends/finish but still serve
        reads; OFFLINE zones reject everything including reset. Used by
        the failure-injection tests and available to applications that
        model device wear (paper §II-A).
        """
        self.zones.force_state(self.zones.zones[zone_index], state)

    def debug_prefill_buffer(self, zone_index: int = 0, fraction: float = 1.0) -> int:
        """Experiment warm start: load the write buffer as if the host had
        already written ``fraction`` of its capacity to ``zone_index``.

        Write workloads that overdrive the flash program rate only show
        their steady-state (backpressured) throughput once the buffer is
        full — a transient of up to ~1 s of simulated time. Pre-filling
        removes the transient so short measurement windows report
        steady-state bandwidth exactly. Returns the bytes pre-filled.
        """
        if not 0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        page = self.profile.geometry.page_size
        nbytes = int(self.profile.write_buffer_bytes * fraction) // page * page
        headroom = self.profile.write_buffer_bytes - self.buffer.level
        nbytes = min(nbytes, headroom // page * page)
        if nbytes <= 0:
            return 0
        self.buffer.put(nbytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        self._enqueue_flush(zone_index, nbytes)
        return nbytes

    # --------------------------------------------------------------- helpers
    def _on_zone_transition(self, zone: Zone, old: ZoneState,
                            new: ZoneState) -> None:
        if not self.observing:
            return
        self._open_gauge.set(self.zones.open_count)
        self._active_gauge.set(self.zones.active_count)
        self._transition_counter.inc()
        if self.tracer.enabled:
            self.tracer.instant(
                "zone", f"{old.name}->{new.name}", self.sim.now,
                track="zones", zone=zone.index,
                open=self.zones.open_count, active=self.zones.active_count,
            )

    def _complete(self, command: Command, status: Status,
                  nbytes: int = 0, assigned_lba: Optional[int] = None,
                  cid: int = 0) -> Completion:
        completion = Completion(
            command=command,
            status=status,
            completed_at=self.sim.now,
            assigned_lba=assigned_lba,
        )
        self.counters.record(completion, nbytes)
        if self.observing and status.ok and command.submitted_at >= 0:
            self._latency_hist[command.opcode].observe(
                self.sim.now - command.submitted_at
            )
        if self.tracer.enabled:
            self.tracer.span(
                "command", command.opcode.value,
                command.submitted_at if command.submitted_at >= 0 else self.sim.now,
                self.sim.now, track="commands", cid=cid,
                opcode=command.opcode.value, status=status.value,
                slba=command.slba, nlb=command.nlb,
            )
        return completion

    def _controller_service(self, service_ns: int, cid: int = 0) -> Generator:
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = self.controller.request(PRIO_IO)
        yield req
        granted_at = self.sim.now if traced else 0
        yield self.sim.timeout(self._io_jitter.jitter(service_ns))
        self.controller.release(req)
        if traced:
            if granted_at > queued_at:
                self.tracer.span("queue", "controller.wait", queued_at,
                                 granted_at, track="controller", cid=cid)
            self.tracer.span("controller", "controller.service", granted_at,
                             self.sim.now, track="controller", cid=cid)

    def _zone_for_io(self, command: Command) -> tuple[Optional[Zone], Status]:
        nlb = command.nlb
        if command.slba + nlb > self.namespace.capacity_lbas:
            return None, Status.LBA_OUT_OF_RANGE
        zone = self.zones.zone_containing(command.slba)
        if zone is None:
            return None, Status.LBA_OUT_OF_RANGE
        if command.slba + nlb > zone.end:
            return None, Status.ZONE_BOUNDARY_ERROR
        return zone, Status.SUCCESS

    def _note_io_fw_work(self, opcode: Opcode) -> None:
        self._fw_debt_ns += self.profile.fw_io_ns(opcode)

    # ------------------------------------------------------------------ read
    def _exec_read(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.READ, nbytes, command.nlb, self.namespace.block_size
        )
        yield from self._controller_service(service, cid)
        if status.ok and zone.state is ZoneState.OFFLINE:
            status = Status.ZONE_IS_OFFLINE  # data is gone; READ_ONLY still reads
        if not status.ok:
            return self._complete(command, status, cid=cid)
        offset = self.namespace.bytes_of(command.slba - zone.zslba)
        spans = self.striping.dies_for_span(zone.index, offset, nbytes)
        nand_started = self.sim.now if self.tracer.enabled else 0
        reads = [
            self.sim.process(
                self.backend.read_page(die, priority=PRIO_IO,
                                       transfer_bytes=take, cid=cid)
            )
            for die, take in spans
        ]
        if len(reads) == 1:
            yield reads[0]
        else:
            yield self.sim.all_of(reads)
        if self.tracer.enabled:
            self.tracer.span("nand", "read.fanout", nand_started, self.sim.now,
                             track="nand", cid=cid, dies=len(spans))
        self._note_io_fw_work(Opcode.READ)
        return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)

    # ----------------------------------------------------------------- write
    def _exec_write(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.WRITE, nbytes, command.nlb, self.namespace.block_size
        )
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if status.ok and self._inflight_writes.get(zone.index, 0) > 0:
            # One in-flight write per zone: the device may reorder
            # requests internally, so a second concurrent write risks a
            # sequential-write violation and is rejected (§II-B).
            status = Status.ZONE_INVALID_WRITE
        if not status.ok:
            yield from self._controller_service(service, cid)
            return self._complete(command, status, cid=cid)
        self._inflight_writes[zone.index] = self._inflight_writes.get(zone.index, 0) + 1
        try:
            traced = self.tracer.enabled
            queued_at = self.sim.now if traced else 0
            req = self.controller.request(PRIO_IO)
            yield req
            granted_at = self.sim.now if traced else 0
            status, opened = self.zones.admit_write(zone, command.slba, command.nlb)
            if status.ok and opened:
                service += self.profile.implicit_open_write_ns
            yield self.sim.timeout(self._io_jitter.jitter(service))
            self.controller.release(req)
            if traced:
                if granted_at > queued_at:
                    self.tracer.span("queue", "controller.wait", queued_at,
                                     granted_at, track="controller", cid=cid)
                self.tracer.span("controller", "controller.service", granted_at,
                                 self.sim.now, track="controller", cid=cid)
            if not status.ok:
                return self._complete(command, status, cid=cid)
            admit_started = self.sim.now if traced else 0
            yield self.sim.timeout(
                self.profile.dma_ns(nbytes) + self.profile.write_admit_ns
            )
            yield self.buffer.put(nbytes)
            if self.observing:
                self._wbuf_gauge.set(self.buffer.level)
            if traced:
                self.tracer.span("buffer", "write.admit", admit_started,
                                 self.sim.now, track="buffer", cid=cid,
                                 nbytes=nbytes)
            self._enqueue_flush(zone.index, nbytes)
            self._note_io_fw_work(Opcode.WRITE)
            return self._complete(command, Status.SUCCESS, nbytes=nbytes, cid=cid)
        finally:
            self._inflight_writes[zone.index] -= 1

    # ---------------------------------------------------------------- append
    def _exec_append(self, command: Command, cid: int = 0) -> Generator:
        zone, status = self._zone_for_io(command)
        nbytes = self.namespace.bytes_of(command.nlb)
        service = self.profile.cmd_service_ns(
            Opcode.APPEND, nbytes, command.nlb, self.namespace.block_size
        )
        if status.ok and zone.index in self._mgmt_busy:
            status = Status.INVALID_ZONE_STATE_TRANSITION
        if not status.ok:
            yield from self._controller_service(service, cid)
            return self._complete(command, status, cid=cid)
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        req = self.controller.request(PRIO_IO)
        yield req
        granted_at = self.sim.now if traced else 0
        status, opened, assigned = self.zones.admit_append(
            zone, command.slba, command.nlb
        )
        if status.ok and opened:
            service += self.profile.implicit_open_append_ns
        yield self.sim.timeout(self._io_jitter.jitter(service))
        self.controller.release(req)
        if traced:
            if granted_at > queued_at:
                self.tracer.span("queue", "controller.wait", queued_at,
                                 granted_at, track="controller", cid=cid)
            self.tracer.span("controller", "controller.service", granted_at,
                             self.sim.now, track="controller", cid=cid)
        if not status.ok:
            return self._complete(command, status, cid=cid)
        admit_started = self.sim.now if traced else 0
        yield self.sim.timeout(
            self.profile.dma_ns(nbytes)
            + self.profile.write_admit_ns
            + self.profile.append_alloc_ns
        )
        yield self.buffer.put(nbytes)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)
        if traced:
            self.tracer.span("buffer", "append.admit", admit_started,
                             self.sim.now, track="buffer", cid=cid, nbytes=nbytes)
        self._enqueue_flush(zone.index, nbytes)
        self._note_io_fw_work(Opcode.APPEND)
        return self._complete(command, Status.SUCCESS, nbytes=nbytes,
                              assigned_lba=assigned, cid=cid)

    # -------------------------------------------------------------- flushing
    def _enqueue_flush(self, zone_index: int, nbytes: int) -> None:
        """Queue buffered bytes for programming to the zone's die stripe."""
        page = self.profile.geometry.page_size
        total = self._zone_residual.get(zone_index, 0) + nbytes
        while total >= page:
            total -= page
            cursor = self._zone_page_cursor.get(zone_index, 0)
            self._zone_page_cursor[zone_index] = cursor + 1
            die = self.striping.die_for_page(zone_index, cursor)
            self.sim.process(self._flush_page(die))
        self._zone_residual[zone_index] = total

    def _flush_page(self, die: int) -> Generator:
        yield from self.backend.program_page(die, priority=PRIO_IO, label="flush")
        yield self.buffer.get(self.profile.geometry.page_size)
        if self.observing:
            self._wbuf_gauge.set(self.buffer.level)

    def _drop_residual(self, zone_index: int) -> None:
        """Discard a partial buffered page (zone reset path)."""
        residual = self._zone_residual.pop(zone_index, 0)
        if residual:
            self.buffer.get(residual)
            if self.observing:
                self._wbuf_gauge.set(self.buffer.level)
        self._zone_page_cursor.pop(zone_index, None)

    # ------------------------------------------------------------- zone mgmt
    def _exec_zone_mgmt(self, command: Command, cid: int = 0) -> Generator:
        zone = self.zones.zone_at_start(command.slba)
        if zone is None:
            yield self.sim.timeout(self.profile.zone_open_ns)
            return self._complete(command, Status.INVALID_FIELD, cid=cid)
        if zone.index in self._mgmt_busy:
            yield self.sim.timeout(self.profile.zone_open_ns)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        action = command.action
        if action is ZoneAction.OPEN:
            yield from self._quick_mgmt(self.profile.zone_open_ns, "open", cid)
            return self._complete(command, self.zones.open(zone), cid=cid)
        elif action is ZoneAction.CLOSE:
            yield from self._quick_mgmt(self.profile.zone_close_ns, "close", cid)
            return self._complete(command, self.zones.close(zone), cid=cid)
        elif action is ZoneAction.FINISH:
            return (yield from self._exec_finish(zone, command, cid))
        elif action is ZoneAction.RESET:
            return (yield from self._exec_reset(zone, command, cid))
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown zone action {action}")

    def _quick_mgmt(self, nominal_ns: int, name: str = "mgmt",
                    cid: int = 0) -> Generator:
        queued_at = self.sim.now
        req = self.firmware.request(PRIO_IO)
        yield req
        granted_at = self.sim.now
        yield self.sim.timeout(self._mgmt_jitter.jitter(nominal_ns))
        self.firmware.release(req)
        if self.tracer.enabled:
            if granted_at > queued_at:
                self.tracer.span("queue", "firmware.wait", queued_at,
                                 granted_at, track="firmware", cid=cid)
            self.tracer.span("firmware", f"{name}.service", granted_at,
                             self.sim.now, track="firmware", cid=cid)

    def _exec_finish(self, zone: Zone, command: Command,
                     cid: int = 0) -> Generator:
        # The paper: finish is not permitted on an EMPTY or FULL zone.
        if zone.state not in (
            ZoneState.IMPLICIT_OPEN, ZoneState.EXPLICIT_OPEN, ZoneState.CLOSED
        ) or zone.occupancy_lbas == 0:
            yield from self._quick_mgmt(self.profile.zone_open_ns, "finish", cid)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        remaining_bytes = self.namespace.bytes_of(zone.remaining_lbas)
        work = self._mgmt_jitter.jitter(self.profile.finish_work_ns(remaining_bytes))
        chunk_ns = max(
            1,
            round(
                self.profile.finish_chunk_bytes * 1e9 / self.profile.finish_pad_bandwidth
            ),
        )
        self._mgmt_busy.add(zone.index)
        try:
            yield from self._mgmt_work(work, chunk_ns, "finish", cid)
        finally:
            self._mgmt_busy.discard(zone.index)
        status, _ = self.zones.finish(zone)
        return self._complete(command, status, cid=cid)

    def _exec_reset(self, zone: Zone, command: Command,
                    cid: int = 0) -> Generator:
        if zone.state in (ZoneState.READ_ONLY, ZoneState.OFFLINE):
            yield from self._quick_mgmt(self.profile.zone_open_ns, "reset", cid)
            return self._complete(command, Status.INVALID_ZONE_STATE_TRANSITION,
                                  cid=cid)
        occupied = zone.occupancy_lbas - zone.finished_pad_lbas
        pad = zone.finished_pad_lbas
        work = self._mgmt_jitter.jitter(
            self.profile.reset_work_ns(occupied, pad, self.namespace.block_size)
        )
        self._mgmt_busy.add(zone.index)
        try:
            yield from self._mgmt_work(work, self.profile.reset_chunk_ns,
                                       "reset", cid)
        finally:
            self._mgmt_busy.discard(zone.index)
        self.zones.reset(zone)
        self._drop_residual(zone.index)
        return self._complete(command, Status.SUCCESS, cid=cid)

    def _mgmt_work(self, work_ns: int, chunk_ns: int, name: str = "mgmt",
                   cid: int = 0) -> Generator:
        """Run firmware work at lower priority than I/O mapping updates.

        Holds the firmware engine for the whole operation (management
        operations serialize) and, between work chunks, pays for any
        mapping-update debt that I/O completions generated meanwhile —
        I/O preempts management, never the other way around.
        """
        queued_at = self.sim.now
        req = self.firmware.request(PRIO_MGMT)
        yield req
        granted_at = self.sim.now
        try:
            done_work = 0
            debt_paid = 0
            debt_mark = self._fw_debt_ns
            while done_work < work_ns:
                step = min(chunk_ns, work_ns - done_work)
                new_debt = self._fw_debt_ns - debt_mark
                debt_mark = self._fw_debt_ns
                yield self.sim.timeout(step + new_debt)
                done_work += step
                debt_paid += new_debt
        finally:
            self.firmware.release(req)
            if self.tracer.enabled:
                if granted_at > queued_at:
                    self.tracer.span("queue", "firmware.wait", queued_at,
                                     granted_at, track="firmware", cid=cid)
                self.tracer.span("firmware", f"{name}.work", granted_at,
                                 self.sim.now, track="firmware", cid=cid,
                                 io_debt_ns=debt_paid)
