"""The simulated ZNS SSD: zones, state machine, profiles, device model."""

from .calibrate import PAPER_ANCHORS, Anchor, AnchorResult, measure_anchors
from .device import PRIO_IO, PRIO_MGMT, DeviceCounters, ZnsDevice
from .ftl import ZoneStriping
from .inference import InterferenceReport, infer_zone_groups
from .profiles import DeviceProfile, sn640, zn540, zn540_small
from .spec import ACTIVE_STATES, OPEN_STATES, WRITABLE_STATES, ZoneState
from .statemachine import ZoneManager
from .zbd import ZoneInfo, ZonedBlockDevice
from .zone import Zone

__all__ = [
    "ACTIVE_STATES",
    "Anchor",
    "AnchorResult",
    "PAPER_ANCHORS",
    "ZoneInfo",
    "ZonedBlockDevice",
    "measure_anchors",
    "InterferenceReport",
    "infer_zone_groups",
    "DeviceCounters",
    "DeviceProfile",
    "OPEN_STATES",
    "PRIO_IO",
    "PRIO_MGMT",
    "WRITABLE_STATES",
    "Zone",
    "ZoneManager",
    "ZoneState",
    "ZoneStriping",
    "ZnsDevice",
    "sn640",
    "zn540",
    "zn540_small",
]
