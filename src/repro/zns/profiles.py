"""Device profiles: calibration constants for the mechanistic ZNS model.

A profile bundles the flash geometry/timing with the controller- and
firmware-level constants that the paper's externally observable numbers
pin down. The ``ZN540`` profile is calibrated so that the simulated
device lands on every latency/throughput figure §III reports for the
Western Digital Ultrastar DC ZN540 (see DESIGN.md §5 for the anchor list
and EXPERIMENTS.md for paper-vs-measured values).

Mechanisms, not lookup tables:

* **Controller front-end** — a single-server pipeline whose per-command
  service time is the device's per-op IOPS cap: 1/5.38 µs ≈ 186 K write
  commands/s (the paper's unmerged-write plateau), 1/7.58 µs ≈ 132 K
  appends/s, 1/2.36 µs ≈ 424 K reads/s.
* **Write buffer** — writes are acknowledged once in the capacitor-backed
  buffer (hence ~11 µs, far below NAND tPROG); a background flusher
  programs pages to dies, capping sustained bandwidth at the flash
  program rate (~1,155 MiB/s).
* **Firmware mapping engine** — a separate unit doing per-command mapping
  updates *after* completion (so I/O latency never includes it) and all
  zone-management work at lower priority (so I/O inflates reset latency,
  but not vice versa — Observations #12/#13).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..flash.geometry import KIB, MIB, FlashGeometry
from ..flash.nand import NandTiming
from ..hostif.commands import Opcode
from ..sim.engine import ms, us

__all__ = ["DeviceProfile", "zn540", "zn540_small", "sn640"]


@dataclass(frozen=True)
class DeviceProfile:
    """All structural and calibrated constants of a simulated device."""

    name: str
    geometry: FlashGeometry
    nand: NandTiming
    channel_bandwidth: int

    # -- zoned layout (ignored by the conventional device) ----------------
    zone_size_bytes: int
    zone_cap_bytes: int
    num_zones: int
    max_open_zones: int
    max_active_zones: int

    # -- controller front-end (serializing per-command service) -----------
    cmd_read_ns: int
    cmd_write_ns: int
    cmd_append_small_ns: int   # requests <= 4 KiB
    cmd_append_large_ns: int   # requests >= 8 KiB
    per_lba_ns_4k: int         # per-LBA mapping cost, 4 KiB LBA format
    per_lba_ns_512: int        # per-LBA mapping cost, 512 B LBA format
    subpage_penalty_ns: int    # firmware slow path for requests < 4 KiB

    # -- pipelined latency components (off the throughput-critical path) ---
    dma_bandwidth: int         # host<->device DMA, bytes/s
    write_admit_ns: int        # buffer admission
    append_alloc_ns: int       # append LBA-allocation surcharge
    implicit_open_write_ns: int
    implicit_open_append_ns: int

    # -- write buffer and flush ------------------------------------------
    write_buffer_bytes: int

    # -- zone management (firmware engine) ---------------------------------
    zone_open_ns: int
    zone_close_ns: int
    reset_base_ns: int         # reset cost of an empty zone
    reset_span_ns: int         # extra reset cost of a 100%-written zone
    reset_pad_span_ns: int     # extra reset cost of 100%-padded capacity
    reset_chunk_ns: int        # firmware work-chunk granularity
    finish_floor_ns: int       # finish cost at ~100% occupancy
    finish_pad_bandwidth: int  # capacity-marking rate, bytes/s
    finish_chunk_bytes: int

    # -- firmware mapping work per I/O command (drives Obs #12/#13) --------
    fw_read_ns: int
    fw_write_ns: int
    fw_append_ns: int

    # -- zone-to-die striping ----------------------------------------------
    #: Dies per zone stripe; None = stripe across every die (large-zone
    #: behaviour). Must divide the total die count. Narrow widths model
    #: small-zone/grouped devices (see repro.zns.ftl / §V, Bae et al.).
    stripe_width: "int | None" = None

    # -- conventional-FTL knobs (ignored by the ZNS device) ----------------
    # With 7% overprovisioning a fully mapped device can never exceed ~7%
    # free blocks, so both watermarks must sit below that ceiling.
    overprovision: float = 0.07
    gc_low_watermark: float = 0.03   # free-block fraction that triggers GC
    gc_high_watermark: float = 0.055  # GC stops above this free fraction

    # -- stochastics --------------------------------------------------------
    jitter_sigma: float = 0.03
    mgmt_jitter_sigma: float = 0.055

    def __post_init__(self) -> None:
        if self.zone_cap_bytes > self.zone_size_bytes:
            raise ValueError("zone capacity cannot exceed zone size")
        if self.zone_size_bytes % (4 * KIB) != 0 or self.zone_cap_bytes % (4 * KIB) != 0:
            raise ValueError("zone size/capacity must be 4 KiB multiples")
        if self.num_zones <= 0:
            raise ValueError("num_zones must be positive")
        if not 0 <= self.overprovision < 1:
            raise ValueError("overprovision must be in [0, 1)")

    # -- derived ----------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable capacity (zones × zone size)."""
        return self.num_zones * self.zone_size_bytes

    @property
    def usable_bytes(self) -> int:
        """Writable capacity (zones × zone capacity)."""
        return self.num_zones * self.zone_cap_bytes

    def cmd_service_ns(self, opcode: Opcode, nbytes: int, nlb: int, block_size: int) -> int:
        """Controller front-end service time for one command.

        The per-LBA term makes the LBA format matter (Observation #1):
        the same 4 KiB request is 1 LBA on a 4 KiB format but 8 LBAs on a
        512 B format. Sub-4 KiB requests additionally hit a firmware slow
        path.
        """
        if opcode is Opcode.READ:
            base = self.cmd_read_ns
        elif opcode is Opcode.WRITE:
            base = self.cmd_write_ns
        elif opcode is Opcode.APPEND:
            base = self.cmd_append_small_ns if nbytes <= 4 * KIB else self.cmd_append_large_ns
        else:
            raise ValueError(f"no command service time for {opcode}")
        per_lba = self.per_lba_ns_512 if block_size == 512 else self.per_lba_ns_4k
        service = base + per_lba * nlb
        if nbytes < 4 * KIB and opcode is not Opcode.READ:
            service += self.subpage_penalty_ns
        return service

    def dma_ns(self, nbytes: int) -> int:
        """Host DMA transfer time for a request payload."""
        return round(nbytes * 1e9 / self.dma_bandwidth)

    def reset_work_ns(self, occupied_lbas: int, pad_lbas: int, block_size: int) -> int:
        """Firmware unmapping work for a reset (Observation #10).

        Linear in the *fraction* of capacity that was written (real
        mappings) and in the fraction that was padding marks from a
        finish (cheaper per LBA).
        """
        cap_lbas = self.zone_cap_bytes // block_size
        occupied_frac = occupied_lbas / cap_lbas
        pad_frac = pad_lbas / cap_lbas
        return round(
            self.reset_base_ns
            + self.reset_span_ns * occupied_frac
            + self.reset_pad_span_ns * pad_frac
        )

    def finish_work_ns(self, remaining_bytes: int) -> int:
        """Firmware capacity-marking work for a finish (Observation #10)."""
        return self.finish_floor_ns + round(
            remaining_bytes * 1e9 / self.finish_pad_bandwidth
        )

    def fw_io_ns(self, opcode: Opcode) -> int:
        """Post-completion mapping-update work for one I/O command."""
        if opcode is Opcode.READ:
            return self.fw_read_ns
        if opcode is Opcode.WRITE:
            return self.fw_write_ns
        if opcode is Opcode.APPEND:
            return self.fw_append_ns
        raise ValueError(f"no firmware I/O cost for {opcode}")

    def scaled(self, **overrides) -> "DeviceProfile":
        """A copy with structural overrides (e.g. fewer zones for tests).

        Latency constants are untouched, so a scaled device preserves all
        per-operation behaviour; only capacity-derived quantities change.
        """
        return replace(self, **overrides)


def zn540(**overrides) -> DeviceProfile:
    """The calibrated Western Digital Ultrastar DC ZN540 1 TB profile.

    Zone layout straight from paper Table II: 2,048 MiB zones, 1,077 MiB
    zone capacity, 904 zones, 14 max open/active zones. Latency constants
    are calibrated to §III (see module docstring).
    """
    profile = DeviceProfile(
        name="WD Ultrastar DC ZN540 (simulated)",
        geometry=FlashGeometry(
            channels=8,
            dies_per_channel=4,
            planes_per_die=2,
            blocks_per_plane=548,
            pages_per_block=512,
            page_size=16 * KIB,
        ),
        nand=NandTiming(read_ns=us(65), program_ns=us(443), erase_ns=ms(3.5)),
        channel_bandwidth=800 * MIB,
        zone_size_bytes=2048 * MIB,
        zone_cap_bytes=1077 * MIB,
        num_zones=904,
        max_open_zones=14,
        max_active_zones=14,
        cmd_read_ns=2_210,
        cmd_write_ns=5_230,
        cmd_append_small_ns=7_430,
        cmd_append_large_ns=5_050,
        per_lba_ns_4k=150,
        per_lba_ns_512=800,
        subpage_penalty_ns=9_000,
        dma_bandwidth=6_400 * MIB,
        write_admit_ns=4_800,
        append_alloc_ns=2_090,
        implicit_open_write_ns=2_020,
        implicit_open_append_ns=2_830,
        write_buffer_bytes=112 * MIB,
        zone_open_ns=us(9.56),
        zone_close_ns=us(11.01),
        reset_base_ns=ms(7.0),
        reset_span_ns=ms(9.19),
        reset_pad_span_ns=ms(6.16),
        reset_chunk_ns=us(50),
        finish_floor_ns=ms(3.07),
        finish_pad_bandwidth=round(1_190 * MIB),
        finish_chunk_bytes=1 * MIB,
        fw_read_ns=1_350,
        fw_write_ns=5_000,
        fw_append_ns=6_500,
    )
    return profile.scaled(**overrides) if overrides else profile


def zn540_small(num_zones: int = 32, zone_size_bytes: int = 8 * MIB,
                zone_cap_bytes: int = 6 * MIB, **overrides) -> DeviceProfile:
    """A structurally shrunken ZN540 for fast tests and examples.

    Latency constants are identical to :func:`zn540`; only the zone
    layout shrinks, so unit tests can fill whole zones with real writes.
    """
    return zn540(
        num_zones=num_zones,
        zone_size_bytes=zone_size_bytes,
        zone_cap_bytes=zone_cap_bytes,
        **overrides,
    )


def sn640(**overrides) -> DeviceProfile:
    """The conventional-NVMe comparator (WD Ultrastar DC SN640 960 GB).

    The paper stresses that both SSDs "have the same hardware
    specifications" — so the profile shares the ZN540's flash backend and
    controller constants and differs only in the block-interface FTL
    knobs (overprovisioning, GC watermarks) that the conventional device
    model consumes.
    """
    base = zn540(
        name="WD Ultrastar DC SN640 (simulated)",
        gc_low_watermark=0.02,
        gc_high_watermark=0.07,
    )
    return base.scaled(**overrides) if overrides else base
