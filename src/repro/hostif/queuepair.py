"""Submission/completion queue pair between a host stack and a device.

The queue pair enforces the queue depth (the paper's QD) and stamps each
command with its submission time — latency is measured "from the moment a
request is submitted on the NVMe submission queue until [it] is completed
and visible on the NVMe completion queue" (§III-B), which is exactly the
interval :class:`repro.hostif.commands.Completion.latency_ns` reports.
"""

from __future__ import annotations

from typing import Generator, Protocol

from ..obs.tracer import NULL_TRACER
from ..sim.engine import Event, Simulator
from ..sim.resources import Resource
from .commands import Command, Completion

__all__ = ["DeviceTarget", "QueuePair"]


class DeviceTarget(Protocol):
    """Anything that executes NVMe commands (devices, emulator models)."""

    sim: Simulator

    def submit(self, command: Command) -> Event:
        """Begin executing a command; the event fires with a Completion."""
        ...


class QueuePair:
    """A QD-limited path from a host thread to a device."""

    def __init__(self, device: DeviceTarget, depth: int = 1):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.device = device
        self.sim = device.sim
        self.depth = depth
        self._slots = Resource(self.sim, capacity=depth, name="qp")
        self.submitted = 0
        self.completed = 0
        self.tracer = getattr(device, "tracer", NULL_TRACER)
        metrics = (
            getattr(device, "metrics", None)
            if getattr(device, "observing", False)
            else None
        )
        self._in_flight_gauge = (
            metrics.gauge("host.qd.in_flight") if metrics is not None else None
        )

    @property
    def in_flight(self) -> int:
        return self._slots.in_use

    def submit(self, command: Command) -> Generator:
        """Submit one command, blocking while the queue is full.

        Yields until completion; returns the :class:`Completion`. The
        submission timestamp is taken when the command enters the
        submission queue (i.e. after any QD wait), matching §III-B.
        """
        traced = self.tracer.enabled
        queued_at = self.sim.now if traced else 0
        slot = self._slots.request()
        yield slot
        if traced and self.sim.now > queued_at:
            self.tracer.span("queue", "qd.wait", queued_at, self.sim.now,
                             track="host", depth=self.depth)
        command.submitted_at = self.sim.now
        self.submitted += 1
        if self._in_flight_gauge is not None:
            self._in_flight_gauge.set(self._slots.in_use)
        try:
            completion: Completion = yield self.device.submit(command)
        finally:
            self._slots.release(slot)
            if self._in_flight_gauge is not None:
                self._in_flight_gauge.set(self._slots.in_use)
        self.completed += 1
        return completion
