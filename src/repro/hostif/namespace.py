"""NVMe namespace formatting: LBA formats and byte/LBA conversions.

The paper's Observation #1 is that the **LBA format** (512 B vs 4 KiB
sectors) significantly affects write and append latency. The namespace
object carries the active format and converts between bytes and LBAs, so
every command's ``nlb`` depends on the chosen format exactly as it does
on real hardware (an 8 KiB request is 16 LBAs on a 512 B format but only
2 LBAs on a 4 KiB format).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LbaFormat", "Namespace", "LBA_512", "LBA_4K"]


@dataclass(frozen=True)
class LbaFormat:
    """A supported logical-block size."""

    block_size: int

    def __post_init__(self) -> None:
        if self.block_size not in (512, 4096):
            raise ValueError(
                f"unsupported LBA format {self.block_size} (supported: 512, 4096)"
            )

    def __str__(self) -> str:  # e.g. "512B" / "4KiB"
        return "512B" if self.block_size == 512 else "4KiB"


LBA_512 = LbaFormat(512)
LBA_4K = LbaFormat(4096)


class Namespace:
    """A formatted namespace over a device's capacity."""

    def __init__(self, capacity_bytes: int, lba_format: LbaFormat = LBA_4K):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if capacity_bytes % lba_format.block_size != 0:
            raise ValueError(
                f"capacity {capacity_bytes} not a multiple of the "
                f"{lba_format.block_size} B block size"
            )
        self.capacity_bytes = capacity_bytes
        self.lba_format = lba_format

    @property
    def block_size(self) -> int:
        return self.lba_format.block_size

    @property
    def capacity_lbas(self) -> int:
        return self.capacity_bytes // self.block_size

    def lbas(self, nbytes: int) -> int:
        """Convert a byte count to an LBA count (must be aligned)."""
        if nbytes <= 0 or nbytes % self.block_size != 0:
            raise ValueError(
                f"{nbytes} bytes is not a positive multiple of the "
                f"{self.block_size} B block size"
            )
        return nbytes // self.block_size

    def bytes_of(self, nlb: int) -> int:
        """Convert an LBA count to bytes."""
        if nlb < 0:
            raise ValueError(f"nlb must be >= 0, got {nlb}")
        return nlb * self.block_size

    def lba_of_byte(self, offset: int) -> int:
        """LBA containing the given byte offset."""
        if not 0 <= offset < self.capacity_bytes:
            raise ValueError(f"byte offset {offset} out of range")
        return offset // self.block_size
