"""NVMe host interface: commands, status codes, namespaces, queue pairs."""

from .commands import Command, Completion, Opcode, ZoneAction
from .namespace import LBA_4K, LBA_512, LbaFormat, Namespace
from .queuepair import DeviceTarget, QueuePair
from .status import Status, StatusError

__all__ = [
    "Command",
    "Completion",
    "DeviceTarget",
    "LBA_4K",
    "LBA_512",
    "LbaFormat",
    "Namespace",
    "Opcode",
    "QueuePair",
    "Status",
    "StatusError",
    "ZoneAction",
]
