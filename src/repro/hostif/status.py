"""NVMe(-ZNS) completion status codes used by the device models.

A pragmatic subset of the NVMe base + Zoned Namespace Command Set status
values — every error path the paper's experiments can hit is represented.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Status", "StatusError"]


class Status(Enum):
    """Completion status of an NVMe command."""

    SUCCESS = "success"
    INVALID_FIELD = "invalid_field"
    LBA_OUT_OF_RANGE = "lba_out_of_range"
    ZONE_BOUNDARY_ERROR = "zone_boundary_error"
    ZONE_IS_FULL = "zone_is_full"
    ZONE_IS_READ_ONLY = "zone_is_read_only"
    ZONE_IS_OFFLINE = "zone_is_offline"
    ZONE_INVALID_WRITE = "zone_invalid_write"
    TOO_MANY_ACTIVE_ZONES = "too_many_active_zones"
    TOO_MANY_OPEN_ZONES = "too_many_open_zones"
    INVALID_ZONE_STATE_TRANSITION = "invalid_zone_state_transition"
    # NVMe media/data-integrity error: the read-retry ladder exhausted
    # without correcting the data. DNR — the host must not retry.
    MEDIA_UNRECOVERED_READ = "media_unrecovered_read"
    # Host-side abort after a command timeout (fault-injection runs).
    COMMAND_ABORTED = "command_aborted"


# ``status.ok`` sits on every per-command hot path; a plain member
# attribute avoids a property call (enum members accept attributes, and
# pickling by name keeps this intact across worker processes).
# ``status.retryable`` marks transient statuses the host resilience
# layer may re-submit (bounded, with backoff); media errors are DNR.
_RETRYABLE = frozenset((
    "command_aborted",
    "too_many_active_zones",
    "too_many_open_zones",
))
for _status in Status:
    _status.ok = _status is Status.SUCCESS
    _status.retryable = _status.value in _RETRYABLE
del _status


class StatusError(RuntimeError):
    """Raised by helpers that insist on a successful completion."""

    def __init__(self, status: Status, detail: str = ""):
        super().__init__(f"{status.value}{': ' + detail if detail else ''}")
        self.status = status
        self.detail = detail
