"""NVMe command and completion structures.

Commands carry LBA-denominated addresses (``slba``/``nlb``); the zone
management commands address whole zones via the zone's starting LBA.
Completions carry the status, the command, timing, and — for ``append`` —
the device-assigned LBA (the defining feature of the append operation:
the host names the zone, the device names the address).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .status import Status

__all__ = [
    "Opcode",
    "ZoneAction",
    "Command",
    "Completion",
    "make_command",
    "make_completion",
    "recycle_completion",
]


class Opcode(Enum):
    READ = "read"
    WRITE = "write"
    APPEND = "append"
    ZONE_MGMT = "zone_mgmt"
    #: NVMe Dataset Management / deallocate ("trim") — supported by the
    #: conventional device; ZNS reclaims whole zones via reset instead.
    TRIM = "trim"


class ZoneAction(Enum):
    OPEN = "open"
    CLOSE = "close"
    FINISH = "finish"
    RESET = "reset"


@dataclass
class Command:
    """A single NVMe(-ZNS) command.

    * READ / WRITE: ``slba`` + ``nlb``.
    * APPEND: ``slba`` is the zone start LBA (ZSLBA) + ``nlb``.
    * ZONE_MGMT: ``slba`` is the ZSLBA, ``action`` selects the operation.
    """

    opcode: Opcode
    slba: int = 0
    nlb: int = 0
    action: Optional[ZoneAction] = None
    submitted_at: int = -1
    tag: object = None  # opaque host cookie (job id, request id, ...)
    #: Issuing tenant's name, when the command was submitted from inside
    #: a tenant session (:mod:`repro.tenancy`). ``None`` for single-tenant
    #: hosts — the label is carried, never interpreted, by the device, so
    #: it cannot perturb simulation; tracers and SLO reports read it to
    #: attribute spans and failures to the offending tenant.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.slba < 0:
            raise ValueError(f"slba must be >= 0, got {self.slba}")
        if self.opcode is Opcode.ZONE_MGMT:
            if self.action is None:
                raise ValueError("zone management command requires an action")
            if self.nlb != 0:
                raise ValueError("zone management command takes no nlb")
        else:
            if self.action is not None:
                raise ValueError(f"{self.opcode.value} command takes no zone action")
            if self.nlb <= 0:
                raise ValueError(f"{self.opcode.value} command requires nlb >= 1")


@dataclass
class Completion:
    """The result of a command, produced by the device."""

    command: Command
    status: Status
    completed_at: int
    assigned_lba: Optional[int] = None  # append only
    merged_from: int = 1  # host-scheduler merge accounting

    @property
    def ok(self) -> bool:
        return self.status.ok

    @property
    def latency_ns(self) -> int:
        """Submission-to-completion latency, as the paper measures it."""
        if self.command.submitted_at < 0:
            raise ValueError("command was never stamped with a submission time")
        return self.completed_at - self.command.submitted_at


# ---------------------------------------------------------------- freelists
#
# Command/Completion pairs are the last per-I/O allocation after the
# engine's event pools: one of each per command, millions per sweep. The
# pools below recycle them with the same refcount discipline as the
# engine's Timeout pool (DESIGN.md §15): an object is returned to its
# freelist only when ``sys.getrefcount`` proves the recycler holds the
# sole remaining reference, so any code that retains a completion (error
# reports, host-scheduler merges, tests) keeps a live, never-reused
# object. Pools are per-process plain lists — each pool worker owns its
# own copies, so there is no cross-process aliasing to reason about.

_POOL_MAX = 512
_getrefcount = getattr(sys, "getrefcount", None)
#: getrefcount() result proving a completion is unshared at recycle time.
#: The runner recycles *during* the resumption that delivered the
#: completion, so the delivering event still holds it in ``_value`` (the
#: engine clears/pools that event right after the resumption returns).
#: Expected refs: runner slot local + delivering event's ``_value`` +
#: recycle parameter + getrefcount argument.
_COMPLETION_REFS = 4
#: Commands have no event holding them by then (the generator frames
#: that carried the command are exhausted): slot local + our local +
#: getrefcount argument.
_COMMAND_REFS = 3

_command_pool: list[Command] = []
_completion_pool: list[Completion] = []


def make_command(opcode: Opcode, slba: int, nlb: int,
                 action: Optional[ZoneAction] = None,
                 tag: object = None,
                 tenant: Optional[str] = None) -> Command:
    """Pooled :class:`Command` constructor for the per-I/O hot path.

    The recycled path skips ``__post_init__`` validation — callers are
    the access-pattern generators, whose targets are valid by
    construction (validation still runs whenever the pool is empty and a
    fresh dataclass is built).
    """
    pool = _command_pool
    if pool:
        command = pool.pop()
        command.opcode = opcode
        command.slba = slba
        command.nlb = nlb
        command.action = action
        command.submitted_at = -1
        command.tag = tag
        command.tenant = tenant
        return command
    return Command(opcode, slba=slba, nlb=nlb, action=action, tag=tag,
                   tenant=tenant)


def make_completion(command: Command, status: Status, completed_at: int,
                    assigned_lba: Optional[int] = None) -> Completion:
    """Pooled :class:`Completion` constructor (device completion path)."""
    pool = _completion_pool
    if pool:
        completion = pool.pop()
        completion.command = command
        completion.status = status
        completion.completed_at = completed_at
        completion.assigned_lba = assigned_lba
        completion.merged_from = 1
        return completion
    return Completion(command, status, completed_at, assigned_lba)


def recycle_completion(completion: Completion) -> None:
    """Return a completion (and its command, when provably unshared) to
    the freelists.

    Caller contract: the caller holds exactly one reference and never
    touches the object again after this call (reassigning the variable
    that held it is fine — by then the pool may have handed the object
    back out, possibly to the very same variable). Extra references
    anywhere — a retained error completion, a merged command, a tracing
    stack — fail the refcount guard and the object is simply left to the
    garbage collector.
    """
    if _getrefcount is None or _getrefcount(completion) != _COMPLETION_REFS:
        return
    command = completion.command
    completion.command = None
    if len(_completion_pool) < _POOL_MAX:
        _completion_pool.append(completion)
    # The slot never rereads the command after recording.
    if _getrefcount(command) == _COMMAND_REFS and len(_command_pool) < _POOL_MAX:
        command.tag = None
        command.tenant = None
        command.action = None
        command.submitted_at = -1
        _command_pool.append(command)
