"""NVMe command and completion structures.

Commands carry LBA-denominated addresses (``slba``/``nlb``); the zone
management commands address whole zones via the zone's starting LBA.
Completions carry the status, the command, timing, and — for ``append`` —
the device-assigned LBA (the defining feature of the append operation:
the host names the zone, the device names the address).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .status import Status

__all__ = ["Opcode", "ZoneAction", "Command", "Completion"]


class Opcode(Enum):
    READ = "read"
    WRITE = "write"
    APPEND = "append"
    ZONE_MGMT = "zone_mgmt"
    #: NVMe Dataset Management / deallocate ("trim") — supported by the
    #: conventional device; ZNS reclaims whole zones via reset instead.
    TRIM = "trim"


class ZoneAction(Enum):
    OPEN = "open"
    CLOSE = "close"
    FINISH = "finish"
    RESET = "reset"


@dataclass
class Command:
    """A single NVMe(-ZNS) command.

    * READ / WRITE: ``slba`` + ``nlb``.
    * APPEND: ``slba`` is the zone start LBA (ZSLBA) + ``nlb``.
    * ZONE_MGMT: ``slba`` is the ZSLBA, ``action`` selects the operation.
    """

    opcode: Opcode
    slba: int = 0
    nlb: int = 0
    action: Optional[ZoneAction] = None
    submitted_at: int = -1
    tag: object = None  # opaque host cookie (job id, request id, ...)

    def __post_init__(self) -> None:
        if self.slba < 0:
            raise ValueError(f"slba must be >= 0, got {self.slba}")
        if self.opcode is Opcode.ZONE_MGMT:
            if self.action is None:
                raise ValueError("zone management command requires an action")
            if self.nlb != 0:
                raise ValueError("zone management command takes no nlb")
        else:
            if self.action is not None:
                raise ValueError(f"{self.opcode.value} command takes no zone action")
            if self.nlb <= 0:
                raise ValueError(f"{self.opcode.value} command requires nlb >= 1")


@dataclass
class Completion:
    """The result of a command, produced by the device."""

    command: Command
    status: Status
    completed_at: int
    assigned_lba: Optional[int] = None  # append only
    merged_from: int = 1  # host-scheduler merge accounting

    @property
    def ok(self) -> bool:
        return self.status.ok

    @property
    def latency_ns(self) -> int:
        """Submission-to-completion latency, as the paper measures it."""
        if self.command.submitted_at < 0:
            raise ValueError("command was never stamped with a submission time")
        return self.completed_at - self.command.submitted_at
