"""NVMe ZNS spec-conformance driver (a pynvme ``zns_check`` workalike).

A table-driven suite that walks a device model through every zone
state-machine arc and the boundary/limit rules around it, checking the
exact completion status the spec mandates. It is the standing
correctness gate behind the paper's numbers: the latency observations
only mean something if the emulated device enforces the same contract
as the hardware the paper measured.

Three case families:

* **state matrix** — every management/I/O command issued against a zone
  placed in each of the seven states (EMPTY, IMPLICIT_OPEN,
  EXPLICIT_OPEN, CLOSED, FULL, READ_ONLY, OFFLINE), with the expected
  status *and* post-state asserted;
* **boundary** — reads/writes straddling a zone edge, the writable
  capacity, and the namespace end, pinning the ``ZONE_BOUNDARY_ERROR``
  vs ``LBA_OUT_OF_RANGE`` selection, plus write-pointer rules and
  malformed management addressing;
* **limits** — max-open/max-active admission, including the
  implicit-close eviction path and the resources freed by finish.

The driver builds a **fresh device per case** from the caller's
factory, so cases are independent and order-free. After every case on a
zoned device it calls ``zones.check_invariants()`` — a conformance case
must not merely return the right status, it must leave the open/active
accounting exact. Devices without a zone manager (``ConvDevice``) run
only the namespace-addressing cases; zone cases are reported as
explicit skips, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .commands import Command, Opcode, ZoneAction
from .status import Status

__all__ = ["CaseResult", "ConformanceReport", "ConformanceDriver"]


@dataclass
class CaseResult:
    name: str
    outcome: str  # "pass" | "fail" | "skip"
    detail: str = ""
    requires_zones: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome != "fail"


@dataclass
class ConformanceReport:
    results: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [r for r in self.results if r.outcome == "fail"]

    @property
    def skipped(self) -> list:
        return [r for r in self.results if r.outcome == "skip"]

    def summary(self) -> str:
        passed = sum(1 for r in self.results if r.outcome == "pass")
        lines = [
            f"conformance: {passed} passed, {len(self.failures)} failed, "
            f"{len(self.skipped)} skipped"
        ]
        for result in self.results:
            if result.outcome != "pass":
                lines.append(f"  [{result.outcome}] {result.name}: {result.detail}")
        return "\n".join(lines)


class _CaseFailure(Exception):
    """Internal: aborts a case with a failure detail."""


# Late import guard: repro.zns imports repro.hostif, so the state enum
# is resolved lazily to keep this module importable from either side.
def _zone_states():
    from ..zns.spec import ZoneState

    return ZoneState


def _state_matrix():
    """Expected (status, post-state) for command × source-state arcs.

    Spec references (NVMe ZNS Command Set, zone state machine §2.3–2.4):

    * Open/Close/Finish are idempotent in their target state and
      illegal from READ_ONLY/OFFLINE.
    * Finish is legal from every writable-lifecycle state — including
      ZSE→ZSF (pads the whole capacity) and ZSF→ZSF (no-op success).
    * Reset is legal from every writable-lifecycle state (ZSE→ZSE is a
      cheap no-op) and illegal from READ_ONLY/OFFLINE.
    * Writes/appends implicitly open ZSE/ZSC zones, fail with
      ZONE_IS_FULL / ZONE_IS_READ_ONLY / ZONE_IS_OFFLINE elsewhere.
    * Reads succeed in every state except OFFLINE (no valid data).
    """
    Z = _zone_states()
    S = Status
    invalid = S.INVALID_ZONE_STATE_TRANSITION
    matrix = {}

    def arc(op, state, status, post):
        matrix[(op, state)] = (status, post)

    for state in (Z.EMPTY, Z.IMPLICIT_OPEN, Z.EXPLICIT_OPEN, Z.CLOSED):
        arc("open", state, S.SUCCESS, Z.EXPLICIT_OPEN)
        arc("finish", state, S.SUCCESS, Z.FULL)
        arc("reset", state, S.SUCCESS, Z.EMPTY)
    arc("close", Z.EMPTY, invalid, Z.EMPTY)
    for state in (Z.IMPLICIT_OPEN, Z.EXPLICIT_OPEN, Z.CLOSED):
        arc("close", state, S.SUCCESS, Z.CLOSED)
    arc("open", Z.FULL, invalid, Z.FULL)
    arc("close", Z.FULL, invalid, Z.FULL)
    arc("finish", Z.FULL, S.SUCCESS, Z.FULL)
    arc("reset", Z.FULL, S.SUCCESS, Z.EMPTY)
    for state in (Z.READ_ONLY, Z.OFFLINE):
        for op in ("open", "close", "finish", "reset"):
            arc(op, state, invalid, state)

    for op in ("write", "append"):
        arc(op, Z.EMPTY, S.SUCCESS, Z.IMPLICIT_OPEN)
        arc(op, Z.IMPLICIT_OPEN, S.SUCCESS, Z.IMPLICIT_OPEN)
        arc(op, Z.EXPLICIT_OPEN, S.SUCCESS, Z.EXPLICIT_OPEN)
        arc(op, Z.CLOSED, S.SUCCESS, Z.IMPLICIT_OPEN)
        arc(op, Z.FULL, S.ZONE_IS_FULL, Z.FULL)
        arc(op, Z.READ_ONLY, S.ZONE_IS_READ_ONLY, Z.READ_ONLY)
        arc(op, Z.OFFLINE, S.ZONE_IS_OFFLINE, Z.OFFLINE)

    for state in (Z.EMPTY, Z.IMPLICIT_OPEN, Z.EXPLICIT_OPEN, Z.CLOSED,
                  Z.FULL, Z.READ_ONLY):
        arc("read", state, S.SUCCESS, state)
    arc("read", Z.OFFLINE, S.ZONE_IS_OFFLINE, Z.OFFLINE)
    return matrix


_MGMT_ACTIONS = {
    "open": ZoneAction.OPEN,
    "close": ZoneAction.CLOSE,
    "finish": ZoneAction.FINISH,
    "reset": ZoneAction.RESET,
}


class ConformanceDriver:
    """Run the conformance table against one device model.

    ``device_factory`` returns a fresh ``(sim, device)`` pair; the
    device must expose the ``DeviceCore`` submit API. A ``zones``
    attribute (the :class:`~repro.zns.statemachine.ZoneManager`) marks
    it as zoned; without one only namespace-level cases run.
    """

    def __init__(self, device_factory: Callable[[], tuple]):
        self.device_factory = device_factory

    # ---------------------------------------------------------- case table
    def cases(self) -> list:
        """``(name, requires_zones, runner)`` triples, in suite order."""
        table = []
        matrix = _state_matrix()
        for (op, state), expected in sorted(
            matrix.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            table.append((
                f"{op}.from_{state.value}", True,
                self._run_matrix_case(op, state, expected),
            ))
        for name, runner in self._scenario_cases():
            requires_zones = not name.endswith("[any-namespace]")
            table.append((name, requires_zones, runner))
        return table

    def case_names(self) -> list:
        return [name for name, _, _ in self.cases()]

    def run_case(self, name: str) -> CaseResult:
        for case_name, requires_zones, runner in self.cases():
            if case_name == name:
                return self._execute(case_name, requires_zones, runner)
        raise KeyError(f"unknown conformance case {name!r}")

    def run_all(self) -> ConformanceReport:
        report = ConformanceReport()
        for name, requires_zones, runner in self.cases():
            report.results.append(self._execute(name, requires_zones, runner))
        return report

    # ------------------------------------------------------------ plumbing
    def _execute(self, name, requires_zones, runner) -> CaseResult:
        sim, device = self.device_factory()
        if requires_zones and getattr(device, "zones", None) is None:
            return CaseResult(
                name, "skip",
                "zone arcs do not apply: device has no zone manager "
                "(conventional namespace)",
                requires_zones=True,
            )
        try:
            runner_detail = runner(sim, device) or ""
        except _CaseFailure as failure:
            return CaseResult(name, "fail", str(failure),
                              requires_zones=requires_zones)
        zones = getattr(device, "zones", None)
        if zones is not None:
            try:
                zones.check_invariants()
            except AssertionError as drift:
                return CaseResult(
                    name, "fail", f"invariant violated after case: {drift}",
                    requires_zones=requires_zones,
                )
        return CaseResult(name, "pass", runner_detail,
                          requires_zones=requires_zones)

    def _submit(self, sim, device, command: Command):
        completion = sim.run(until=device.submit(command))
        sim.run()  # drain background work (flushes) before the next step
        return completion

    def _expect(self, completion, expected: Status, context: str):
        if completion.status is not expected:
            raise _CaseFailure(
                f"{context}: expected {expected.value}, "
                f"got {completion.status.value}"
            )

    def _expect_state(self, zone, expected, context: str):
        if zone.state is not expected:
            raise _CaseFailure(
                f"{context}: expected zone state {expected.value}, "
                f"got {zone.state.value}"
            )

    def _setup(self, sim, device, zone, state) -> None:
        """Place ``zone`` into a source state via regular commands."""
        Z = _zone_states()
        if state is Z.EMPTY:
            return
        if state is Z.EXPLICIT_OPEN:
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                     action=ZoneAction.OPEN))
        self._require_ok(sim, device,
                         Command(Opcode.WRITE, slba=zone.wp, nlb=1))
        if state is Z.CLOSED:
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                     action=ZoneAction.CLOSE))
        elif state is Z.FULL:
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                     action=ZoneAction.FINISH))
        elif state in (Z.READ_ONLY, Z.OFFLINE):
            device.inject_zone_failure(zone.index, state)
        self._expect_state(zone, state, "setup")

    def _require_ok(self, sim, device, command: Command) -> None:
        completion = self._submit(sim, device, command)
        if not completion.status.ok:
            raise _CaseFailure(
                f"setup command {command.opcode.value} failed with "
                f"{completion.status.value}"
            )

    # --------------------------------------------------------- case bodies
    def _run_matrix_case(self, op, state, expected):
        def runner(sim, device):
            expected_status, expected_post = expected
            zone = device.zones.zones[0]
            self._setup(sim, device, zone, state)
            if op in _MGMT_ACTIONS:
                command = Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                  action=_MGMT_ACTIONS[op])
            elif op == "write":
                command = Command(Opcode.WRITE, slba=zone.wp, nlb=1)
            elif op == "append":
                command = Command(Opcode.APPEND, slba=zone.zslba, nlb=1)
            else:
                command = Command(Opcode.READ, slba=zone.zslba, nlb=1)
            completion = self._submit(sim, device, command)
            self._expect(completion, expected_status, f"{op} from {state.value}")
            self._expect_state(zone, expected_post, f"after {op}")

        return runner

    def _scenario_cases(self):
        Z = _zone_states()

        def zoned(name, body):
            return name, body

        def any_namespace(name, body):
            return f"{name}[any-namespace]", body

        # -- write-pointer rules ------------------------------------------
        def write_below_wp(sim, device):
            zone = device.zones.zones[0]
            self._require_ok(sim, device,
                             Command(Opcode.WRITE, slba=zone.zslba, nlb=2))
            cpl = self._submit(sim, device,
                               Command(Opcode.WRITE, slba=zone.wp - 1, nlb=1))
            self._expect(cpl, Status.ZONE_INVALID_WRITE, "write below wp")

        def write_past_wp(sim, device):
            zone = device.zones.zones[0]
            cpl = self._submit(sim, device,
                               Command(Opcode.WRITE, slba=zone.wp + 1, nlb=1))
            self._expect(cpl, Status.ZONE_INVALID_WRITE, "write past wp")
            self._expect_state(zone, Z.EMPTY, "rejected write left state")

        def append_misaligned(sim, device):
            zone = device.zones.zones[0]
            cpl = self._submit(sim, device,
                               Command(Opcode.APPEND, slba=zone.zslba + 1, nlb=1))
            self._expect(cpl, Status.INVALID_FIELD, "append off zone start")

        # -- boundary status selection ------------------------------------
        def read_across_zone_edge(sim, device):
            zone = device.zones.zones[0]
            cpl = self._submit(sim, device,
                               Command(Opcode.READ, slba=zone.end - 1, nlb=2))
            self._expect(cpl, Status.ZONE_BOUNDARY_ERROR, "read across zone edge")

        def write_across_capacity(sim, device):
            zone = device.zones.zones[0]
            cpl = self._submit(
                sim, device,
                Command(Opcode.WRITE, slba=zone.zslba, nlb=zone.cap_lbas + 1),
            )
            self._expect(cpl, Status.ZONE_BOUNDARY_ERROR,
                         "write past writable capacity")
            self._expect_state(zone, Z.EMPTY, "rejected write left state")

        def read_in_zone_gap(sim, device):
            zone = device.zones.zones[0]
            if zone.cap_lbas == zone.size_lbas:
                return "no gap on this profile"
            cpl = self._submit(
                sim, device,
                Command(Opcode.READ, slba=zone.zslba + zone.cap_lbas, nlb=1),
            )
            self._expect(cpl, Status.SUCCESS,
                         "read in the cap..size gap (deallocated)")

        def read_across_zone_and_namespace_end(sim, device):
            zone = device.zones.zones[-1]
            cpl = self._submit(
                sim, device,
                Command(Opcode.READ, slba=zone.zslba, nlb=zone.size_lbas + 1),
            )
            self._expect(cpl, Status.LBA_OUT_OF_RANGE,
                         "namespace end takes precedence over zone edge")

        def _edge_cases(opcode, label):
            def crossing(sim, device):
                capacity = device.namespace.capacity_lbas
                cpl = self._submit(sim, device,
                                   Command(opcode, slba=capacity - 1, nlb=2))
                self._expect(cpl, Status.LBA_OUT_OF_RANGE,
                             f"{label} across namespace end")

            def beyond(sim, device):
                capacity = device.namespace.capacity_lbas
                cpl = self._submit(sim, device,
                                   Command(opcode, slba=capacity, nlb=1))
                self._expect(cpl, Status.LBA_OUT_OF_RANGE,
                             f"{label} starting past namespace end")

            return crossing, beyond

        read_crossing, read_beyond = _edge_cases(Opcode.READ, "read")
        write_crossing, write_beyond = _edge_cases(Opcode.WRITE, "write")

        # -- management addressing ----------------------------------------
        def mgmt_non_zone_start(sim, device):
            cpl = self._submit(
                sim, device,
                Command(Opcode.ZONE_MGMT, slba=1, action=ZoneAction.OPEN),
            )
            self._expect(cpl, Status.INVALID_FIELD, "mgmt off zone start")

        def mgmt_out_of_range(sim, device):
            capacity = device.namespace.capacity_lbas
            cpl = self._submit(
                sim, device,
                Command(Opcode.ZONE_MGMT, slba=capacity,
                        action=ZoneAction.RESET),
            )
            self._expect(cpl, Status.LBA_OUT_OF_RANGE, "mgmt past namespace end")

        # -- untouched-zone close/finish nuances --------------------------
        def close_untouched_explicit_open(sim, device):
            zone = device.zones.zones[0]
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                     action=ZoneAction.OPEN))
            cpl = self._submit(sim, device,
                               Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                       action=ZoneAction.CLOSE))
            self._expect(cpl, Status.SUCCESS, "close untouched zone")
            self._expect_state(zone, Z.EMPTY,
                               "untouched close returns to empty")

        def finish_untouched_explicit_open(sim, device):
            zone = device.zones.zones[0]
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                     action=ZoneAction.OPEN))
            cpl = self._submit(sim, device,
                               Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                       action=ZoneAction.FINISH))
            self._expect(cpl, Status.SUCCESS, "finish untouched open zone")
            self._expect_state(zone, Z.FULL, "finish pads untouched zone")
            if zone.finished_pad_lbas != zone.cap_lbas:
                raise _CaseFailure("untouched finish must pad the whole cap")

        # -- open/active resource limits ----------------------------------
        def _fill_implicit(sim, device, count):
            for index in range(count):
                zone = device.zones.zones[index]
                self._require_ok(sim, device,
                                 Command(Opcode.WRITE, slba=zone.wp, nlb=1))

        def implicit_close_on_write(sim, device):
            zones = device.zones
            self._check_zone_budget(zones, zones.max_open + 1)
            _fill_implicit(sim, device, zones.max_open)
            fresh = zones.zones[zones.max_open]
            cpl = self._submit(sim, device,
                               Command(Opcode.WRITE, slba=fresh.wp, nlb=1))
            self._expect(cpl, Status.SUCCESS, "write at max-open limit")
            self._expect_state(zones.zones[0], Z.CLOSED,
                               "lowest implicit zone evicted")
            self._expect_state(fresh, Z.IMPLICIT_OPEN, "new zone opened")
            if zones.open_count != zones.max_open:
                raise _CaseFailure("open count drifted after implicit close")

        def implicit_close_on_explicit_open(sim, device):
            zones = device.zones
            self._check_zone_budget(zones, zones.max_open + 1)
            _fill_implicit(sim, device, zones.max_open)
            fresh = zones.zones[zones.max_open]
            cpl = self._submit(sim, device,
                               Command(Opcode.ZONE_MGMT, slba=fresh.zslba,
                                       action=ZoneAction.OPEN))
            self._expect(cpl, Status.SUCCESS, "explicit open at max-open limit")
            self._expect_state(zones.zones[0], Z.CLOSED,
                               "lowest implicit zone evicted")
            self._expect_state(fresh, Z.EXPLICIT_OPEN, "target opened")

        def all_explicit_open_rejected(sim, device):
            zones = device.zones
            self._check_zone_budget(zones, zones.max_open + 1)
            for index in range(zones.max_open):
                zone = zones.zones[index]
                self._require_ok(sim, device,
                                 Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                         action=ZoneAction.OPEN))
            fresh = zones.zones[zones.max_open]
            cpl = self._submit(sim, device,
                               Command(Opcode.ZONE_MGMT, slba=fresh.zslba,
                                       action=ZoneAction.OPEN))
            self._expect(cpl, Status.TOO_MANY_OPEN_ZONES,
                         "no implicit victim to evict")

        def _exhaust_active(sim, device):
            zones = device.zones
            for index in range(zones.max_active):
                zone = zones.zones[index]
                self._require_ok(sim, device,
                                 Command(Opcode.WRITE, slba=zone.wp, nlb=1))
                self._require_ok(sim, device,
                                 Command(Opcode.ZONE_MGMT, slba=zone.zslba,
                                         action=ZoneAction.CLOSE))

        def max_active_exhausted(sim, device):
            zones = device.zones
            self._check_zone_budget(zones, zones.max_active + 1)
            _exhaust_active(sim, device)
            fresh = zones.zones[zones.max_active]
            cpl = self._submit(sim, device,
                               Command(Opcode.WRITE, slba=fresh.wp, nlb=1))
            self._expect(cpl, Status.TOO_MANY_ACTIVE_ZONES,
                         "closed zones hold every active slot")
            self._expect_state(fresh, Z.EMPTY, "rejected write left state")

        def finish_frees_active_slot(sim, device):
            zones = device.zones
            self._check_zone_budget(zones, zones.max_active + 1)
            _exhaust_active(sim, device)
            self._require_ok(sim, device,
                             Command(Opcode.ZONE_MGMT,
                                     slba=zones.zones[0].zslba,
                                     action=ZoneAction.FINISH))
            fresh = zones.zones[zones.max_active]
            cpl = self._submit(sim, device,
                               Command(Opcode.WRITE, slba=fresh.wp, nlb=1))
            self._expect(cpl, Status.SUCCESS, "finish freed an active slot")

        return [
            zoned("write.below_wp", write_below_wp),
            zoned("write.past_wp", write_past_wp),
            zoned("append.misaligned_slba", append_misaligned),
            zoned("read.across_zone_edge", read_across_zone_edge),
            zoned("write.across_writable_capacity", write_across_capacity),
            zoned("read.in_zone_gap", read_in_zone_gap),
            zoned("read.across_zone_and_namespace_end",
                  read_across_zone_and_namespace_end),
            any_namespace("read.across_namespace_end", read_crossing),
            any_namespace("read.start_beyond_namespace_end", read_beyond),
            any_namespace("write.across_namespace_end", write_crossing),
            any_namespace("write.start_beyond_namespace_end", write_beyond),
            zoned("mgmt.non_zone_start", mgmt_non_zone_start),
            zoned("mgmt.out_of_range_slba", mgmt_out_of_range),
            zoned("close.untouched_explicit_open",
                  close_untouched_explicit_open),
            zoned("finish.untouched_explicit_open",
                  finish_untouched_explicit_open),
            zoned("limits.implicit_close_on_write", implicit_close_on_write),
            zoned("limits.implicit_close_on_explicit_open",
                  implicit_close_on_explicit_open),
            zoned("limits.all_explicit_open_rejected",
                  all_explicit_open_rejected),
            zoned("limits.max_active_exhausted", max_active_exhausted),
            zoned("limits.finish_frees_active_slot", finish_frees_active_slot),
        ]

    def _check_zone_budget(self, zones, needed: int) -> None:
        if zones.num_zones < needed:
            raise _CaseFailure(
                f"profile too small for limit case: needs {needed} zones, "
                f"device has {zones.num_zones}"
            )
