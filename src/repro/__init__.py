"""repro — reproduction of "Performance Characterization of NVMe Flash
Devices with Zoned Namespaces (ZNS)" (Doekemeijer, Tehrany et al.,
IEEE CLUSTER 2023) on a fully simulated device substrate.

The package builds everything the paper's measurements depend on —
a discrete-event NAND/controller/firmware model of the WD Ultrastar DC
ZN540 ZNS SSD, a conventional SSD with a page-mapped FTL and greedy GC,
SPDK-like and io_uring-like host stacks, and a fio-like workload engine —
then re-runs every experiment (all 13 observations, Figs. 2-8, Tables
I/II, and the §IV emulator-fidelity analysis).

Quick start::

    from repro.sim import Simulator
    from repro.zns import ZnsDevice, zn540
    from repro.stacks import SpdkStack
    from repro.hostif import Command, Opcode

    sim = Simulator()
    device = ZnsDevice(sim, zn540())
    stack = SpdkStack(device)
    completion = sim.run(until=stack.submit(Command(Opcode.WRITE, slba=0, nlb=1)))
    print(completion.latency_ns / 1000, "us")   # ~11.36, as in the paper

See README.md, DESIGN.md, and EXPERIMENTS.md for the full map.
"""

from . import apps, conv, core, emulators, flash, hostif, sim, stacks, workload, zns

__version__ = "1.0.0"

__all__ = [
    "apps",
    "conv",
    "core",
    "emulators",
    "flash",
    "hostif",
    "sim",
    "stacks",
    "workload",
    "zns",
    "__version__",
]
