"""Discrete-event simulation kernel (clock, processes, resources, RNG)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    ms,
    sec,
    us,
)
from .resources import Container, Request, Resource, Store
from .rng import LatencySampler, StreamFactory

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "LatencySampler",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "StreamFactory",
    "Timeout",
    "ms",
    "sec",
    "us",
]
