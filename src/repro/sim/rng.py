"""Deterministic random-number streams for simulation components.

Every stochastic component (latency jitter, workload address generators)
draws from its **own named stream** derived from a single root seed. This
keeps runs exactly reproducible and — critically for experiments — makes
one component's draw count independent of another's, so adding a reader
thread does not perturb the writer's address sequence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamFactory", "LatencySampler"]


class StreamFactory:
    """Hands out independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0x5EED):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (same name → same stream)."""
        child = np.random.SeedSequence(
            entropy=self._seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(child)


class LatencySampler:
    """Samples service-time jitter around a nominal latency.

    Real device latencies are tightly clustered around a mode with a small
    right tail. We model jitter as a lognormal multiplier with unit median,
    parameterized by ``sigma`` (0 disables jitter entirely, which the
    deterministic emulator models use).
    """

    def __init__(self, rng: np.random.Generator, sigma: float = 0.03):
        if sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {sigma}")
        self._rng = rng
        self._sigma = float(sigma)

    @property
    def sigma(self) -> float:
        return self._sigma

    def jitter(self, nominal_ns: int) -> int:
        """Return ``nominal_ns`` scaled by one jitter draw (>= 1 ns)."""
        if nominal_ns < 0:
            raise ValueError(f"nominal latency must be >= 0, got {nominal_ns}")
        if self._sigma == 0.0 or nominal_ns == 0:
            return int(nominal_ns)
        factor = float(np.exp(self._rng.normal(0.0, self._sigma)))
        return max(1, round(nominal_ns * factor))
