"""Deterministic random-number streams for simulation components.

Every stochastic component (latency jitter, workload address generators)
draws from its **own named stream** derived from a single root seed. This
keeps runs exactly reproducible and — critically for experiments — makes
one component's draw count independent of another's, so adding a reader
thread does not perturb the writer's address sequence.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["StreamFactory", "LatencySampler", "DEFAULT_JITTER_BLOCK"]

#: Jitter draws per batched sampler refill. ``Generator.normal(size=N)``
#: produces bit-identical values to N sequential scalar draws (numpy
#: fills the array through the same ziggurat sampler in draw order), so
#: the block size changes only allocation amortization, never results —
#: the draw-order contract in DESIGN.md §15. Overridable per process via
#: ``REPRO_JITTER_BLOCK`` (an environment variable, not a module global,
#: so multiprocessing pool workers inherit it under fork *and* spawn);
#: the byte-identity tests sweep it across 1/16/4096.
DEFAULT_JITTER_BLOCK = 256


class StreamFactory:
    """Hands out independent, named ``numpy.random.Generator`` streams.

    ``salt`` namespaces every stream: two factories with the same seed
    but different salts produce unrelated streams for the same name.
    Sweeps that build one device per point use the point's label as the
    salt so points draw independent jitter without perturbing each
    other. An empty salt (the default) leaves stream derivation exactly
    as it was before salting existed.
    """

    def __init__(self, seed: int = 0x5EED, salt: str = ""):
        self._seed = int(seed)
        self._salt = salt

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def salt(self) -> str:
        return self._salt

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (same name → same stream)."""
        if self._salt:
            name = f"{self._salt}/{name}"
        child = np.random.SeedSequence(
            entropy=self._seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(child)


class LatencySampler:
    """Samples service-time jitter around a nominal latency.

    Real device latencies are tightly clustered around a mode with a small
    right tail. We model jitter as a lognormal multiplier with unit median,
    parameterized by ``sigma`` (0 disables jitter entirely, which the
    deterministic emulator models use).
    """

    __slots__ = ("_rng", "_sigma", "_factors", "_cursor", "_block")

    def __init__(self, rng: np.random.Generator, sigma: float = 0.03,
                 block: int | None = None):
        if sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {sigma}")
        if block is None:
            block = int(os.environ.get("REPRO_JITTER_BLOCK",
                                       DEFAULT_JITTER_BLOCK))
        if block < 1:
            raise ValueError(f"jitter block must be >= 1, got {block}")
        self._rng = rng
        self._sigma = float(sigma)
        self._factors: list[float] = []
        self._cursor = 0
        self._block = block

    @property
    def sigma(self) -> float:
        return self._sigma

    def jitter(self, nominal_ns: int) -> int:
        """Return ``nominal_ns`` scaled by one jitter draw (>= 1 ns)."""
        if nominal_ns < 0:
            raise ValueError(f"nominal latency must be >= 0, got {nominal_ns}")
        if self._sigma == 0.0 or nominal_ns == 0:
            return int(nominal_ns)
        cursor = self._cursor
        if cursor == len(self._factors):
            self._factors = np.exp(
                self._rng.normal(0.0, self._sigma, size=self._block)
            ).tolist()
            cursor = 0
        self._cursor = cursor + 1
        return max(1, round(nominal_ns * self._factors[cursor]))
