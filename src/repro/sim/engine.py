"""Discrete-event simulation kernel.

The kernel is a minimal, deterministic event-driven simulator in the style
of SimPy: *processes* are Python generators that ``yield`` events
(timeouts, resource requests, other processes), and the engine advances a
simulated clock from event to event.

Simulated time is kept in **integer nanoseconds**. Integer time makes the
simulation exactly reproducible (no floating-point drift in comparisons)
and gives sub-nanosecond-free semantics for the microsecond-scale device
latencies this package models. Use the :func:`us`, :func:`ms` and
:func:`sec` helpers to construct durations.

Determinism: events scheduled for the same timestamp fire in scheduling
order, so a run with the same seed and inputs always produces the same
trace. Two structures maintain that order (DESIGN.md §10):

* **Immediate events** (``succeed``/``fail`` triggers, zero-delay
  timeouts, process bootstraps) go to a FIFO *ready deque* — no heap
  entry, no sequence number. The deque position *is* the tie-break.
* **Delayed events** go to a heap of ``(when, seq, event)`` entries; the
  monotonically increasing ``seq`` breaks same-timestamp ties.

The split is order-preserving because simulated time only moves forward:
every heap entry due at time ``T`` was scheduled strictly before the
clock reached ``T`` (delays are >= 1 ns), while every ready event due at
``T`` was triggered *at* ``T`` — so draining the heap's ``T`` entries
before the deque replays the exact global scheduling order.

Waiter storage: an event's waiters live in a single ``_cb`` slot holding
``None``, one waiter, or (rarely) a list of waiters. A waiter is either a
plain callable or a :class:`Process` stored *directly* — the dispatch
loop recognizes the class and resumes the generator inline, so the
overwhelmingly common wait shape (one process blocked on one timeout)
costs no bound-method allocation and no intermediate Python call. Code
that needs the historical list semantics uses :meth:`Event.add_callback`
/ :meth:`Event.remove_callback` (DESIGN.md §15).

Allocation discipline: :class:`Timeout`, :class:`Process`, and the
engine's internal wakeup :class:`Event` objects are the three
most-allocated types; the simulator keeps small per-instance freelists
and recycles an instance only when ``sys.getrefcount`` proves the engine
holds the sole reference, so user code that retains an event (completion
handles, condition children) can never observe a recycled object.
"""

from __future__ import annotations

import sys
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Sequence

__all__ = [
    "us",
    "ms",
    "sec",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
    "events_total",
]

#: Number of nanoseconds per microsecond/millisecond/second.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

#: Cap on each per-simulator freelist (Timeouts, Processes, wakeup Events).
_POOL_MAX = 512

#: Events dispatched by every Simulator in this process (read via
#: :func:`events_total`; the execution engine reports per-point deltas).
_EVENTS_TOTAL = 0

_getrefcount = getattr(sys, "getrefcount", None)
#: Refcount of an object held only by the dispatch loop: the ``event``
#: local plus the getrefcount argument. Pooling is disabled on runtimes
#: without refcount semantics (non-CPython).
_SOLE_REF = 2


def events_total() -> int:
    """Process-wide count of dispatched simulation events."""
    return _EVENTS_TOTAL


def us(value: float) -> int:
    """Convert microseconds to integer simulated nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer simulated nanoseconds."""
    return round(value * NS_PER_MS)


def sec(value: float) -> int:
    """Convert seconds to integer simulated nanoseconds."""
    return round(value * NS_PER_S)


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*; :meth:`succeed` or :meth:`fail` triggers
    it, after which its callbacks run (at the current simulation step) and
    waiting processes resume. Events may carry a ``value`` (delivered as
    the result of the ``yield``) or an exception (raised in the waiter).
    """

    __slots__ = ("sim", "_cb", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._cb: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not failed)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- waiters ---------------------------------------------------------
    @property
    def callbacks(self) -> list:
        """The waiters attached to this event (a snapshot list).

        Kept for introspection; mutate through :meth:`add_callback` /
        :meth:`remove_callback`, which maintain the packed single-slot
        representation the dispatch loop relies on.
        """
        cb = self._cb
        if cb is None:
            return []
        if cb.__class__ is list:
            return list(cb)
        return [cb]

    def add_callback(self, callback: Any) -> None:
        """Attach a waiter: a callable taking the event, or a Process."""
        cb = self._cb
        if cb is None:
            self._cb = callback
        elif cb.__class__ is list:
            cb.append(callback)
        else:
            self._cb = [cb, callback]

    def remove_callback(self, callback: Any) -> None:
        """Detach a waiter; raises ValueError if it is not attached."""
        cb = self._cb
        if cb.__class__ is list:
            cb.remove(callback)
        elif cb is callback or (cb is not None and cb == callback):
            self._cb = None
        else:
            raise ValueError(f"{callback!r} is not waiting on {self!r}")

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._triggered = True
        self.sim._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in all waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._triggered = True
        self.sim._ready.append(self)
        return self

    def _run_callbacks(self) -> None:
        # Out-of-loop dispatch (step(), tests). The run loops inline this.
        self._processed = True
        cb = self._cb
        if cb is None:
            return
        self._cb = None
        cls = cb.__class__
        if cls is Process:
            cb._resume(self)
        elif cls is list:
            for entry in cb:
                if entry.__class__ is Process:
                    entry._resume(self)
                else:
                    entry(self)
        else:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Event.__init__ inlined (hottest constructor in the kernel).
        self.sim = sim
        self._cb = None
        self._exception = None
        self._processed = False
        self._triggered = True
        self._value = value
        delay = int(delay)
        self.delay = delay
        if delay:
            sim._sequence += 1
            heappush(sim._heap, (sim.now + delay, sim._sequence, self))
        else:
            sim._ready.append(self)


class Process(Event):
    """A running generator-based process.

    A process is itself an event that fires when the generator returns
    (successfully, with the generator's return value) or raises (failed
    with the exception). ``yield``-ing a process therefore waits for its
    completion.
    """

    __slots__ = ("generator", "_waiting_on", "_name", "_send")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        # Event.__init__ inlined: one Process per command/flush makes this
        # the second-hottest constructor after Timeout.
        self.sim = sim
        self._cb = None
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False
        self.generator = generator
        self._name = name
        self._waiting_on: Optional[Event] = None
        self._send = generator.send
        # Bootstrap: resume the generator at the current time.
        sim._wake(self)

    @property
    def name(self) -> str:
        # Resolved lazily: the generator's __name__ is only needed in
        # error messages, not on the per-process construction path.
        return self._name or getattr(self.generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            try:
                target.remove_callback(self)
            except ValueError:
                pass
            self._waiting_on = None
        self.sim._wake(lambda _: self._throw(Interrupt(cause)))

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # One resume per yield. The run loops inline this body for the
        # single-waiter case; this method serves multi-waiter lists,
        # step(), and bootstrap replays.
        self._waiting_on = None
        if event._exception is not None:
            self._advance(self.generator.throw, event._exception)
            return
        try:
            target = self._send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate into event
            self.fail(error)
            return
        if target.__class__ is Timeout and not target._processed:
            self._waiting_on = target
            if target._cb is None:
                target._cb = self
            else:
                target.add_callback(self)
            return
        self._block_on(target)

    def _block_on(self, target: Any) -> None:
        """Wait on a non-Timeout yield target (the run loops call this)."""
        if not isinstance(target, Event):
            self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target._processed:
            # Already completed: resume immediately (same timestep).
            self._waiting_on = self.sim._wake(
                self, target._value, target._exception
            )
        else:
            target.add_callback(self)
            self._waiting_on = target

    def _throw(self, exc: BaseException) -> None:
        self._advance(self.generator.throw, exc)

    def _advance(self, step: Callable, arg: Any) -> None:
        try:
            target = step(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate into event
            self.fail(error)
            return
        self._block_on(target)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._on_child(event)
            else:
                self._pending += 1
                event.add_callback(self._on_child)
        self._check_start()

    def _check_start(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._exception is None}


class AnyOf(_Condition):
    """Fires when any child event fires (value: dict of fired events)."""

    __slots__ = ()

    def _check_start(self) -> None:
        if not self._triggered and any(e._processed for e in self.events):
            self.succeed(self._collect())

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all child events fire (value: dict of all values)."""

    __slots__ = ()

    def _check_start(self) -> None:
        if not self._triggered and self._pending == 0:
            self.succeed(self._collect())

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class _ScheduledCall:
    """Deferred zero-argument call bound to a result event (see
    :meth:`Simulator.schedule`)."""

    __slots__ = ("handle", "callback")

    def __init__(self, handle: Event, callback: Callable[[], Any]):
        self.handle = handle
        self.callback = callback

    def __call__(self, _event: Event) -> None:
        try:
            value = self.callback()
        except BaseException as error:  # noqa: BLE001 - delivered to waiters
            self.handle.fail(error)
        else:
            self.handle.succeed(value)


class Simulator:
    """The discrete-event engine: a clock, a ready deque, and a heap."""

    __slots__ = (
        "now",
        "_heap",
        "_ready",
        "_sequence",
        "_timeout_pool",
        "_event_pool",
        "_process_pool",
        "_events",
        "_tick",
    )

    def __init__(self):
        #: Current simulated time in nanoseconds. A plain attribute (not a
        #: property) because every model layer reads it on the hot path;
        #: treat it as read-only — only the dispatch loops advance it.
        self.now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._ready: deque[Event] = deque()
        self._sequence = 0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._process_pool: list[Process] = []
        self._events = 0
        self._tick: Optional[Callable[[int], None]] = None

    def add_tick_hook(self, hook: Callable[[int], None]) -> None:
        """Invoke ``hook(now)`` whenever the simulated clock advances.

        The hook fires once per *time advance* (per same-timestamp batch),
        not per event, immediately after ``self.now`` moves — including the
        final clamp to a ``run(until=time)`` deadline. It runs inside the
        dispatch loop, so it must be passive: it may read simulation and
        model state but must not create, trigger, or cancel events (the
        telemetry sampler is the intended client — observation without a
        footprint in the event order keeps runs byte-identical whether or
        not a hook is installed). Multiple hooks compose in registration
        order.
        """
        previous = self._tick
        if previous is None:
            self._tick = hook
        else:
            def chained(now: int, _first=previous, _second=hook) -> None:
                _first(now)
                _second(now)
            self._tick = chained

    @property
    def events_processed(self) -> int:
        """Events dispatched by this simulator so far."""
        return self._events

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` nanoseconds from now."""
        pool = self._timeout_pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timeout = pool.pop()
        delay = int(delay)
        timeout.delay = delay
        timeout._value = value
        timeout._exception = None
        timeout._processed = False
        timeout._triggered = True
        if delay:
            self._sequence += 1
            heappush(self._heap, (self.now + delay, self._sequence, timeout))
        else:
            self._ready.append(timeout)
        return timeout

    def schedule_after_many(self, delays: Sequence[int]) -> list[Timeout]:
        """Create one Timeout per delay; ``delays`` must be non-decreasing.

        Equivalent — event for event, including heap tie-break sequence
        numbers — to ``[self.timeout(d) for d in delays]``, but the
        pre-sorted ``(when, seq)`` entries are bulk-inserted: zero delays
        extend the ready deque directly, and the positive tail either
        extends an empty heap (a sorted list is a valid binary heap) or
        is merged with one ``heapify`` instead of a sift per event. This
        is the batching primitive behind burst scheduling (DESIGN.md §15).
        """
        events: list[Timeout] = []
        entries: list[tuple[int, int, Timeout]] = []
        ready = self._ready
        pool = self._timeout_pool
        now = self.now
        seq = self._sequence
        last = 0
        for delay in delays:
            delay = int(delay)
            if delay < last:
                raise SimulationError(
                    "schedule_after_many requires non-decreasing, "
                    f"non-negative delays; got {delay} after {last}"
                )
            last = delay
            if pool:
                timeout = pool.pop()
                timeout.delay = delay
                timeout._value = None
                timeout._exception = None
                timeout._processed = False
                timeout._triggered = True
            else:
                timeout = Timeout.__new__(Timeout)
                timeout.sim = self
                timeout._cb = None
                timeout._value = None
                timeout._exception = None
                timeout._processed = False
                timeout._triggered = True
                timeout.delay = delay
            if delay:
                seq += 1
                entries.append((now + delay, seq, timeout))
            else:
                ready.append(timeout)
            events.append(timeout)
        self._sequence = seq
        if entries:
            heap = self._heap
            if not heap:
                heap.extend(entries)
            elif len(entries) * 4 >= len(heap):
                heap.extend(entries)
                heapify(heap)
            else:
                for entry in entries:
                    heappush(heap, entry)
        return events

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        pool = self._process_pool
        if pool:
            proc = pool.pop()
            proc.generator = generator
            proc._send = generator.send
            proc._name = name
            proc._value = None
            proc._exception = None
            proc._triggered = False
            proc._processed = False
            proc._waiting_on = None
            self._wake(proc)
            return proc
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _push(self, event: Event, delay: int = 0) -> None:
        if delay:
            self._sequence += 1
            heappush(self._heap, (self.now + delay, self._sequence, event))
        else:
            self._ready.append(event)

    def _wake(self, waiter: Any, value: Any = None,
              exception: Optional[BaseException] = None) -> Event:
        """An already-triggered event resuming ``waiter`` (a callable or a
        Process) at the current time (pooled: this is the engine's
        internal wakeup allocation)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = value
            event._exception = exception
            event._processed = False
        else:
            event = Event(self)
            event._value = value
            event._exception = exception
        event._triggered = True
        event._cb = waiter
        self._ready.append(event)
        return event

    def schedule(self, delay: int, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` after ``delay`` nanoseconds.

        The returned event fires with the callback's return value, or —
        if the callback raises — fails via :meth:`Event.fail`, so the
        error reaches whoever waits on the handle instead of unwinding
        the dispatch loop mid-step with half the timestep unprocessed.
        """
        handle = Event(self)
        self.timeout(delay).add_callback(_ScheduledCall(handle, callback))
        return handle

    # -- execution -------------------------------------------------------
    def _dispose(self, event: Event) -> None:
        """Recycle ``event`` if the engine provably holds the only
        reference (and nothing re-attached a callback)."""
        if _getrefcount is None or event._cb is not None:
            return
        # Expected refs: the caller's local + getrefcount's argument +
        # this frame's parameter binding.
        if _getrefcount(event) != _SOLE_REF + 1:
            return
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        elif cls is Process:
            pool = self._process_pool
            event.generator = None
            event._send = None
        else:
            return
        if len(pool) < _POOL_MAX:
            event._value = None
            pool.append(event)

    def step(self) -> None:
        """Process the single next event."""
        global _EVENTS_TOTAL
        heap = self._heap
        ready = self._ready
        if heap and heap[0][0] == self.now:
            # Due now, and scheduled (strictly) before anything in the
            # ready deque — see the ordering note in the module docstring.
            event = heappop(heap)[2]
        elif ready:
            event = ready.popleft()
        elif heap:
            self.now = heap[0][0]
            if self._tick is not None:
                self._tick(self.now)
            event = heappop(heap)[2]
        else:
            raise SimulationError("no scheduled events")
        event._run_callbacks()
        self._events += 1
        _EVENTS_TOTAL += 1
        self._dispose(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run until the heap empties, a deadline passes, or an event fires.

        ``until`` may be an absolute time in nanoseconds or an
        :class:`Event`; when an event is given its value is returned.
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(until)

    # The two run loops below inline event dispatch (Event._run_callbacks
    # plus Process._resume plus the freelist recycle check) four times
    # over. The duplication is deliberate: this is the hottest code in
    # the package (~half of all Python time), and each Python call or
    # attribute hop removed here is paid back millions of times per run.
    # Dispatch semantics, in order:
    #
    # 1. mark processed, detach the waiter slot;
    # 2. a Process waiter resumes its generator inline — a yielded
    #    pending Timeout re-attaches in place, anything else goes through
    #    Process._block_on; StopIteration completes the process onto the
    #    ready deque (Event.succeed minus the already-triggered guard,
    #    which cannot fire for a just-returned generator);
    # 3. a list fans out in append order; any other waiter is called;
    # 4. if the engine provably holds the sole reference, the event is
    #    recycled (Timeout/Event/Process freelists; values cleared so
    #    pooling never pins a Completion alive).

    def _run_until_event(self, stop: Event) -> Any:
        global _EVENTS_TOTAL
        heap = self._heap
        ready = self._ready
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        process_pool = self._process_pool
        getrefcount = _getrefcount
        dispatched = 0
        try:
            while not stop._processed:
                # Same-timestamp batch (see _run_until_time): heap entries
                # due now all predate anything in the ready deque, and no
                # new heap-at-now entries can appear once the deque starts
                # draining — so each batch peeks the heap head only once.
                now = self.now
                while heap and heap[0][0] == now:
                    event = heappop(heap)[2]
                    event._processed = True
                    cb = event._cb
                    if cb is not None:
                        event._cb = None
                        cls = cb.__class__
                        if cls is Process:
                            cb._waiting_on = None
                            if event._exception is None:
                                try:
                                    target = cb._send(event._value)
                                except StopIteration as stop_iter:
                                    cb._value = stop_iter.value
                                    cb._triggered = True
                                    ready.append(cb)
                                except BaseException as error:  # noqa: BLE001
                                    cb.fail(error)
                                else:
                                    if target.__class__ is Timeout \
                                            and not target._processed:
                                        cb._waiting_on = target
                                        if target._cb is None:
                                            target._cb = cb
                                        else:
                                            target.add_callback(cb)
                                    else:
                                        cb._block_on(target)
                            else:
                                cb._advance(cb.generator.throw, event._exception)
                        elif cls is list:
                            for entry in cb:
                                if entry.__class__ is Process:
                                    entry._resume(event)
                                else:
                                    entry(event)
                        else:
                            cb(event)
                    dispatched += 1
                    if getrefcount is not None and event._cb is None \
                            and getrefcount(event) == _SOLE_REF:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < _POOL_MAX:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < _POOL_MAX:
                                event._value = None
                                event_pool.append(event)
                        elif cls is Process and len(process_pool) < _POOL_MAX:
                            event.generator = None
                            event._send = None
                            event._value = None
                            process_pool.append(event)
                    if stop._processed:
                        return stop.value
                while ready:
                    event = ready.popleft()
                    event._processed = True
                    cb = event._cb
                    if cb is not None:
                        event._cb = None
                        cls = cb.__class__
                        if cls is Process:
                            cb._waiting_on = None
                            if event._exception is None:
                                try:
                                    target = cb._send(event._value)
                                except StopIteration as stop_iter:
                                    cb._value = stop_iter.value
                                    cb._triggered = True
                                    ready.append(cb)
                                except BaseException as error:  # noqa: BLE001
                                    cb.fail(error)
                                else:
                                    if target.__class__ is Timeout \
                                            and not target._processed:
                                        cb._waiting_on = target
                                        if target._cb is None:
                                            target._cb = cb
                                        else:
                                            target.add_callback(cb)
                                    else:
                                        cb._block_on(target)
                            else:
                                cb._advance(cb.generator.throw, event._exception)
                        elif cls is list:
                            for entry in cb:
                                if entry.__class__ is Process:
                                    entry._resume(event)
                                else:
                                    entry(event)
                        else:
                            cb(event)
                    dispatched += 1
                    if getrefcount is not None and event._cb is None \
                            and getrefcount(event) == _SOLE_REF:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < _POOL_MAX:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < _POOL_MAX:
                                event._value = None
                                event_pool.append(event)
                        elif cls is Process and len(process_pool) < _POOL_MAX:
                            event.generator = None
                            event._send = None
                            event._value = None
                            process_pool.append(event)
                    if stop._processed:
                        return stop.value
                if not heap:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired"
                    )
                self.now = heap[0][0]
                if self._tick is not None:
                    self._tick(self.now)
            return stop.value
        finally:
            self._events += dispatched
            _EVENTS_TOTAL += dispatched

    def _run_until_time(self, until: Optional[int]) -> None:
        global _EVENTS_TOTAL
        deadline = None if until is None else int(until)
        heap = self._heap
        ready = self._ready
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        process_pool = self._process_pool
        getrefcount = _getrefcount
        dispatched = 0
        try:
            while True:
                # Same-timestamp batch: drain every heap entry due now
                # (all scheduled before anything currently in the ready
                # deque), then the deque, which may grow as it drains.
                now = self.now
                while heap and heap[0][0] == now:
                    event = heappop(heap)[2]
                    event._processed = True
                    cb = event._cb
                    if cb is not None:
                        event._cb = None
                        cls = cb.__class__
                        if cls is Process:
                            cb._waiting_on = None
                            if event._exception is None:
                                try:
                                    target = cb._send(event._value)
                                except StopIteration as stop_iter:
                                    cb._value = stop_iter.value
                                    cb._triggered = True
                                    ready.append(cb)
                                except BaseException as error:  # noqa: BLE001
                                    cb.fail(error)
                                else:
                                    if target.__class__ is Timeout \
                                            and not target._processed:
                                        cb._waiting_on = target
                                        if target._cb is None:
                                            target._cb = cb
                                        else:
                                            target.add_callback(cb)
                                    else:
                                        cb._block_on(target)
                            else:
                                cb._advance(cb.generator.throw, event._exception)
                        elif cls is list:
                            for entry in cb:
                                if entry.__class__ is Process:
                                    entry._resume(event)
                                else:
                                    entry(event)
                        else:
                            cb(event)
                    dispatched += 1
                    if getrefcount is not None and event._cb is None \
                            and getrefcount(event) == _SOLE_REF:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < _POOL_MAX:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < _POOL_MAX:
                                event._value = None
                                event_pool.append(event)
                        elif cls is Process and len(process_pool) < _POOL_MAX:
                            event.generator = None
                            event._send = None
                            event._value = None
                            process_pool.append(event)
                while ready:
                    event = ready.popleft()
                    event._processed = True
                    cb = event._cb
                    if cb is not None:
                        event._cb = None
                        cls = cb.__class__
                        if cls is Process:
                            cb._waiting_on = None
                            if event._exception is None:
                                try:
                                    target = cb._send(event._value)
                                except StopIteration as stop_iter:
                                    cb._value = stop_iter.value
                                    cb._triggered = True
                                    ready.append(cb)
                                except BaseException as error:  # noqa: BLE001
                                    cb.fail(error)
                                else:
                                    if target.__class__ is Timeout \
                                            and not target._processed:
                                        cb._waiting_on = target
                                        if target._cb is None:
                                            target._cb = cb
                                        else:
                                            target.add_callback(cb)
                                    else:
                                        cb._block_on(target)
                            else:
                                cb._advance(cb.generator.throw, event._exception)
                        elif cls is list:
                            for entry in cb:
                                if entry.__class__ is Process:
                                    entry._resume(event)
                                else:
                                    entry(event)
                        else:
                            cb(event)
                    dispatched += 1
                    if getrefcount is not None and event._cb is None \
                            and getrefcount(event) == _SOLE_REF:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < _POOL_MAX:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < _POOL_MAX:
                                event._value = None
                                event_pool.append(event)
                        elif cls is Process and len(process_pool) < _POOL_MAX:
                            event.generator = None
                            event._send = None
                            event._value = None
                            process_pool.append(event)
                if not heap:
                    break
                when = heap[0][0]
                if deadline is not None and when > deadline:
                    self.now = deadline
                    if self._tick is not None:
                        self._tick(deadline)
                    return None
                self.now = when
                if self._tick is not None:
                    self._tick(when)
        finally:
            self._events += dispatched
            _EVENTS_TOTAL += dispatched
        if deadline is not None and deadline > self.now:
            self.now = deadline
            if self._tick is not None:
                self._tick(deadline)
        return None
