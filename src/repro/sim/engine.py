"""Discrete-event simulation kernel.

The kernel is a minimal, deterministic event-driven simulator in the style
of SimPy: *processes* are Python generators that ``yield`` events
(timeouts, resource requests, other processes), and the engine advances a
simulated clock from event to event.

Simulated time is kept in **integer nanoseconds**. Integer time makes the
simulation exactly reproducible (no floating-point drift in comparisons)
and gives sub-nanosecond-free semantics for the microsecond-scale device
latencies this package models. Use the :func:`us`, :func:`ms` and
:func:`sec` helpers to construct durations.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
with the same seed and inputs always produces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "us",
    "ms",
    "sec",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

#: Number of nanoseconds per microsecond/millisecond/second.
NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer simulated nanoseconds."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer simulated nanoseconds."""
    return round(value * NS_PER_MS)


def sec(value: float) -> int:
    """Convert seconds to integer simulated nanoseconds."""
    return round(value * NS_PER_S)


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*; :meth:`succeed` or :meth:`fail` triggers
    it, after which its callbacks run (at the current simulation step) and
    waiting processes resume. Events may carry a ``value`` (delivered as
    the result of the ``yield``) or an exception (raised in the waiter).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (not failed)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._triggered = True
        self.sim._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in all waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._triggered = True
        self.sim._push(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._value = value
        self._triggered = True
        sim._push(self, delay=self.delay)


class Process(Event):
    """A running generator-based process.

    A process is itself an event that fires when the generator returns
    (successfully, with the generator's return value) or raises (failed
    with the exception). ``yield``-ing a process therefore waits for its
    completion.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.callbacks.append(lambda _: self._throw(Interrupt(cause)))
        wakeup.succeed()

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exception is not None:
            self._throw(event._exception)
        else:
            self._advance(self.generator.send, event._value)

    def _throw(self, exc: BaseException) -> None:
        self._advance(self.generator.throw, exc)

    def _advance(self, step: Callable, arg: Any) -> None:
        try:
            target = step(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate into event
            self.fail(error)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target._processed:
            # Already completed: resume immediately (same timestep).
            wakeup = Event(self.sim)
            wakeup._value = target._value
            wakeup._exception = target._exception
            wakeup.callbacks.append(self._resume)
            wakeup._triggered = True
            self.sim._push(wakeup)
            self._waiting_on = wakeup
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._on_child(event)
            else:
                self._pending += 1
                event.callbacks.append(self._on_child)
        self._check_start()

    def _check_start(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._exception is None}


class AnyOf(_Condition):
    """Fires when any child event fires (value: dict of fired events)."""

    __slots__ = ()

    def _check_start(self) -> None:
        if not self._triggered and any(e._processed for e in self.events):
            self.succeed(self._collect())

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all child events fire (value: dict of all values)."""

    __slots__ = ()

    def _check_start(self) -> None:
        if not self._triggered and self._pending == 0:
            self.succeed(self._collect())

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Simulator:
    """The discrete-event engine: a clock plus a time-ordered event heap."""

    def __init__(self):
        self._now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _push(self, event: Event, delay: int = 0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` nanoseconds."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _: callback())
        return event

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run until the heap empties, a deadline passes, or an event fires.

        ``until`` may be an absolute time in nanoseconds or an
        :class:`Event`; when an event is given its value is returned.
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired"
                    )
                self.step()
            return stop.value
        deadline = None if until is None else int(until)
        while self._heap:
            when = self._heap[0][0]
            if deadline is not None and when > deadline:
                self._now = deadline
                return None
            self.step()
        if deadline is not None:
            self._now = max(self._now, deadline)
        return None
