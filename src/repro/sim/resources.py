"""Shared-resource primitives for the simulation kernel.

Three primitives cover every contention point in the device models:

* :class:`Resource` — a server with fixed capacity and a FIFO (or
  priority-ordered) queue of acquire requests. Models controller slots,
  NAND dies, channel buses, and the firmware management unit.
* :class:`Container` — a reservoir of continuous "stuff" (bytes) with
  blocking put/get. Models the device write buffer.
* :class:`Store` — a FIFO queue of discrete items with blocking get.
  Models command queues between pipeline stages.

Priority semantics on :class:`Resource`: lower numeric priority is served
first; ties are FIFO. This is how the ZNS firmware unit prioritizes I/O
commands over background ``reset`` metadata work (paper §III-G).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "ServiceLine", "Container", "Store"]


class Request(Event):
    """An acquire request; fires when the resource grants a slot."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int):
        # Event.__init__ inlined: requests are allocated once per
        # controller/die/bus acquisition, the hottest alloc site after
        # Timeout (which the engine pools).
        self.sim = resource.sim
        self._cb = None
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False
        self.resource = resource
        self.priority = priority
        self._order = 0

    def __lt__(self, other: "Request") -> bool:
        if self.priority != other.priority:
            return self.priority < other.priority
        return self._order < other._order


class Resource:
    """A capacity-limited server with a priority/FIFO request queue."""

    __slots__ = ("sim", "capacity", "name", "_users", "_queue", "_counter")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: list[tuple[int, int, Request]] = []
        self._counter = 0

    # -- introspection ---------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    # -- protocol ----------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; yield the returned event to block until granted."""
        req = Request(self, priority)
        self._counter += 1
        req._order = self._counter
        if not self._queue and len(self._users) < self.capacity:
            # Free slot and nobody ahead: grant without touching the heap.
            self._users.add(req)
            req.succeed(req)
        else:
            # Heap entries are (priority, order, req) tuples so ordering
            # resolves on int compares instead of Request.__lt__ dispatch
            # (the request heap is the hottest comparison site in the
            # kernel). Order is unique, so the tuple compare never
            # reaches the Request.
            heapq.heappush(self._queue, (priority, req._order, req))
            self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request in self._users:
            self._users.remove(request)
            self._grant()
            return
        # Allow cancelling a queued (never-granted) request.
        try:
            self._queue.remove((request.priority, request._order, request))
            heapq.heapify(self._queue)
        except ValueError:
            raise SimulationError("release() of a request that holds no slot")

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = heapq.heappop(self._queue)[2]
            self._users.add(req)
            req.succeed(req)


class ServiceLine:
    """A capacity-1 FIFO server: :class:`Resource` minus the priority queue.

    Drop-in for the ``request()``/``release()``/introspection protocol of a
    ``Resource(sim, capacity=1)`` **when every requester uses the same
    priority** — then a priority heap degenerates to FIFO and the grant
    order is identical event-for-event (uncontended requests are granted
    synchronously onto the ready deque, contended ones in arrival order
    from the predecessor's release; both match the Resource's behaviour
    position-for-position, see DESIGN.md §15). What it saves per
    acquisition: the Request object with its priority/order fields, the
    heap tuple push/pop, the user-set add/remove, and the order counter.

    ``request()`` accepts and **ignores** a ``priority`` argument so call
    sites can select between the two classes at construction time. Code
    that mixes priorities (firmware unit, conventional-device GC, the
    power-cut panic grab) must keep using :class:`Resource`.
    """

    __slots__ = ("sim", "name", "_busy", "_waiters")

    capacity = 1

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._busy = False
        self._waiters: deque[Event] = deque()

    # -- introspection ---------------------------------------------------
    @property
    def in_use(self) -> int:
        return 1 if self._busy else 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- protocol ----------------------------------------------------------
    def request(self, priority: int = 0) -> Event:
        """Ask for the slot; yield the returned event to block until granted.

        The ``priority`` argument is accepted for Resource compatibility
        and ignored (the line is strictly FIFO).
        """
        event = Event(self.sim)
        if self._busy:
            self._waiters.append(event)
        else:
            self._busy = True
            event.succeed(event)
        return event

    def release(self, request: Event) -> None:
        """Return the slot (or cancel a still-queued request)."""
        if request._triggered:
            if self._waiters:
                nxt = self._waiters.popleft()
                nxt.succeed(nxt)
            else:
                self._busy = False
            return
        try:
            self._waiters.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that holds no slot")


class _ContainerOp(Event):
    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: int):
        super().__init__(sim)
        self.amount = amount


class Container:
    """A byte reservoir with blocking put (when full) and get (when empty)."""

    __slots__ = ("sim", "capacity", "name", "_level", "_puts", "_gets")

    def __init__(self, sim: Simulator, capacity: int, init: int = 0, name: str = ""):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("container init level out of range")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._puts: deque[_ContainerOp] = deque()
        self._gets: deque[_ContainerOp] = deque()

    @property
    def level(self) -> int:
        return self._level

    def put(self, amount: int) -> Event:
        """Add ``amount``; blocks while it would overflow the capacity."""
        if amount < 0:
            raise SimulationError("container put amount must be >= 0")
        if amount > self.capacity:
            raise SimulationError(
                f"put of {amount} can never fit capacity {self.capacity}"
            )
        op = _ContainerOp(self.sim, amount)
        self._puts.append(op)
        self._settle()
        return op

    def get(self, amount: int) -> Event:
        """Remove ``amount``; blocks until that much is available."""
        if amount < 0:
            raise SimulationError("container get amount must be >= 0")
        op = _ContainerOp(self.sim, amount)
        self._gets.append(op)
        self._settle()
        return op

    def force_level(self, level: int) -> None:
        """Fixture: set the level directly, bypassing put/get semantics.

        Only legal while no put or get is waiting — used by device
        state restore to reinstate stable buffered residuals.
        """
        if not 0 <= level <= self.capacity:
            raise SimulationError(
                f"force_level {level} out of range 0..{self.capacity}"
            )
        if self._puts or self._gets:
            raise SimulationError(
                "force_level while put/get operations are waiting"
            )
        self._level = level

    def drain(self, amount: int) -> int:
        """Remove up to ``amount`` immediately, never blocking.

        Unlike :meth:`get`, this is a fault fixture (power loss dropping
        the unflushed buffer tail): it takes whatever is available, wakes
        any putters the freed space unblocks, and returns the bytes
        actually removed.
        """
        if amount < 0:
            raise SimulationError(f"negative drain amount: {amount}")
        taken = min(amount, self._level)
        if taken:
            self._level -= taken
            self._settle()
        return taken

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._level + self._puts[0].amount <= self.capacity:
                op = self._puts.popleft()
                self._level += op.amount
                op.succeed(op.amount)
                progressed = True
            if self._gets and self._level >= self._gets[0].amount:
                op = self._gets.popleft()
                self._level -= op.amount
                op.succeed(op.amount)
                progressed = True


class Store:
    """An unbounded (or bounded) FIFO queue of discrete items."""

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Append an item; blocks only when a capacity bound is hit."""
        op = Event(self.sim)
        self._putters.append((op, item))
        self._settle()
        return op

    def get(self) -> Event:
        """Pop the oldest item; blocks while the store is empty."""
        op = Event(self.sim)
        self._getters.append(op)
        self._settle()
        return op

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                op, item = self._putters.popleft()
                self._items.append(item)
                op.succeed(item)
                progressed = True
            while self._getters and self._items:
                op = self._getters.popleft()
                op.succeed(self._items.popleft())
                progressed = True
