"""A crash-tolerant process pool for experiment points.

Deliberately hand-rolled rather than ``multiprocessing.Pool``: the
stock pool cannot kill a single hung task, and a worker that dies
mid-result poisons the whole map call. Here every worker owns one
:class:`~multiprocessing.Pipe`; the parent multiplexes replies with
:func:`multiprocessing.connection.wait`, enforces a per-point deadline,
and on a timeout or crash kills just that worker, respawns a fresh one
(bounded by a respawn budget, so a systemically broken environment fails
fast instead of thrashing), and retries the point once — after a short
exponential backoff with per-task jitter — before reporting it failed.
A sweep never hangs and never loses more than the one offending point.

Task / reply protocol (everything picklable and JSON-able)::

    task  = {"task_id": int, "experiment_id": str, "params": dict,
             "config": dict, "collect_metrics": bool,
             "heartbeat_s": float}                    # 0 → no progress
    reply = {"task_id": int, "ok": True, "payload": dict,
             "metrics": dict | None, "telemetry": list | None,
             "elapsed_s": float, "events": int, "attempts": int}
          | {"task_id": int, "ok": False, "error": str,
             "attempts": int}

Interleaved with replies, workers emit **progress messages** — any
message carrying a ``"progress"`` key is informational, never a task
outcome, and the parent forwards it to ``on_progress`` without touching
pool bookkeeping::

    {"task_id": int, "progress": "started", "pid": int}
    {"task_id": int, "progress": "heartbeat", "pid": int,
     "elapsed_s": float, "events": int}

The heartbeat runs on a worker-side thread sampling the process-wide
event counter; a lock serializes its pipe writes against the main reply,
so messages never interleave mid-frame. Heartbeats report liveness only
— the per-point deadline is not extended by them (a point that is alive
but over budget is still killed).

Workers build the :class:`ExperimentConfig` from the scalar ``config``
fields and look the experiment up in the shared plan registry, so each
point runs exactly the code the serial path runs. When the config
carries a telemetry interval the worker creates the per-point
:class:`~repro.obs.telemetry.TelemetryCollector` itself and ships the
drained segments in the reply.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import threading
import time
import traceback
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable, Optional

__all__ = ["WorkerPool", "DEFAULT_POINT_TIMEOUT_S", "DEFAULT_HEARTBEAT_S"]

#: Generous per-point wall-clock budget; the longest full-scale point
#: (fig6 interference timelines) simulates in well under a minute.
DEFAULT_POINT_TIMEOUT_S = 600.0

#: Interval between worker liveness heartbeats while a point runs.
DEFAULT_HEARTBEAT_S = 5.0


def _worker_main(conn: Connection) -> None:
    """Worker loop: receive tasks until ``None`` / EOF, send replies."""
    from ..core.experiments.common import ExperimentConfig
    from ..core.experiments.points import experiment_plans
    from ..obs.metrics import MetricsRegistry
    from ..obs.telemetry import TelemetryCollector
    from ..sim.engine import events_total

    plans = experiment_plans(auxiliary=True)
    pid = os.getpid()
    send_lock = threading.Lock()

    def send(message: dict) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        task_id = task["task_id"]
        started = time.perf_counter()
        events_before = events_total()
        heartbeat_s = task.get("heartbeat_s") or 0.0
        stop: Optional[threading.Event] = None
        beat_thread: Optional[threading.Thread] = None
        if heartbeat_s > 0:
            if not send({"task_id": task_id, "progress": "started", "pid": pid}):
                return
            stop = threading.Event()

            def beat() -> None:
                while not stop.wait(heartbeat_s):
                    alive = send({
                        "task_id": task_id,
                        "progress": "heartbeat",
                        "pid": pid,
                        "elapsed_s": time.perf_counter() - started,
                        "events": events_total() - events_before,
                    })
                    if not alive:
                        return

            beat_thread = threading.Thread(
                target=beat, name="repro-heartbeat", daemon=True
            )
            beat_thread.start()
        try:
            config = ExperimentConfig(**task["config"])
            metrics = None
            if task["collect_metrics"]:
                metrics = MetricsRegistry()
                config = dataclasses.replace(config, metrics=metrics)
            telemetry = None
            if config.telemetry_interval_ns:
                telemetry = TelemetryCollector(config.telemetry_interval_ns)
                config = dataclasses.replace(config, telemetry=telemetry)
            plan = plans[task["experiment_id"]]
            payload = plan.point(config, task["params"])
            reply = {
                "task_id": task_id,
                "ok": True,
                "payload": payload,
                "metrics": metrics.snapshot() if metrics is not None else None,
                "telemetry": telemetry.drain() if telemetry is not None else None,
                "elapsed_s": time.perf_counter() - started,
                "events": events_total() - events_before,
            }
        except BaseException:
            reply = {
                "task_id": task_id,
                "ok": False,
                "error": traceback.format_exc(),
            }
        finally:
            if stop is not None:
                stop.set()
                beat_thread.join(timeout=5)
        if not send(reply):
            return


class _Worker:
    """One worker process plus the parent's end of its pipe."""

    def __init__(self, ctx, worker_id: int):
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-exec-{worker_id}", daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps one end; EOF surfaces crashes
        self.conn = parent_conn

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        self.conn.close()

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()


class WorkerPool:
    """Fan tasks out over worker processes with timeout/crash recovery."""

    def __init__(self, jobs: int, timeout_s: float = DEFAULT_POINT_TIMEOUT_S,
                 max_attempts: int = 2, mp_context=None,
                 retry_backoff_s: float = 0.5, max_respawns: int = 8,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        #: Worker liveness-heartbeat interval; ``0`` disables progress
        #: messages entirely (tasks carry the value to the worker).
        self.heartbeat_s = heartbeat_s
        #: Base delay before retrying a failed point (doubles per attempt,
        #: plus a small per-task jitter so retries don't restart in
        #: lockstep after a machine-wide stall, e.g. OOM-killer sweeps).
        self.retry_backoff_s = retry_backoff_s
        #: Replacement-worker budget per ``run()``. A systemic failure
        #: (bad install, sandbox killing children) would otherwise
        #: respawn-thrash forever; past the cap, remaining tasks fail
        #: fast with a clear error instead.
        self.max_respawns = max_respawns
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = mp.get_context("fork" if "fork" in methods else "spawn")
        self._ctx = mp_context
        self._next_worker_id = 0

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        return worker

    def run(
        self,
        tasks: list[dict],
        on_reply: Optional[Callable[[dict, dict], None]] = None,
        on_progress: Optional[Callable[[dict, dict], None]] = None,
    ) -> dict[int, dict]:
        """Run every task; returns task_id → final reply.

        ``on_reply(task, reply)`` fires once per task when its final
        reply (success, or failure after the retry) is known.
        ``on_progress(task, message)`` fires for every worker progress
        message (point started, periodic heartbeat) — informational
        only, possibly more than once per task and attempt.
        """
        if not tasks:
            return {}
        for task in tasks:
            task.setdefault("heartbeat_s", self.heartbeat_s)
        pending = list(reversed(tasks))  # pop() serves original order
        attempts: dict[int, int] = {t["task_id"]: 0 for t in tasks}
        replies: dict[int, dict] = {}
        by_id = {t["task_id"]: t for t in tasks}
        workers = [self._spawn() for _ in range(min(self.jobs, len(tasks)))]
        busy: dict[Connection, tuple[dict, float, _Worker]] = {}
        retry_at: dict[int, float] = {}  # task_id → earliest redispatch time
        respawns = 0

        def finish(task: dict, reply: dict) -> None:
            reply["attempts"] = attempts[task["task_id"]] + (1 if reply["ok"] else 0)
            replies[task["task_id"]] = reply
            if on_reply is not None:
                on_reply(task, reply)

        def fail(task: dict, error: str) -> None:
            tid = task["task_id"]
            attempts[tid] += 1
            if attempts[tid] < self.max_attempts:
                # Exponential backoff plus deterministic per-task jitter:
                # retries of a transient machine-wide problem shouldn't
                # all slam back in at the same instant.
                delay = self.retry_backoff_s * (1 << (attempts[tid] - 1))
                retry_at[tid] = (
                    time.monotonic() + delay + (tid * 0.037) % 0.1
                )
                pending.append(task)
            else:
                finish(task, {"task_id": tid, "ok": False, "error": error})

        def respawn(worker: _Worker) -> None:
            nonlocal respawns
            workers.remove(worker)
            worker.kill()
            if respawns < self.max_respawns:
                respawns += 1
                workers.append(self._spawn())

        try:
            while len(replies) < len(tasks):
                # Hand pending tasks whose backoff has elapsed to idle
                # workers (newest-first, like the original stack order).
                now = time.monotonic()
                for worker in workers:
                    if worker.conn in busy or not pending:
                        continue
                    idx = next(
                        (i for i in range(len(pending) - 1, -1, -1)
                         if retry_at.get(pending[i]["task_id"], 0.0) <= now),
                        None,
                    )
                    if idx is None:
                        break  # everything pending is still backing off
                    task = pending.pop(idx)
                    worker.conn.send(task)
                    busy[worker.conn] = (
                        task, time.monotonic() + self.timeout_s, worker
                    )
                if not workers:
                    # Respawn budget exhausted: fail whatever is left
                    # rather than looping forever with nobody to run it.
                    for task in pending:
                        attempts[task["task_id"]] = self.max_attempts
                        finish(task, {
                            "task_id": task["task_id"], "ok": False,
                            "error": "worker respawn budget exhausted "
                                     f"({self.max_respawns} respawns)",
                        })
                    pending.clear()
                    break
                if not busy:
                    if pending:  # all pending tasks are in backoff; wait
                        soonest = min(
                            retry_at.get(t["task_id"], 0.0) for t in pending
                        )
                        time.sleep(
                            max(0.0, min(soonest - time.monotonic(), 1.0))
                        )
                        continue
                    break  # pragma: no cover - defensive
                deadline = min(d for _, d, _ in busy.values())
                wait_s = max(0.0, min(deadline - time.monotonic(), 1.0))
                ready = connection_wait(list(busy), timeout=wait_s)
                for conn in ready:
                    task, _, worker = busy[conn]
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-point: replace it, retry the task.
                        busy.pop(conn)
                        pid, exitcode = worker.process.pid, worker.process.exitcode
                        respawn(worker)
                        fail(task, "worker process crashed "
                                   f"(pid {pid}, exitcode {exitcode})")
                        continue
                    if reply.get("progress"):
                        # Liveness/progress only: the task stays busy and
                        # keeps its original deadline.
                        if on_progress is not None:
                            on_progress(task, reply)
                        continue
                    busy.pop(conn)
                    if reply.get("ok"):
                        finish(task, reply)
                    else:
                        fail(task, reply.get("error", "unknown worker error"))
                # Kill anything past its deadline and retry it elsewhere.
                now = time.monotonic()
                for conn in [c for c, (_, d, _) in busy.items() if d <= now]:
                    task, _, worker = busy.pop(conn)
                    respawn(worker)
                    fail(task, f"point exceeded the {self.timeout_s:.0f}s "
                               "timeout and was killed")
        finally:
            for worker in workers:
                worker.shutdown()
        assert set(replies) == set(by_id)
        return replies
