"""A crash-tolerant process pool for experiment points.

Deliberately hand-rolled rather than ``multiprocessing.Pool``: the
stock pool cannot kill a single hung task, and a worker that dies
mid-result poisons the whole map call. Here every worker owns one
:class:`~multiprocessing.Pipe`; the parent multiplexes replies with
:func:`multiprocessing.connection.wait`, enforces a per-point deadline,
and on a timeout or crash kills just that worker, respawns a fresh one
(bounded by a respawn budget, so a systemically broken environment fails
fast instead of thrashing), and retries the point once — after a short
exponential backoff with per-task jitter — before reporting it failed.
A sweep never hangs and never loses more than the one offending point.

Task / reply protocol (everything picklable and JSON-able)::

    task  = {"task_id": int, "experiment_id": str, "params": dict,
             "config": dict, "collect_metrics": bool}
    reply = {"task_id": int, "ok": True, "payload": dict,
             "metrics": dict | None, "elapsed_s": float,
             "events": int, "attempts": int}
          | {"task_id": int, "ok": False, "error": str,
             "attempts": int}

Workers build the :class:`ExperimentConfig` from the scalar ``config``
fields and look the experiment up in the shared plan registry, so each
point runs exactly the code the serial path runs.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time
import traceback
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable, Optional

__all__ = ["WorkerPool", "DEFAULT_POINT_TIMEOUT_S"]

#: Generous per-point wall-clock budget; the longest full-scale point
#: (fig6 interference timelines) simulates in well under a minute.
DEFAULT_POINT_TIMEOUT_S = 600.0


def _worker_main(conn: Connection) -> None:
    """Worker loop: receive tasks until ``None`` / EOF, send replies."""
    from ..core.experiments.common import ExperimentConfig
    from ..core.experiments.points import experiment_plans
    from ..obs.metrics import MetricsRegistry
    from ..sim.engine import events_total

    plans = experiment_plans(auxiliary=True)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        started = time.perf_counter()
        events_before = events_total()
        try:
            config = ExperimentConfig(**task["config"])
            metrics = None
            if task["collect_metrics"]:
                metrics = MetricsRegistry()
                config = dataclasses.replace(config, metrics=metrics)
            plan = plans[task["experiment_id"]]
            payload = plan.point(config, task["params"])
            reply = {
                "task_id": task["task_id"],
                "ok": True,
                "payload": payload,
                "metrics": metrics.snapshot() if metrics is not None else None,
                "elapsed_s": time.perf_counter() - started,
                "events": events_total() - events_before,
            }
        except BaseException:
            reply = {
                "task_id": task["task_id"],
                "ok": False,
                "error": traceback.format_exc(),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process plus the parent's end of its pipe."""

    def __init__(self, ctx, worker_id: int):
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-exec-{worker_id}", daemon=True,
        )
        self.process.start()
        child_conn.close()  # parent keeps one end; EOF surfaces crashes
        self.conn = parent_conn

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        self.conn.close()

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5)
        self.conn.close()


class WorkerPool:
    """Fan tasks out over worker processes with timeout/crash recovery."""

    def __init__(self, jobs: int, timeout_s: float = DEFAULT_POINT_TIMEOUT_S,
                 max_attempts: int = 2, mp_context=None,
                 retry_backoff_s: float = 0.5, max_respawns: int = 8):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        #: Base delay before retrying a failed point (doubles per attempt,
        #: plus a small per-task jitter so retries don't restart in
        #: lockstep after a machine-wide stall, e.g. OOM-killer sweeps).
        self.retry_backoff_s = retry_backoff_s
        #: Replacement-worker budget per ``run()``. A systemic failure
        #: (bad install, sandbox killing children) would otherwise
        #: respawn-thrash forever; past the cap, remaining tasks fail
        #: fast with a clear error instead.
        self.max_respawns = max_respawns
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = mp.get_context("fork" if "fork" in methods else "spawn")
        self._ctx = mp_context
        self._next_worker_id = 0

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        return worker

    def run(
        self,
        tasks: list[dict],
        on_reply: Optional[Callable[[dict, dict], None]] = None,
    ) -> dict[int, dict]:
        """Run every task; returns task_id → final reply.

        ``on_reply(task, reply)`` fires once per task when its final
        reply (success, or failure after the retry) is known.
        """
        if not tasks:
            return {}
        pending = list(reversed(tasks))  # pop() serves original order
        attempts: dict[int, int] = {t["task_id"]: 0 for t in tasks}
        replies: dict[int, dict] = {}
        by_id = {t["task_id"]: t for t in tasks}
        workers = [self._spawn() for _ in range(min(self.jobs, len(tasks)))]
        busy: dict[Connection, tuple[dict, float, _Worker]] = {}
        retry_at: dict[int, float] = {}  # task_id → earliest redispatch time
        respawns = 0

        def finish(task: dict, reply: dict) -> None:
            reply["attempts"] = attempts[task["task_id"]] + (1 if reply["ok"] else 0)
            replies[task["task_id"]] = reply
            if on_reply is not None:
                on_reply(task, reply)

        def fail(task: dict, error: str) -> None:
            tid = task["task_id"]
            attempts[tid] += 1
            if attempts[tid] < self.max_attempts:
                # Exponential backoff plus deterministic per-task jitter:
                # retries of a transient machine-wide problem shouldn't
                # all slam back in at the same instant.
                delay = self.retry_backoff_s * (1 << (attempts[tid] - 1))
                retry_at[tid] = (
                    time.monotonic() + delay + (tid * 0.037) % 0.1
                )
                pending.append(task)
            else:
                finish(task, {"task_id": tid, "ok": False, "error": error})

        def respawn(worker: _Worker) -> None:
            nonlocal respawns
            workers.remove(worker)
            worker.kill()
            if respawns < self.max_respawns:
                respawns += 1
                workers.append(self._spawn())

        try:
            while len(replies) < len(tasks):
                # Hand pending tasks whose backoff has elapsed to idle
                # workers (newest-first, like the original stack order).
                now = time.monotonic()
                for worker in workers:
                    if worker.conn in busy or not pending:
                        continue
                    idx = next(
                        (i for i in range(len(pending) - 1, -1, -1)
                         if retry_at.get(pending[i]["task_id"], 0.0) <= now),
                        None,
                    )
                    if idx is None:
                        break  # everything pending is still backing off
                    task = pending.pop(idx)
                    worker.conn.send(task)
                    busy[worker.conn] = (
                        task, time.monotonic() + self.timeout_s, worker
                    )
                if not workers:
                    # Respawn budget exhausted: fail whatever is left
                    # rather than looping forever with nobody to run it.
                    for task in pending:
                        attempts[task["task_id"]] = self.max_attempts
                        finish(task, {
                            "task_id": task["task_id"], "ok": False,
                            "error": "worker respawn budget exhausted "
                                     f"({self.max_respawns} respawns)",
                        })
                    pending.clear()
                    break
                if not busy:
                    if pending:  # all pending tasks are in backoff; wait
                        soonest = min(
                            retry_at.get(t["task_id"], 0.0) for t in pending
                        )
                        time.sleep(
                            max(0.0, min(soonest - time.monotonic(), 1.0))
                        )
                        continue
                    break  # pragma: no cover - defensive
                deadline = min(d for _, d, _ in busy.values())
                wait_s = max(0.0, min(deadline - time.monotonic(), 1.0))
                ready = connection_wait(list(busy), timeout=wait_s)
                for conn in ready:
                    task, _, worker = busy.pop(conn)
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-point: replace it, retry the task.
                        pid, exitcode = worker.process.pid, worker.process.exitcode
                        respawn(worker)
                        fail(task, "worker process crashed "
                                   f"(pid {pid}, exitcode {exitcode})")
                        continue
                    if reply.get("ok"):
                        finish(task, reply)
                    else:
                        fail(task, reply.get("error", "unknown worker error"))
                # Kill anything past its deadline and retry it elsewhere.
                now = time.monotonic()
                for conn in [c for c, (_, d, _) in busy.items() if d <= now]:
                    task, _, worker = busy.pop(conn)
                    respawn(worker)
                    fail(task, f"point exceeded the {self.timeout_s:.0f}s "
                               "timeout and was killed")
        finally:
            for worker in workers:
                worker.shutdown()
        assert set(replies) == set(by_id)
        return replies
