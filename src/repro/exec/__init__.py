"""Parallel, cached execution of the paper experiments.

``repro.exec`` decomposes every experiment into its independent sweep
points (see :mod:`repro.core.experiments.points`), fans them out over a
crash-tolerant process pool, serves previously-computed points from a
content-addressed cache, and reassembles the exact tables the serial
drivers produce — byte-identical output, a fraction of the wall clock.

Entry points: :func:`execute_experiments` (library),
``python -m repro run --jobs N`` (CLI).
"""

from .bench import BENCH_SCHEMA, QUICK_IDS, compare, run_bench
from .cache import CACHE_SCHEMA, ResultCache, code_version
from .engine import (
    ExecutionError,
    ExecutionReport,
    PointRecord,
    canonical_payload,
    config_fields,
    execute_experiments,
)
from .pool import DEFAULT_POINT_TIMEOUT_S, WorkerPool

__all__ = [
    "BENCH_SCHEMA",
    "CACHE_SCHEMA",
    "DEFAULT_POINT_TIMEOUT_S",
    "QUICK_IDS",
    "compare",
    "run_bench",
    "ExecutionError",
    "ExecutionReport",
    "PointRecord",
    "ResultCache",
    "WorkerPool",
    "canonical_payload",
    "code_version",
    "config_fields",
    "execute_experiments",
]
