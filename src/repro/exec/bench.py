"""``repro bench``: wall-clock benchmarking of the experiment suite.

Runs experiments through the execution engine and distills the
:class:`~repro.exec.engine.ExecutionReport` into a small JSON document
(``BENCH_sim.json`` by convention) with per-experiment wall-clock,
simulated-event throughput, and the cache hit rate:

* ``events_per_s`` — dispatched simulation events per second of point
  compute time. This is the engine's figure of merit: it is insensitive
  to how many points a sweep has and (unlike wall seconds) comparable
  across runs that executed different subsets.
* ``wall_s`` per experiment is *busy* seconds — the sum of per-point
  compute — not elapsed time, so the numbers mean the same thing at any
  ``--jobs`` count.

A committed benchmark file doubles as a regression gate:
:func:`compare` checks a fresh run's aggregate ``events_per_s`` against
the baseline and reports a failure when it drops by more than the
allowed fraction (CI runs this with a generous margin; shared runners
are noisy).
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any, Callable, Optional

from ..core.experiments.common import ExperimentConfig
from .engine import ExecutionReport, execute_experiments

__all__ = ["BENCH_SCHEMA", "QUICK_IDS", "run_bench", "compare", "render",
           "load"]

#: Bump when the BENCH_sim.json layout changes.
BENCH_SCHEMA = 1

#: The ``--quick`` subset: the cheap latency/throughput sweeps that
#: exercise every stack (SPDK, io_uring ± scheduler) and every opcode
#: family without the minutes-long interference timelines.
QUICK_IDS = ["fig2a", "fig3", "fig4a"]


def _experiment_rows(report: ExecutionReport) -> dict[str, dict[str, Any]]:
    rows: dict[str, dict[str, Any]] = {}
    for record in report.points:
        row = rows.setdefault(record.experiment_id, {
            "points": 0, "cache_hits": 0, "wall_s": 0.0, "events": 0,
        })
        row["points"] += 1
        if record.source == "cache":
            row["cache_hits"] += 1
        else:
            row["wall_s"] += record.elapsed_s
            row["events"] += record.events
    for row in rows.values():
        row["wall_s"] = round(row["wall_s"], 3)
        row["events_per_s"] = round(
            row["events"] / row["wall_s"] if row["wall_s"] > 0 else 0.0, 1
        )
    return rows


def run_bench(
    ids: Optional[list[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Benchmark the given experiments; returns the BENCH document."""
    _results, report = execute_experiments(
        ids, config, jobs=jobs, cache_dir=cache_dir, progress=progress,
    )
    return {
        "schema": BENCH_SCHEMA,
        "python": platform.python_version(),
        "jobs": report.jobs,
        "experiment_ids": sorted({r.experiment_id for r in report.points}),
        "points": len(report.points),
        "cache_hits": report.cache_hits,
        "cache_hit_rate": round(report.hit_rate, 4),
        "wall_s": round(report.wall_s, 3),
        "events": report.events,
        "events_per_s": round(report.events_per_s, 1),
        "experiments": _experiment_rows(report),
    }


def compare(current: dict[str, Any], baseline: dict[str, Any],
            max_regression: float = 0.20) -> list[str]:
    """Failure messages if ``current`` regressed past the baseline.

    The gate is the aggregate ``events_per_s``; per-experiment rates are
    too noisy to fail on, so they are reported (not enforced) by the
    CLI. Runs with no freshly-executed points (100% cache hits) carry
    no timing signal and never fail the gate.
    """
    failures: list[str] = []
    base_rate = float(baseline.get("events_per_s") or 0.0)
    cur_rate = float(current.get("events_per_s") or 0.0)
    if base_rate <= 0.0 or cur_rate <= 0.0:
        return failures
    floor = base_rate * (1.0 - max_regression)
    if cur_rate < floor:
        failures.append(
            f"events_per_s regressed: {cur_rate:.0f} < "
            f"{floor:.0f} (baseline {base_rate:.0f} "
            f"- {max_regression:.0%} allowance)"
        )
    return failures


def render(doc: dict[str, Any], baseline: Optional[dict[str, Any]] = None,
           file=sys.stdout) -> None:
    """Human-readable summary of a BENCH document (plus baseline deltas)."""
    print(f"[bench] {doc['points']} points, jobs={doc['jobs']}, "
          f"wall {doc['wall_s']:.1f}s, "
          f"{doc['events']} events @ {doc['events_per_s']:.0f} ev/s, "
          f"cache hit rate {doc['cache_hit_rate']:.0%}", file=file)
    base_rows = (baseline or {}).get("experiments", {})
    for exp_id, row in sorted(doc["experiments"].items()):
        line = (f"[bench]   {exp_id}: {row['points']} points, "
                f"{row['wall_s']:.2f}s busy, "
                f"{row['events_per_s']:.0f} ev/s")
        base = base_rows.get(exp_id, {})
        base_rate = float(base.get("events_per_s") or 0.0)
        if base_rate > 0.0 and row["events_per_s"] > 0.0:
            delta = row["events_per_s"] / base_rate - 1.0
            line += f" ({delta:+.0%} vs baseline)"
        print(line, file=file)


def load(path: str) -> dict[str, Any]:
    """Read a BENCH document, rejecting other schemas."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path} has schema {doc.get('schema')!r}, expected {BENCH_SCHEMA}"
        )
    return doc
