"""``repro bench``: wall-clock benchmarking of the experiment suite.

Runs experiments through the execution engine and distills the
:class:`~repro.exec.engine.ExecutionReport` into a small JSON document
(``BENCH_sim.json`` by convention) with per-experiment wall-clock,
simulated-event throughput, and the cache hit rate:

* ``events_per_s`` — dispatched simulation events per second of point
  compute time. This is the engine's figure of merit: it is insensitive
  to how many points a sweep has and (unlike wall seconds) comparable
  across runs that executed different subsets.
* ``wall_s`` per experiment is *busy* seconds — the sum of per-point
  compute — not elapsed time, so the numbers mean the same thing at any
  ``--jobs`` count.

Schema 2 adds rep-to-rep variance: ``--reps N`` runs the whole sweep N
times and records the sample stdev of each experiment's busy seconds
and events/sec (``wall_s_stdev`` / ``events_per_s_stdev``, 0.0 when
``reps == 1``), plus the stdev of the aggregate rate. Repetitions
always run uncached — a rep served from the cache would carry no
timing signal — so ``reps > 1`` disables any ``--cache`` directory.
Simulated event *counts* are deterministic, so only the wall-clock
side varies across reps; that variance history is what per-experiment
CI gates need to pick thresholds that outrun runner noise.

A committed benchmark file doubles as a regression gate:
:func:`compare` checks a fresh run against the baseline both in
aggregate (fractional allowance) and per experiment, where the
threshold is sized from the baseline's recorded stdevs
(``mean − k·stdev``) so a stable experiment gets a tight gate and a
noisy one a loose gate — instead of one margin wide enough for the
noisiest member (CI runs this against the committed
``benchmarks/BENCH_baseline.json``).

Schema 3 adds pure-engine microbenchmarks under the ``engine`` key:
tiny synthetic simulations that isolate the event-core paths the
experiment sweeps lean on (timeout churn through the heap, FIFO
service-line handoffs, bulk pre-sorted heap insertion via
``schedule_after_many``, process spawn/join, and container put/get
backpressure). Their events/sec figures are **informational** — CI
renders them alongside the sweep numbers but :func:`compare` does not
gate on them, because a sub-second microbench has far more runner
noise than the multi-second sweeps the gates protect.
"""

from __future__ import annotations

import json
import platform
import sys
from time import perf_counter
from typing import Any, Callable, Optional

from ..core.experiments.common import ExperimentConfig
from ..sim.engine import Simulator
from ..sim.resources import Container, ServiceLine
from .engine import ExecutionReport, execute_experiments

__all__ = ["BENCH_SCHEMA", "QUICK_IDS", "run_bench", "run_engine_microbench",
           "compare", "render", "load"]

#: Bump when the BENCH_sim.json layout changes.
BENCH_SCHEMA = 3

#: The ``--quick`` subset: the cheap latency/throughput sweeps that
#: exercise every stack (SPDK, io_uring ± scheduler) and every opcode
#: family without the minutes-long interference timelines.
QUICK_IDS = ["fig2a", "fig3", "fig4a"]


def _experiment_rows(report: ExecutionReport) -> dict[str, dict[str, Any]]:
    rows: dict[str, dict[str, Any]] = {}
    for record in report.points:
        row = rows.setdefault(record.experiment_id, {
            "points": 0, "cache_hits": 0, "wall_s": 0.0, "events": 0,
        })
        row["points"] += 1
        if record.source == "cache":
            row["cache_hits"] += 1
        else:
            row["wall_s"] += record.elapsed_s
            row["events"] += record.events
    for row in rows.values():
        row["wall_s"] = round(row["wall_s"], 3)
        row["events_per_s"] = round(
            row["events"] / row["wall_s"] if row["wall_s"] > 0 else 0.0, 1
        )
    return rows


def _stdev(values: list[float]) -> float:
    """Sample standard deviation; 0.0 below two samples."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


# -- engine microbenchmarks ----------------------------------------------
#
# Each builder returns a fresh Simulator pre-loaded with a synthetic
# workload; the driver times only the run. Workloads are deterministic
# (no RNG), so the event counts are fixed and only wall time varies.

def _build_timeout_churn() -> Simulator:
    """Many processes cycling short timeouts: the heap's steady state."""
    sim = Simulator()

    def worker(delay: int):
        timeout = sim.timeout
        for _ in range(4000):
            yield timeout(delay)

    for i in range(64):
        sim.process(worker(1 + i % 7))
    return sim


def _build_wakeup_batch() -> Simulator:
    """A contended FIFO service line: grant-on-release handoff chains
    (the batched controller-wakeup path of DESIGN.md §15)."""
    sim = Simulator()
    line = ServiceLine(sim, name="ctrl")

    def worker():
        timeout = sim.timeout
        for _ in range(1500):
            req = line.request()
            yield req
            yield timeout(1)
            line.release(req)

    for _ in range(64):
        sim.process(worker())
    return sim


def _build_heap_insert() -> Simulator:
    """Bulk pre-sorted insertion via ``schedule_after_many`` followed by
    a full drain — the trace-shaped arrival pattern."""
    sim = Simulator()

    def driver():
        delays = list(range(1, 4097))
        for _ in range(32):
            handles = sim.schedule_after_many(delays)
            yield handles[-1]

    sim.process(driver())
    return sim


def _build_spawn_join() -> Simulator:
    """Process spawn + all_of join: the fan-out/fan-in of striped I/O."""
    sim = Simulator()

    def child():
        yield sim.timeout(1)

    def parent():
        for _ in range(150):
            children = [sim.process(child()) for _ in range(128)]
            yield sim.all_of(children)

    sim.process(parent())
    return sim


def _build_container_putget() -> Simulator:
    """Producer/consumer through a small Container: put/get blocking and
    wakeup (the write-buffer backpressure path)."""
    sim = Simulator()
    box = Container(sim, capacity=8)

    def producer():
        timeout = sim.timeout
        for _ in range(25_000):
            yield box.put(1)
            yield timeout(1)

    def consumer():
        timeout = sim.timeout
        for _ in range(25_000):
            yield box.get(1)
            yield timeout(2)

    sim.process(producer())
    sim.process(consumer())
    return sim


ENGINE_MICROBENCHES: tuple[tuple[str, Callable[[], Simulator]], ...] = (
    ("timeout_churn", _build_timeout_churn),
    ("wakeup_batch", _build_wakeup_batch),
    ("heap_insert", _build_heap_insert),
    ("spawn_join", _build_spawn_join),
    ("container_putget", _build_container_putget),
)


def run_engine_microbench(reps: int = 1) -> dict[str, dict[str, Any]]:
    """Run the pure-engine microbenchmarks; one row per bench.

    Row shape mirrors the per-experiment rows (events are deterministic;
    timing figures are means across ``reps`` with a sample stdev).
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    rows: dict[str, dict[str, Any]] = {}
    for name, build in ENGINE_MICROBENCHES:
        events = 0
        walls: list[float] = []
        rates: list[float] = []
        for _ in range(reps):
            sim = build()
            started = perf_counter()
            sim.run()
            elapsed = perf_counter() - started
            events = sim.events_processed
            walls.append(elapsed)
            rates.append(events / elapsed if elapsed > 0 else 0.0)
        rows[name] = {
            "events": events,
            "wall_s": round(sum(walls) / len(walls), 3),
            "wall_s_stdev": round(_stdev(walls), 3),
            "events_per_s": round(sum(rates) / len(rates), 1),
            "events_per_s_stdev": round(_stdev(rates), 1),
        }
    return rows


def run_bench(
    ids: Optional[list[str]] = None,
    config: Optional[ExperimentConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    reps: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Benchmark the given experiments; returns the BENCH document.

    ``reps > 1`` repeats the whole sweep and reports the mean and the
    rep-to-rep sample stdev of every timing figure. Repetitions force
    ``cache_dir=None``: a cache-served rep measures nothing.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    say = progress if progress is not None else (lambda message: None)
    if reps > 1 and cache_dir is not None:
        say("[bench] --reps > 1 disables the cache "
            "(every rep must recompute to carry timing signal)")
        cache_dir = None
    reports = []
    for rep in range(reps):
        if reps > 1:
            say(f"[bench] rep {rep + 1}/{reps}")
        _results, report = execute_experiments(
            ids, config, jobs=jobs, cache_dir=cache_dir, progress=progress,
        )
        reports.append(report)

    # Per-experiment rows: timing figures are means across reps with a
    # rep-to-rep stdev; structural figures (points, events) are
    # deterministic and taken from the first rep.
    per_rep = [_experiment_rows(report) for report in reports]
    experiments: dict[str, dict[str, Any]] = {}
    for exp_id, first in per_rep[0].items():
        walls = [rows[exp_id]["wall_s"] for rows in per_rep]
        rates = [rows[exp_id]["events_per_s"] for rows in per_rep]
        experiments[exp_id] = {
            "points": first["points"],
            "cache_hits": first["cache_hits"],
            "events": first["events"],
            "wall_s": round(sum(walls) / len(walls), 3),
            "wall_s_stdev": round(_stdev(walls), 3),
            "events_per_s": round(sum(rates) / len(rates), 1),
            "events_per_s_stdev": round(_stdev(rates), 1),
        }

    aggregate_rates = [report.events_per_s for report in reports]
    first = reports[0]
    engine = run_engine_microbench(reps)
    return {
        "schema": BENCH_SCHEMA,
        "python": platform.python_version(),
        "jobs": first.jobs,
        "reps": reps,
        "experiment_ids": sorted({r.experiment_id for r in first.points}),
        "points": len(first.points),
        "cache_hits": first.cache_hits,
        "cache_hit_rate": round(first.hit_rate, 4),
        "wall_s": round(sum(r.wall_s for r in reports) / reps, 3),
        "events": first.events,
        "events_per_s": round(sum(aggregate_rates) / reps, 1),
        "events_per_s_stdev": round(_stdev(aggregate_rates), 1),
        "experiments": experiments,
        "engine": engine,
    }


def compare(current: dict[str, Any], baseline: dict[str, Any],
            max_regression: float = 0.20,
            stdev_k: float = 6.0) -> list[str]:
    """Failure messages if ``current`` regressed past the baseline.

    Two gates:

    * the historical **aggregate** ``events_per_s`` gate (a drop of more
      than ``max_regression`` fails), kept as a safety net, and
    * a **per-experiment** gate sized from the baseline's schema-2
      rep-to-rep stdevs: experiment ``e`` fails when its rate falls
      below ``mean_e − max(stdev_k·stdev_e, max_regression·mean_e)``.
      The stdev term lets a noisy short experiment breathe while a long
      stable one gets a tight threshold; the fractional term is the
      floor for baselines recorded with ``reps == 1`` (stdev 0.0),
      where a pure stdev gate would fail on any jitter at all.

    Rates of zero on either side mean "no timing signal" (e.g. a 100%
    cache-hit run) and never fail; experiments absent from either
    document are skipped.
    """
    failures: list[str] = []
    base_rate = float(baseline.get("events_per_s") or 0.0)
    cur_rate = float(current.get("events_per_s") or 0.0)
    if base_rate > 0.0 and cur_rate > 0.0:
        floor = base_rate * (1.0 - max_regression)
        if cur_rate < floor:
            failures.append(
                f"events_per_s regressed: {cur_rate:.0f} < "
                f"{floor:.0f} (baseline {base_rate:.0f} "
                f"- {max_regression:.0%} allowance)"
            )
    base_rows = baseline.get("experiments") or {}
    cur_rows = current.get("experiments") or {}
    for exp_id in sorted(base_rows):
        row = cur_rows.get(exp_id)
        if row is None:
            continue
        base_exp = float(base_rows[exp_id].get("events_per_s") or 0.0)
        cur_exp = float(row.get("events_per_s") or 0.0)
        if base_exp <= 0.0 or cur_exp <= 0.0:
            continue
        stdev = float(base_rows[exp_id].get("events_per_s_stdev") or 0.0)
        allowance = max(stdev_k * stdev, base_exp * max_regression)
        floor = base_exp - allowance
        if cur_exp < floor:
            failures.append(
                f"{exp_id} events_per_s regressed: {cur_exp:.0f} < "
                f"{floor:.0f} (baseline {base_exp:.0f} - "
                f"max({stdev_k:g}×{stdev:.0f}, {max_regression:.0%}))"
            )
    return failures


def render(doc: dict[str, Any], baseline: Optional[dict[str, Any]] = None,
           file=sys.stdout) -> None:
    """Human-readable summary of a BENCH document (plus baseline deltas)."""
    reps = int(doc.get("reps", 1))
    line = (f"[bench] {doc['points']} points, jobs={doc['jobs']}, "
            f"wall {doc['wall_s']:.1f}s, "
            f"{doc['events']} events @ {doc['events_per_s']:.0f} ev/s")
    if reps > 1:
        line += (f" (±{doc.get('events_per_s_stdev', 0.0):.0f} "
                 f"over {reps} reps)")
    line += f", cache hit rate {doc['cache_hit_rate']:.0%}"
    print(line, file=file)
    base_rows = (baseline or {}).get("experiments", {})
    for exp_id, row in sorted(doc["experiments"].items()):
        line = (f"[bench]   {exp_id}: {row['points']} points, "
                f"{row['wall_s']:.2f}s busy, "
                f"{row['events_per_s']:.0f} ev/s")
        if reps > 1:
            line += f" (±{row.get('events_per_s_stdev', 0.0):.0f})"
        base = base_rows.get(exp_id, {})
        base_rate = float(base.get("events_per_s") or 0.0)
        if base_rate > 0.0 and row["events_per_s"] > 0.0:
            delta = row["events_per_s"] / base_rate - 1.0
            line += f" ({delta:+.0%} vs baseline)"
        print(line, file=file)
    engine_base = (baseline or {}).get("engine", {})
    for name, row in (doc.get("engine") or {}).items():
        line = (f"[bench]   engine/{name}: {row['events']} events, "
                f"{row['events_per_s']:.0f} ev/s")
        if reps > 1:
            line += f" (±{row.get('events_per_s_stdev', 0.0):.0f})"
        base_rate = float((engine_base.get(name) or {})
                          .get("events_per_s") or 0.0)
        if base_rate > 0.0 and row["events_per_s"] > 0.0:
            delta = row["events_per_s"] / base_rate - 1.0
            line += f" ({delta:+.0%} vs baseline, informational)"
        print(line, file=file)


def load(path: str) -> dict[str, Any]:
    """Read a BENCH document, rejecting other schemas."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path} has schema {doc.get('schema')!r}, expected {BENCH_SCHEMA}"
        )
    return doc
