"""Content-addressed cache of experiment-point results.

Every sweep point is identified by the SHA-256 of

* a schema version (bumped if the entry layout changes),
* the **code version** — a digest over every ``repro`` source file, so
  any change to the simulator, devices, or experiment drivers silently
  invalidates the whole cache (stale results can never be served),
* the experiment id and the point's parameter dict,
* the scalar :class:`~repro.core.experiments.common.ExperimentConfig`
  fields (seed, durations, sweep sizes), and
* whether metrics were collected (a metrics-enabled run needs the
  per-point registry snapshot in the entry).

Entries are small JSON files under ``<dir>/<key[:2]>/<key>.json``,
written atomically (temp file + rename), so a cache directory doubles
as a crash-safe checkpoint: re-running an interrupted sweep replays the
finished points from disk and only simulates the rest.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "code_version", "CACHE_SCHEMA"]

#: Bump when the cache-entry layout changes.
CACHE_SCHEMA = 1


def code_version() -> str:
    """Digest of every ``repro`` source file (paths + contents)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Point-result store keyed by content hash.

    Entries hold ``{"experiment_id", "label", "payload", "metrics",
    "elapsed_s"}`` where ``payload`` is the point's JSON payload and
    ``metrics`` is the worker's registry snapshot (or ``None``).
    """

    def __init__(self, directory: str | os.PathLike,
                 version: Optional[str] = None):
        self.directory = Path(directory)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    # -- keying ----------------------------------------------------------
    def key(self, experiment_id: str, params: dict, config_fields: dict,
            with_metrics: bool) -> str:
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "code": self.version,
                "experiment": experiment_id,
                "params": params,
                "config": config_fields,
                "metrics": with_metrics,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- storage ---------------------------------------------------------
    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The stored entry, or ``None`` (counts a hit/miss either way)."""
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, entry: dict[str, Any]) -> None:
        """Atomically persist one entry (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
