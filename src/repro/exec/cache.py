"""Content-addressed cache of experiment-point results.

Every sweep point is identified by the SHA-256 of

* a schema version (bumped if the entry layout changes),
* the **code version** — a digest over every ``repro`` source file, so
  any change to the simulator, devices, or experiment drivers silently
  invalidates the whole cache (stale results can never be served),
* the experiment id and the point's parameter dict,
* the scalar :class:`~repro.core.experiments.common.ExperimentConfig`
  fields (seed, durations, sweep sizes), and
* whether metrics were collected (a metrics-enabled run needs the
  per-point registry snapshot in the entry).

Entries are small JSON files under ``<dir>/<key[:2]>/<key>.json``,
written atomically (temp file + rename), so a cache directory doubles
as a crash-safe checkpoint: re-running an interrupted sweep replays the
finished points from disk and only simulates the rest.

Because the code version participates in the key, every source change
orphans the previous generation of entries on disk;
:meth:`ResultCache.prune` (``repro cache prune``) deletes them. Each
entry records the code version it was built under so pruning never has
to guess.

Next to the entries lives a **duration sidecar** (``durations.json``)
keyed *without* the code version: it remembers how long each point took
to simulate on this machine. The execution engine sorts cache misses
longest-first from these hints, which minimizes parallel makespan (the
classic LPT heuristic) — and because the hints survive code changes,
the very first run after an edit is already well-scheduled.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "code_version", "CACHE_SCHEMA"]

#: Bump when the cache-entry layout changes.
CACHE_SCHEMA = 1


def code_version() -> str:
    """Digest of every ``repro`` source file (paths + contents)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Point-result store keyed by content hash.

    Entries hold ``{"experiment_id", "label", "payload", "metrics",
    "elapsed_s"}`` where ``payload`` is the point's JSON payload and
    ``metrics`` is the worker's registry snapshot (or ``None``).
    """

    def __init__(self, directory: str | os.PathLike,
                 version: Optional[str] = None):
        self.directory = Path(directory)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0
        self._durations: Optional[dict[str, float]] = None

    # -- keying ----------------------------------------------------------
    def key(self, experiment_id: str, params: dict, config_fields: dict,
            with_metrics: bool) -> str:
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "code": self.version,
                "experiment": experiment_id,
                "params": params,
                "config": config_fields,
                "metrics": with_metrics,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- storage ---------------------------------------------------------
    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The stored entry, or ``None`` (counts a hit/miss either way).

        A file that exists but does not parse — or parses to something
        that is not a complete entry (a torn write from a crash or a
        full disk predating the atomic-rename path, manual editing, bit
        rot) — is treated as a miss: logged, deleted, and recomputed,
        rather than poisoning the engine with a ``KeyError`` later.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._discard_corrupt(path, "unreadable or truncated")
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            self._discard_corrupt(path, "not a cache entry")
            return None
        self.hits += 1
        return entry

    def _discard_corrupt(self, path: Path, why: str) -> None:
        logging.getLogger("repro.exec.cache").warning(
            "discarding corrupt cache entry %s (%s); the point will be "
            "recomputed", path, why,
        )
        try:
            path.unlink()
        except OSError:
            pass
        self.misses += 1

    def store(self, key: str, entry: dict[str, Any]) -> None:
        """Atomically persist one entry (temp file + rename).

        The entry is stamped with the code version it was built under,
        so :meth:`prune` can later identify orphans without re-deriving
        their keys.
        """
        entry = dict(entry)
        entry.setdefault("code", self.version)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, entry)

    @staticmethod
    def _atomic_write(path: Path, payload: Any) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- pruning ---------------------------------------------------------
    def prune(self, dry_run: bool = False) -> tuple[list[Path], int]:
        """Delete entries from older code versions (or corrupt files).

        Returns ``(stale, kept)`` where ``stale`` lists the entry paths
        that were deleted (or, with ``dry_run``, *would* be) and
        ``kept`` counts the entries from the current code version. The
        duration sidecar is never pruned — its whole point is surviving
        code changes.
        """
        stale: list[Path] = []
        kept = 0
        if not self.directory.is_dir():
            return stale, kept
        for path in sorted(self.directory.glob("??/*.json")):
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
                current = entry.get("code") == self.version
            except (json.JSONDecodeError, OSError):
                current = False
            if current:
                kept += 1
                continue
            stale.append(path)
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    pass
        if not dry_run:
            # Drop now-empty shard directories so the tree stays tidy.
            for shard in self.directory.glob("??"):
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return stale, kept

    # -- duration hints --------------------------------------------------
    def hint_key(self, experiment_id: str, params: dict,
                 config_fields: dict) -> str:
        """Sidecar key: like :meth:`key` but code-version-independent."""
        blob = json.dumps(
            {
                "experiment": experiment_id,
                "params": params,
                "config": config_fields,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _load_durations(self) -> dict[str, float]:
        if self._durations is None:
            try:
                with open(self.directory / "durations.json",
                          encoding="utf-8") as fh:
                    raw = json.load(fh)
                self._durations = {
                    k: float(v) for k, v in raw.items()
                    if isinstance(v, (int, float))
                }
            except (FileNotFoundError, json.JSONDecodeError, OSError,
                    AttributeError):
                self._durations = {}
        return self._durations

    def duration_hint(self, hint_key: str) -> Optional[float]:
        """Last known wall-clock seconds for this point, if any."""
        return self._load_durations().get(hint_key)

    def record_duration(self, hint_key: str, elapsed_s: float) -> None:
        """Remember how long a point took (in-memory until :meth:`flush_durations`)."""
        self._load_durations()[hint_key] = round(float(elapsed_s), 6)

    def flush_durations(self) -> None:
        """Atomically persist the duration sidecar."""
        if self._durations is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.directory / "durations.json",
                           self._durations)
